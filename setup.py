"""Setuptools shim.

The project metadata — including the ``rrmp`` console script — lives
in ``pyproject.toml``; this file only keeps ``pip install -e .``
working on older pips that still route editable installs through the
legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
