"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments without the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path when no
``[build-system]`` table is declared).
"""

from setuptools import setup

setup()
