"""Benchmarks of the sweep runner itself (not a paper figure).

One cold serial run, one cold process-pool run, and one warm-cache
replay of the same ``ablation_scaling`` sweep, each written to
``BENCH_runner_*.json`` so the artifacts record the wall-clock
relationship between the three execution modes.  The assertions pin the
determinism contract (parallel and cached tables byte-identical to
serial); relative speed is recorded, not asserted, because CI core
counts vary.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_bench_json
from repro.experiments.ablation_scaling import run_scaling
from repro.runner import (
    ProcessPoolBackend,
    ResultCache,
    Runner,
    SerialBackend,
    using_runner,
)

PARAMS = {"ns": (25, 50, 100), "seeds": 4}
JOBS = 2


def _run(backend, cache=None):
    runner = Runner(backend=backend, cache=cache)
    started = time.perf_counter()
    with using_runner(runner):
        table = run_scaling(**PARAMS)
    return table, runner, time.perf_counter() - started


def test_sweep_runner_modes(tmp_path, capsys):
    serial_table, serial_runner, serial_wall = _run(SerialBackend())
    write_bench_json("runner_serial", serial_table, serial_wall,
                     serial_runner.stats.events_fired, PARAMS)

    parallel_table, parallel_runner, parallel_wall = _run(
        ProcessPoolBackend(JOBS), cache=ResultCache(tmp_path)
    )
    write_bench_json("runner_parallel", parallel_table, parallel_wall,
                     parallel_runner.stats.events_fired, PARAMS)
    assert parallel_table.to_json() == serial_table.to_json()
    assert parallel_runner.stats.executed == serial_runner.stats.executed

    warm_table, warm_runner, warm_wall = _run(
        SerialBackend(), cache=ResultCache(tmp_path)
    )
    write_bench_json("runner_warm_cache", warm_table, warm_wall,
                     warm_runner.stats.events_fired, PARAMS)
    # The warm replay reads the parallel run's cache: zero executions,
    # identical bytes — serial and pooled runs share one cache format.
    assert warm_runner.stats.executed == 0
    assert warm_runner.stats.cached == serial_runner.stats.executed
    assert warm_table.to_json() == serial_table.to_json()
    assert warm_wall < serial_wall

    with capsys.disabled():
        print(
            f"\nsweep runner: serial {serial_wall:.2f}s, "
            f"{JOBS}-process {parallel_wall:.2f}s, warm cache {warm_wall:.2f}s"
        )
