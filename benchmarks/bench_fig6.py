"""Regenerate paper Figure 6: feedback-based buffering effectiveness.

Paper setup: region of 100, RTT 10 ms, T = 40 ms; k members hold the
message initially, everyone else requests.  Claim: average holder
buffering time decreases monotonically with k (from ~110 ms at k = 1).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6 import run_fig6


def test_fig6_feedback_buffering(benchmark, show):
    table = run_once(benchmark, run_fig6, bench_id="fig6",
                     ks=(1, 2, 4, 8, 16, 32, 64), n=100, seeds=20)
    show(table)
    times = table.series["avg buffering time (ms)"]
    assert all(a > b for a, b in zip(times, times[1:])), "must decrease with k"
    assert 90.0 < times[0] < 140.0   # paper: ~110 ms at k=1
    assert 40.0 <= times[-1] < 70.0  # floor near T=40 at k=64
