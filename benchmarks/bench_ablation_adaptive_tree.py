"""Ablation bench: static vs adaptive repair hierarchy (makespan).

The headline acceptance for the adaptive-tree subsystem: under
``heterogeneous_regions`` the adaptive hierarchy's session makespan
measurably beats the static one, re-parent events stay under the
configured budget, and the ``adaptive-topology`` invariant reports
zero violations.  ``wan_burst_loss`` doubles as a no-regression guard:
its two-region chain offers no alternative parent, so adaptive must
match static exactly there.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments.ablation_adaptive_tree import run_adaptive_tree_ablation
from repro.scenario.registry import get_scenario
from repro.scenario.spec import AdaptSpec
from repro.validate.fuzz import run_spec

SEEDS = 5
MAX_REPARENTS = 8


def _ablation_with_oracle(**kwargs):
    table = run_adaptive_tree_ablation(**kwargs)
    # The oracle leg: an adaptive heterogeneous_regions run must stay
    # violation-free under the full invariant set, adaptive-topology
    # included.  Recorded in the notes so BENCH_adapt.json carries it.
    spec = replace(
        get_scenario("heterogeneous_regions"),
        adapt=AdaptSpec(mode="passive", update_interval=150.0,
                        hysteresis=0.1, max_reparents=MAX_REPARENTS),
    )
    outcome = run_spec(spec)
    assert outcome.error is None, outcome.error
    table.notes.append(
        f"oracle: adaptive heterogeneous_regions ran clean under all "
        f"invariants (adaptive-topology included): "
        f"{outcome.violation_count} violations over "
        f"{outcome.records_checked} records"
    )
    assert outcome.violation_count == 0, outcome.violations
    return table


def test_ablation_adaptive_tree(benchmark, show):
    table = run_once(
        benchmark, _ablation_with_oracle, bench_id="adapt",
        seeds=SEEDS, max_reparents=MAX_REPARENTS,
    )
    show(table)
    het, wan = 0, 1  # scenario indices in the default ordering
    static_makespan = table.series["static: session makespan (ms)"]
    adaptive_makespan = table.series["adaptive: session makespan (ms)"]
    reparents = table.series["adaptive: re-parents"]
    violations = table.series["adaptive: invariant violations"]
    # The acceptance criterion: re-parenting slow regions measurably
    # shortens the session makespan under heterogeneous regions.
    assert adaptive_makespan[het] < static_makespan[het]
    # No alternative parent exists on the two-region chain, so the
    # optimizer must keep its hands off and match static exactly.
    assert adaptive_makespan[wan] == static_makespan[wan]
    assert reparents[wan] == 0
    # Maintenance stays bounded and every re-parent was audited clean.
    assert all(count <= MAX_REPARENTS for count in reparents)
    assert all(count == 0 for count in violations)
