"""Mega-scale benchmark: the flat engine at 100,000 members.

Three measurements back the scale claims:

* **classic reference** — the object engine on the same scenario shape
  (star hierarchy, uniform 5%-lossy stream) at 1,000 members, the size
  the per-member-object design is comfortable with.  Throughput is
  normalized to *member-deliveries per second* so engine sizes compare.
* **flat 100k** — :func:`repro.scale.engine.run_flat` on
  ``scale_100k`` (100 regions x 1,000 members), tracing off; this is
  the timed section that lands in ``BENCH_scale_100k.json``.
* **oracle pass** — the same 100k run with the full invariant oracle
  subscribed (~3.1M trace records): reliability is asserted, not
  implied (delivered fraction 1.0, zero reliability violations, zero
  invariant violations).

The flat engine must clear **10x** the classic per-member-delivery
throughput; in practice it lands around 100x.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.metrics.report import SeriesTable
from repro.scale.engine import run_flat
from repro.scale.pool import FlatMemberPool
from repro.scale.scenarios import scale_100k_spec
from repro.scenario.library import scale_spec
from repro.scenario.materialize import build_hierarchy

#: The flat engine must beat the classic engine by at least this factor
#: in member-deliveries per wall second (measured ~100x).
MIN_SPEEDUP = 10.0
#: Classic-reference population: the object engine's comfortable size.
CLASSIC_MEMBERS_PER_REGION = 100


def classic_reference_rate(messages: int = 10) -> tuple:
    """Object engine on the scale shape at 1,000 members; returns
    ``(deliveries_per_sec, wall_s, members)``."""
    spec = scale_spec(
        regions=10, members_per_region=CLASSIC_MEMBERS_PER_REGION,
        messages=messages,
    )
    built = spec.build()
    started = time.perf_counter()
    built.run()
    wall = time.perf_counter() - started
    summary = built.summary()
    members = spec.topology.member_count()
    deliveries = summary["delivered_fraction"] * members * messages
    return deliveries / wall, wall, members


def flat_100k_rate() -> tuple:
    """Flat engine on scale_100k, tracing off; returns
    ``(deliveries_per_sec, wall_s, result)``."""
    spec = scale_100k_spec()
    started = time.perf_counter()
    result = run_flat(spec, digest=False)
    wall = time.perf_counter() - started
    deliveries = (result.delivered_fraction
                  * result.members * result.messages)
    return deliveries / wall, wall, result


def test_scale_100k(benchmark, show):
    classic_rate, classic_wall, classic_members = classic_reference_rate()
    oracle_run = run_flat(scale_100k_spec(), digest=True, oracle=True)

    state = {}

    def measured() -> SeriesTable:
        flat_rate, flat_wall, result = flat_100k_rate()
        state.update(rate=flat_rate, wall=flat_wall, result=result)
        spec = scale_100k_spec()
        pool_mb = FlatMemberPool(
            build_hierarchy(spec.topology), spec.traffic.count,
        ).nbytes() / 1e6
        table = SeriesTable(
            title=("Mega-scale: flat engine @100k members vs classic object "
                   f"engine @{classic_members} (member-deliveries/sec)"),
            x_label="engine (1=classic object, 2=flat array)",
            xs=[1, 2],
        )
        table.add_series("deliveries per second", [classic_rate, flat_rate])
        table.add_series("members", [float(classic_members),
                                     float(result.members)])
        table.notes.append(
            f"speedup {flat_rate / classic_rate:.1f}x "
            f"(floor {MIN_SPEEDUP:.0f}x); flat wall {flat_wall:.2f}s, "
            f"classic wall {classic_wall:.2f}s; pool {pool_mb:.1f} MB"
        )
        table.notes.append(
            f"oracle pass: {oracle_run.oracle_records_checked} records, "
            f"{oracle_run.invariant_violations} invariant violations, "
            f"{oracle_run.reliability_violations} reliability violations, "
            f"delivered fraction {oracle_run.delivered_fraction}"
        )
        return table

    table = run_once(benchmark, measured, bench_id="scale_100k")
    show(table)

    result = state["result"]
    assert result.members == 100_000
    assert result.delivered_fraction == 1.0
    assert result.reliability_violations == 0
    # Reliability under the oracle, not just the engine's own counters.
    assert oracle_run.delivered_fraction == 1.0
    assert oracle_run.reliability_violations == 0
    assert oracle_run.invariant_violations == 0
    assert oracle_run.oracle_records_checked > 1_000_000
    assert state["rate"] >= MIN_SPEEDUP * classic_rate
