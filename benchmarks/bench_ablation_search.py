"""Ablation bench: randomized search vs multicast-request storms (§3.3)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_search_storm import run_search_vs_multicast


def test_ablation_search_vs_multicast(benchmark, show):
    table = run_once(benchmark, run_search_vs_multicast, bench_id="ablation_search_vs_multicast",
                     buffering_fractions=(0.06, 0.1, 0.25, 0.5, 1.0),
                     n=100, seeds=100)
    show(table)
    storm = table.series["multicast: duplicate replies"]
    assert all(a <= b + 0.2 for a, b in zip(storm, storm[1:]))
    # The §3.3 implosion: with everyone still buffering, the multicast
    # approach multiplies replies while the search still sends one.
    assert storm[-1] > 4.0
    search_messages = table.series["search: messages"]
    assert search_messages[-1] <= 1.5
