"""Compare fresh ``BENCH_<id>.json`` output against committed baselines.

The benchmark harness (``benchmarks/conftest.py``) writes one JSON
artifact per benchmark with the run's wall clock, the engine events it
fired and the resulting table.  This script turns those artifacts into
a regression gate:

* ``events_fired`` must match the baseline **exactly** — the simulator
  is deterministic, so any drift means behaviour changed (or work was
  silently added to / removed from the hot path);
* ``wall_s`` must stay within a relative tolerance (default ±30%) of
  the baseline, so a hot-path regression fails CI even when behaviour
  is unchanged.  Walls under ``--wall-floor`` seconds are exempt —
  relative noise on a near-zero wall is meaningless.

Usage::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_engine.py ...   # produce fresh results
    python benchmarks/check_regression.py                   # gate against baselines
    python benchmarks/check_regression.py engine scale      # only these ids
    python benchmarks/check_regression.py --update          # re-bless baselines

Refreshing baselines: run the benchmarks on the reference machine, eyeball
the new numbers, then ``--update`` and commit ``benchmarks/baselines/``.
CI runs with ``--events-only`` — shared-runner hardware does not match
the machine that blessed the baselines, so the wall check is a local /
reference-machine check while the events check gates everywhere.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import List, Optional

BENCH_PREFIX = "BENCH_"
DEFAULT_WALL_TOLERANCE = 0.30
DEFAULT_WALL_FLOOR = 0.50


def _load(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _bench_id(path: Path) -> str:
    return path.stem[len(BENCH_PREFIX):]


def compare_one(baseline: dict, fresh: dict, wall_tolerance: float,
                wall_floor: float) -> List[str]:
    """Problems found comparing one fresh result to its baseline."""
    problems: List[str] = []
    base_events = baseline.get("events_fired")
    fresh_events = fresh.get("events_fired")
    if base_events != fresh_events:
        problems.append(
            f"events_fired changed: baseline {base_events} != fresh {fresh_events} "
            "(simulation behaviour or hot-path work drifted)"
        )
    base_wall = float(baseline.get("wall_s", 0.0))
    fresh_wall = float(fresh.get("wall_s", 0.0))
    if base_wall >= wall_floor:
        drift = (fresh_wall - base_wall) / base_wall
        if abs(drift) > wall_tolerance:
            problems.append(
                f"wall clock drifted {drift:+.0%} (baseline {base_wall:.3f}s, "
                f"fresh {fresh_wall:.3f}s, tolerance ±{wall_tolerance:.0%})"
            )
    return problems


def check(baseline_dir: Path, results_dir: Path, only: Optional[List[str]],
          wall_tolerance: float, wall_floor: float, update: bool) -> int:
    baselines = sorted(baseline_dir.glob(f"{BENCH_PREFIX}*.json"))
    if only:
        baselines = [p for p in baselines if _bench_id(p) in set(only)]
        known = {_bench_id(p) for p in baselines}
        missing_ids = [bench_id for bench_id in only if bench_id not in known]
        if missing_ids and not update:
            print(f"no baseline for ids: {', '.join(missing_ids)}", file=sys.stderr)
            return 2

    if update:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        sources = sorted(results_dir.glob(f"{BENCH_PREFIX}*.json"))
        if only:
            sources = [p for p in sources if _bench_id(p) in set(only)]
        if not sources:
            print(f"--update found no {BENCH_PREFIX}*.json under {results_dir}",
                  file=sys.stderr)
            return 2
        for source in sources:
            shutil.copy2(source, baseline_dir / source.name)
            print(f"blessed {source.name}")
        return 0

    if not baselines:
        print(f"no baselines under {baseline_dir}; run with --update first",
              file=sys.stderr)
        return 2

    failures = 0
    for baseline_path in baselines:
        bench_id = _bench_id(baseline_path)
        fresh_path = results_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {bench_id}: no fresh result at {fresh_path} "
                  "(did the benchmark run?)")
            failures += 1
            continue
        problems = compare_one(_load(baseline_path), _load(fresh_path),
                               wall_tolerance, wall_floor)
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {bench_id}: {problem}")
        else:
            print(f"ok   {bench_id}")
    if failures:
        print(f"\n{failures} benchmark(s) regressed; if intentional, re-bless with "
              f"`python benchmarks/check_regression.py --update` and commit "
              f"{baseline_dir}/", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("ids", nargs="*",
                        help="bench ids to check (default: every committed baseline)")
    parser.add_argument("--baseline-dir", type=Path, default=here / "baselines")
    parser.add_argument("--results-dir", type=Path, default=here / "results")
    parser.add_argument("--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE,
                        help="relative wall-clock tolerance (default %(default)s)")
    parser.add_argument("--wall-floor", type=float, default=DEFAULT_WALL_FLOOR,
                        help="skip the wall check when the baseline wall is below "
                             "this many seconds (default %(default)s)")
    parser.add_argument("--events-only", action="store_true",
                        help="skip the wall-clock check entirely; compare only "
                             "events_fired.  For CI, where runner hardware does "
                             "not match the machine that blessed the baselines.")
    parser.add_argument("--update", action="store_true",
                        help="bless fresh results as the new baselines")
    args = parser.parse_args(argv)
    wall_floor = float("inf") if args.events_only else args.wall_floor
    return check(args.baseline_dir, args.results_dir, args.ids or None,
                 args.wall_tolerance, wall_floor, args.update)


if __name__ == "__main__":
    sys.exit(main())
