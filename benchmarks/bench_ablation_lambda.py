"""Ablation bench: λ — duplicate WAN requests vs regional recovery (§2.2)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_lambda import run_lambda_sweep


def test_ablation_lambda_sweep(benchmark, show):
    table = run_once(benchmark, run_lambda_sweep, bench_id="ablation_lambda",
                     lams=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
                     region_size=50, seeds=30)
    show(table)
    requests = table.series["mean remote requests sent"]
    recovery = table.series["mean time to full region recovery (ms)"]
    assert requests[-1] > requests[0]   # duplicates grow with lambda
    assert recovery[0] > recovery[-1]   # recovery speeds up with lambda
    # Diminishing returns: going 4 -> 8 buys far less than 0.25 -> 1.
    gain_low = recovery[0] - recovery[2]
    gain_high = recovery[4] - recovery[5]
    assert gain_low > gain_high
