"""Regenerate paper Figure 7: #received vs #buffered over time (k = 1).

Paper claim: the buffered count tracks the received count while
recovery is in progress, then collapses rapidly once an overwhelming
majority (~96%) of members have the message.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_fig7


def test_fig7_received_vs_buffered(benchmark, show):
    table = run_once(benchmark, run_fig7, bench_id="fig7",
                     n=100, k=1, seed=0,
                     sample_dt=5.0, horizon=200.0)
    show(table)
    received = table.series["#received"]
    buffered = table.series["#buffered"]
    assert received[0] == 1.0 and received[-1] == 100.0
    assert all(b >= a for a, b in zip(received, received[1:]))
    # While coverage is below ~90%, buffering tracks receipt closely.
    for r, b in zip(received, buffered):
        if r <= 90.0:
            assert b >= 0.9 * r
    # And collapses by the end of the window.
    assert buffered[-1] <= 5.0
