"""Regenerate paper Figure 9: search time vs region size (10 bufferers).

Paper claim: growing the region 100 -> 1000 members increases search
time by only ~2.2x, while buffer space saved vs buffer-everywhere grows
to 100x.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig9 import run_fig9


def test_fig9_search_time_vs_region_size(benchmark, show):
    table = run_once(benchmark, run_fig9, bench_id="fig9",
                     ns=tuple(range(100, 1001, 100)), bufferers=10, seeds=50)
    show(table)
    times = table.series["mean search time (ms)"]
    growth = table.series["growth vs smallest n"]
    assert times[-1] > times[0]          # grows with region size...
    assert 1.5 < growth[-1] < 4.0        # ...but sublinearly (paper: 2.2x)
    savings = table.series["buffer-space saving vs buffer-everywhere"]
    assert savings[-1] == 100.0          # paper's 100x at n=1000
