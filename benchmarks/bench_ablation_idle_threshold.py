"""Ablation bench: sensitivity to the idle threshold T (§3.1)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_idle import run_idle_threshold


def test_ablation_idle_threshold(benchmark, show):
    table = run_once(benchmark, run_idle_threshold, bench_id="ablation_idle_threshold",
                     thresholds=(10.0, 20.0, 40.0, 80.0, 160.0),
                     n=100, k=4, seeds=20)
    show(table)
    violations = table.series["reliability violations"]
    buffering = table.series["mean holder buffering time (ms)"]
    requests = table.series["mean local requests per run"]
    # Aggressive T: discards while requests are in flight.
    assert violations[0] > violations[2]
    assert requests[0] > requests[2]
    # The paper's T = 40 ms sits where violations all but vanish (§5
    # admits a small residual probability, so assert "rare", not zero:
    # ~2000 recoveries happen across the 20 seeds at this x-point).
    assert violations[2] <= 5
    assert violations[0] > 100 * max(1, violations[2])
    # ...and larger T only buys more buffering time.
    assert buffering[-1] > buffering[2] > buffering[0]
