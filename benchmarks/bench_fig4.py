"""Regenerate paper Figure 4: P[no long-term bufferer] vs C.

Paper claim: the probability decreases exponentially with C; at C = 6
it is only 0.25%.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4 import run_fig4


def test_fig4_no_bufferer_probability(benchmark, show):
    table = run_once(benchmark, run_fig4, bench_id="fig4",
                     trials=50_000)
    show(table)
    poisson = table.series["poisson e^-C"]
    assert all(a > b for a, b in zip(poisson, poisson[1:]))  # strictly decaying
    assert abs(poisson[0] - 36.79) < 0.1   # e^-1 at C=1
    assert abs(poisson[-1] - 0.25) < 0.02  # the paper's headline 0.25%
    simulated = table.series["simulated (50000 trials)"]
    for analytic, measured in zip(table.series["binomial (1-C/n)^n, n=100"], simulated):
        assert abs(analytic - measured) < 1.0
