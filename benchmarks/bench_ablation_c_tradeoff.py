"""Ablation bench: the C trade-off (§3.2) — copies vs late recovery."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_c import run_c_tradeoff


def test_ablation_c_tradeoff(benchmark, show):
    table = run_once(benchmark, run_c_tradeoff, bench_id="ablation_c_tradeoff",
                     cs=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0), n=100, seeds=30)
    show(table)
    copies = table.series["mean long-term copies (buffer cost)"]
    assert all(a <= b + 0.5 for a, b in zip(copies, copies[1:]))  # grows with C
    unserved = table.series["unserved within horizon"]
    assert unserved[0] >= unserved[-1]  # large C rescues the unlucky receiver
    assert unserved[-1] == 0
