"""Regenerate paper Figure 8: search time vs number of bufferers.

Paper setup: region of 100; the remote request lands on a random
member; 100 seeds averaged.  Claim: search time decreases with the
bufferer count; ~20 ms (two RTTs) at 10 bufferers.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig8 import run_fig8


def test_fig8_search_time_vs_bufferers(benchmark, show):
    table = run_once(benchmark, run_fig8, bench_id="fig8",
                     bs=tuple(range(1, 11)), n=100, seeds=100)
    show(table)
    times = table.series["mean search time (ms)"]
    # Monotone trend (tolerate small adjacent noise, require the sweep).
    assert times[0] > times[-1]
    assert all(times[i] >= times[i + 2] for i in range(len(times) - 2))
    assert 35.0 < times[0] < 65.0   # paper: ~45-50 ms at b=1
    assert 14.0 < times[-1] < 28.0  # paper: ~20 ms at b=10
