"""Engine microbenchmarks: raw event loop and timer-churn hot paths.

Unlike the figure benches, these measure the *simulator's own* overhead
— no protocol, no network — so regressions in event dispatch, heap
handling or timer re-arming show up undiluted.  Two workloads:

* **raw-loop** — 64 self-rescheduling event chains; every fired event
  pushes one successor, so the run is pure pop/fire/push.
* **timer-churn** — the §3.1 idle-threshold pattern at its worst: a
  population of :class:`~repro.sim.Timer` objects all pushed back every
  few milliseconds, far more often than they fire.  This is the pattern
  the in-place re-arm optimization targets.

The resulting events/sec (and refresh ops/sec) land in
``BENCH_engine.json`` so `check_regression.py` can hold the engine's
speed over time.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.metrics.report import SeriesTable
from repro.sim.engine import Simulator
from repro.sim.timers import Timer

#: Events fired by the raw-loop workload.
RAW_LOOP_EVENTS = 200_000
#: Timer population and push-back rounds for the churn workload.
CHURN_TIMERS = 2_000
CHURN_ROUNDS = 150


def raw_loop_events_per_sec(n_events: int = RAW_LOOP_EVENTS) -> float:
    """Fire *n_events* through self-rescheduling chains; events/sec."""
    sim = Simulator()
    budget = [n_events]

    def chain() -> None:
        budget[0] -= 1
        if budget[0] > 0:
            sim.after(0.001, chain)

    for _ in range(64):
        sim.after(0.001, chain)
    started = time.perf_counter()
    sim.run(max_events=n_events)
    wall = time.perf_counter() - started
    return sim.events_fired / wall


def timer_churn_ops_per_sec(
    n_timers: int = CHURN_TIMERS, rounds: int = CHURN_ROUNDS,
    idle_threshold: float = 40.0, refresh_interval: float = 5.0,
) -> float:
    """Push back *n_timers* idle timers every *refresh_interval* ms.

    Models a region-wide request wave refreshing every buffered
    message's idle deadline; returns refresh operations per second.
    """
    sim = Simulator()
    fired = [0]
    timers = [Timer(sim, lambda: fired.__setitem__(0, fired[0] + 1))
              for _ in range(n_timers)]

    def refresher(round_no: int) -> None:
        for timer in timers:
            timer.start(idle_threshold)
        if round_no < rounds:
            sim.after(refresh_interval, refresher, round_no + 1)

    for timer in timers:
        timer.start(idle_threshold)
    sim.after(refresh_interval, refresher, 2)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    assert fired[0] == n_timers  # every timer fired exactly once, at the end
    return n_timers * rounds / wall


def run_engine_bench() -> SeriesTable:
    """Both microbenchmarks as one table (best of three runs each)."""
    raw = max(raw_loop_events_per_sec() for _ in range(3))
    churn = max(timer_churn_ops_per_sec() for _ in range(3))
    table = SeriesTable(
        title=(
            f"Engine microbenchmarks — raw loop {RAW_LOOP_EVENTS} events, "
            f"churn {CHURN_TIMERS} timers x {CHURN_ROUNDS} rounds"
        ),
        x_label="workload (1=raw-loop, 2=timer-churn)",
        xs=[1, 2],
    )
    table.add_series("throughput (ops/sec)", [raw, churn])
    table.notes.append(
        "raw-loop: pop/fire/push only; timer-churn: idle-threshold push-back "
        "pattern (in-place re-arm hot path)"
    )
    return table


def test_engine_microbench(benchmark, show):
    table = run_once(benchmark, run_engine_bench, bench_id="engine")
    show(table)
    raw, churn = table.series["throughput (ops/sec)"]
    # Floors are ~5x below the optimized engine's speed on a dev laptop,
    # so only a catastrophic regression (or a debugger) trips them; the
    # exact trajectory is guarded by check_regression.py instead.
    assert raw > 50_000
    assert churn > 100_000
