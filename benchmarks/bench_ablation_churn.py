"""Ablation bench: graceful handoff vs crash under churn (§3.2)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_churn import run_churn_handoff


def test_ablation_churn_handoff(benchmark, show):
    table = run_once(benchmark, run_churn_handoff, bench_id="ablation_churn_handoff",
                     n=50, c=4.0, seeds=30)
    show(table)
    survived = table.series["message survived (%)"]
    transfers = table.series["handoff transfers"]
    graceful, crash = 0, 1
    assert survived[graceful] >= 90.0
    assert survived[crash] <= 10.0
    assert transfers[graceful] > 0.0
    assert transfers[crash] == 0.0
