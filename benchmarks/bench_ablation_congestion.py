"""Ablation bench: adaptive-rate senders vs open loop on a bottleneck.

The headline acceptance for the congestion-control layer: at twice the
collapse load the TFMCC sender's goodput measurably beats the open-loop
sender's, and the run stays clean under the invariant oracle — the
§3.2 long-term quota (``congestion-quota``) included.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation_congestion import run_congestion_ablation
from repro.scenario.registry import get_scenario
from repro.validate.fuzz import run_spec

#: Offered loads as multiples of the sustainable rate; 2.0 is the
#: collapse point the acceptance criterion names.
LOADS = (0.5, 2.0)


def _ablation_with_oracle(**kwargs):
    table = run_congestion_ablation(**kwargs)
    # The oracle leg: the registered CC-on overload scenario must run
    # violation-free, which includes the congestion-quota invariant
    # (rate within [min, max] and long-term occupancy within the §3.2
    # bound).  Recorded in the table notes so BENCH_cc.json carries it.
    outcome = run_spec(get_scenario("overload_onset_cc"))
    assert outcome.error is None, outcome.error
    table.notes.append(
        f"oracle: overload_onset_cc ran clean under all invariants "
        f"(congestion-quota included): {outcome.violation_count} "
        f"violations over {outcome.records_checked} records"
    )
    assert outcome.violation_count == 0, outcome.violations
    return table


def test_ablation_congestion(benchmark, show):
    table = run_once(
        benchmark, _ablation_with_oracle, bench_id="cc",
        loads=LOADS, seeds=3,
    )
    show(table)
    below, overload = 0, 1  # indices of 0.5x and 2x in LOADS
    none_goodput = table.series["none: goodput (msgs/s)"]
    tfmcc_goodput = table.series["tfmcc: goodput (msgs/s)"]
    none_delivered = table.series["none: delivered fraction"]
    tfmcc_delivered = table.series["tfmcc: delivered fraction"]
    # Below capacity the controllers are bystanders: identical goodput.
    assert none_goodput[below] == tfmcc_goodput[below]
    # At 2x the open-loop sender collapses (give-ups leave messages
    # undelivered) while TFMCC throttles to the bottleneck: the
    # acceptance criterion's measurable goodput improvement.
    assert none_delivered[overload] < 0.97
    assert tfmcc_goodput[overload] > none_goodput[overload]
    assert tfmcc_delivered[overload] > none_delivered[overload]
    # Backing off also relieves buffer pressure at the receivers.
    none_occupancy = table.series["none: peak occupancy"]
    tfmcc_occupancy = table.series["tfmcc: peak occupancy"]
    assert tfmcc_occupancy[overload] <= none_occupancy[overload]
    # Both adaptive controllers split a shared bottleneck fairly.
    fairness_notes = [note for note in table.notes if "Jain index" in note]
    assert len(fairness_notes) == 2
