"""Regenerate paper Figure 3: P[k long-term bufferers] for C in {5..8}.

Paper claim: the count of long-term bufferers for an idle message
follows ≈ Poisson(C); curves peak near k = C and shift right with C.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3 import run_fig3


def test_fig3_bufferer_distribution(benchmark, show):
    table = run_once(benchmark, run_fig3, bench_id="fig3",
                     trials=20_000)
    show(table)
    # Shape: each analytic curve peaks near its C and shifts right.
    modes = []
    for c in (5.0, 6.0, 7.0, 8.0):
        series = table.series[f"analytic C={c:g}"]
        modes.append(series.index(max(series)))
    assert modes == sorted(modes)
    assert modes[0] in (4, 5) and modes[-1] in (7, 8)
    # The Monte-Carlo run of the real coin-flip mechanism tracks the
    # analytic curve within sampling noise.
    analytic = table.series["analytic C=6"]
    simulated = table.series["simulated C=6 (n=100, 20000 trials)"]
    for a, s in zip(analytic, simulated):
        assert abs(a - s) < 2.0  # percentage points
