"""Ablation bench: randomized vs deterministic bufferer selection (§3.4)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_hash import run_hash_vs_random


def test_ablation_hash_vs_random(benchmark, show):
    table = run_once(benchmark, run_hash_vs_random, bench_id="ablation_hash_vs_random",
                     n=100, c=6.0, seeds=50)
    show(table)
    randomized, deterministic = 0, 1
    hashes = table.series["hash evaluations"]
    messages = table.series["locate messages"]
    times = table.series["locate time (ms)"]
    # The §3.4 trade-off, measured: the hash scheme computes ~n hashes
    # and forwards once; the randomized scheme pays network hops.
    assert hashes[deterministic] > 50.0
    assert hashes[randomized] == 0.0
    assert messages[randomized] > messages[deterministic]
    assert times[deterministic] <= times[randomized]
    # The randomized arm can rarely lose the message entirely — the
    # §3.2 no-bufferer event, probability ≈ e^{-C} ≈ 0.25% per run —
    # so allow a small unserved tail rather than asserting zero.
    assert all(value <= 0.05 for value in table.series["unserved"])
