"""Ablation bench: per-member costs as the region grows (abstract claim).

Also exercises the north-star `scale` stress scenario — 1,000 members
across 10 regions under a lossy stream — so engine-level optimizations
are measured at the scale the ROADMAP targets, not only on the paper's
100-member workloads.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation_scaling import run_scaling
from repro.metrics.report import SeriesTable
from repro.workloads.scenarios import run_scale


def test_ablation_scaling(benchmark, show):
    table = run_once(benchmark, run_scaling, bench_id="ablation_scaling",
                     ns=(25, 50, 100, 200, 400), seeds=8)
    show(table)
    recovery = table.series["time to full recovery (ms)"]
    requests = table.series["local requests per member"]
    copies = table.series["long-term copies (expect ~C)"]
    # Recovery grows with n, but far slower than linearly (epidemic).
    assert recovery[-1] > recovery[0]
    assert recovery[-1] / recovery[0] < (400 / 25) / 2
    # Per-member request cost stays roughly flat across 16x growth.
    assert max(requests) < 3.0 * min(requests)
    # Long-term copies stay ~C instead of growing with n.
    assert all(2.0 < value < 11.0 for value in copies)


def run_scale_stress(regions: int = 10, members_per_region: int = 100,
                     messages: int = 20, loss_rate: float = 0.05,
                     seed: int = 0) -> SeriesTable:
    """One 1,000-member lossy stream run, reported as a SeriesTable."""
    result = run_scale(regions=regions, members_per_region=members_per_region,
                       messages=messages, loss_rate=loss_rate, seed=seed)
    table = SeriesTable(
        title=(
            f"Scale stress — {regions}x{members_per_region} members, "
            f"{messages} msgs @ {loss_rate:.0%} loss"
        ),
        x_label="run",
        xs=[1],
    )
    table.add_series("members", [float(result.member_count)])
    table.add_series("delivered fraction", [result.delivered_fraction()])
    table.add_series("reliability violations", [float(result.violations)])
    table.add_series("events fired", [float(result.events_fired)])
    table.add_series("control messages", [float(result.control_messages)])
    return table


def test_scale_stress(benchmark, show):
    table = run_once(benchmark, run_scale_stress, bench_id="scale")
    show(table)
    assert table.series["members"] == [1000.0]
    # Recovery must fully repair the 5% multicast loss at 10x paper scale.
    assert table.series["delivered fraction"] == [1.0]
    assert table.series["reliability violations"] == [0.0]
