"""Ablation bench: per-member costs as the region grows (abstract claim)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_scaling import run_scaling


def test_ablation_scaling(benchmark, show):
    table = run_once(benchmark, run_scaling, bench_id="ablation_scaling",
                     ns=(25, 50, 100, 200, 400), seeds=8)
    show(table)
    recovery = table.series["time to full recovery (ms)"]
    requests = table.series["local requests per member"]
    copies = table.series["long-term copies (expect ~C)"]
    # Recovery grows with n, but far slower than linearly (epidemic).
    assert recovery[-1] > recovery[0]
    assert recovery[-1] / recovery[0] < (400 / 25) / 2
    # Per-member request cost stays roughly flat across 16x growth.
    assert max(requests) < 3.0 * min(requests)
    # Long-term copies stay ~C instead of growing with n.
    assert all(2.0 < value < 11.0 for value in copies)