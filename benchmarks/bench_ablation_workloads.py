"""Ablation bench: workload families on the streaming session.

The headline acceptance for the workload subsystem: layering waypoint
mobility onto the streaming session measurably stretches the makespan
and the rebuffer account relative to the static run (handoffs cost
real delivery time), the regional outage produces the largest stall
bill (a whole region replays its gap after the heal), and every mode
runs clean under the full invariant set — handoff-conservation and
rebuffer-accounting included.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments.ablation_workloads import run_workloads_ablation
from repro.scenario.registry import get_scenario
from repro.scenario.spec import MobilitySpec
from repro.validate.fuzz import run_spec

SEEDS = 3


def _ablation_with_oracle(**kwargs):
    table = run_workloads_ablation(**kwargs)
    # The oracle leg: a mobile streaming run must stay violation-free
    # under the full invariant set (handoff-conservation audits every
    # buffer handoff, rebuffer-accounting replays the playout clocks).
    spec = replace(
        get_scenario("streaming_playback"),
        mobility=MobilitySpec(kind="waypoint", speed=2.0, epoch=50.0,
                              distance_loss=0.10),
    )
    outcome = run_spec(spec)
    assert outcome.error is None, outcome.error
    table.notes.append(
        f"oracle: mobile streaming_playback ran clean under all "
        f"invariants (handoff-conservation and rebuffer-accounting "
        f"included): {outcome.violation_count} violations over "
        f"{outcome.records_checked} records"
    )
    assert outcome.violation_count == 0, outcome.violations
    return table


def test_ablation_workloads(benchmark, show):
    table = run_once(
        benchmark, _ablation_with_oracle, bench_id="workloads",
        seeds=SEEDS,
    )
    show(table)
    static, mobility, outage = 0, 1, 2  # mode indices in _MODES order
    makespan = table.series["session makespan (ms)"]
    rebuffer_events = table.series["rebuffer events"]
    rebuffer_time = table.series["rebuffer time (ms)"]
    handoffs = table.series["mobility handoffs"]
    violations = table.series["invariant violations"]
    # The acceptance criterion: mobility measurably costs the stream —
    # handoff rejoins stretch the makespan and stall more playouts.
    assert makespan[mobility] > makespan[static]
    assert rebuffer_events[mobility] > rebuffer_events[static]
    # Only the mobile run hands buffers off; the others must not.
    assert handoffs[mobility] > 0
    assert handoffs[static] == 0 and handoffs[outage] == 0
    # A healed partition replays its whole gap late: the outage's stall
    # bill dwarfs the static run's scattered single-frame stalls.
    assert rebuffer_time[outage] > rebuffer_time[static]
    # Every run executed under the oracle and came back clean.
    assert all(count == 0 for count in violations)
