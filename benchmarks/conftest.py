"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper figure (or ablation) exactly
once under ``pytest-benchmark`` timing, prints the series table to the
terminal (bypassing capture, so ``tee``d output keeps the rows), and
asserts the shape properties the paper reports.

Alongside the printed table, :func:`run_once` writes a machine-readable
``BENCH_<id>.json`` (wall-clock seconds, engine events fired, the
table's SHA-256 digest and full JSON form) so CI can archive the
performance trajectory and compare runs without scraping stdout.  The
output directory defaults to ``benchmarks/results`` and can be moved
with ``$RRMP_BENCH_DIR``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.metrics.report import SeriesTable
from repro.sim.engine import total_events_fired

#: Environment override for where BENCH_<id>.json artifacts land.
BENCH_DIR_ENV = "RRMP_BENCH_DIR"


def bench_output_dir() -> Path:
    """``$RRMP_BENCH_DIR`` or ``benchmarks/results`` next to this file."""
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path(__file__).resolve().parent / "results"


def write_bench_json(bench_id: str, table: SeriesTable, wall_s: float,
                     events_fired: int, params: dict) -> Path:
    """Write one benchmark's machine-readable artifact; returns its path."""
    directory = bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{bench_id}.json"
    payload = {
        "bench_id": bench_id,
        "wall_s": wall_s,
        "events_fired": events_fired,
        "table_digest": table.digest(),
        "params": {key: list(value) if isinstance(value, tuple) else value
                   for key, value in params.items()},
        "unix_time": time.time(),
        "table": table.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


@pytest.fixture
def show(capsys):
    """Print a SeriesTable to the real terminal despite capture."""

    def _show(table: SeriesTable) -> SeriesTable:
        with capsys.disabled():
            print()
            print(table.to_text())
        return table

    return _show


def run_once(benchmark, fn, bench_id=None, **kwargs):
    """Run *fn* exactly once under benchmark timing and return its result.

    When *bench_id* is given, a ``BENCH_<bench_id>.json`` artifact is
    written with the run's wall clock, engine event count, and the
    resulting table's digest.
    """
    accounting = {}

    def measured():
        events_before = total_events_fired()
        started = time.perf_counter()
        table = fn(**kwargs)
        accounting["wall_s"] = time.perf_counter() - started
        accounting["events"] = total_events_fired() - events_before
        return table

    table = benchmark.pedantic(measured, rounds=1, iterations=1)
    if bench_id is not None and isinstance(table, SeriesTable):
        write_bench_json(
            bench_id, table,
            wall_s=accounting.get("wall_s", 0.0),
            events_fired=accounting.get("events", 0),
            params=kwargs,
        )
    return table
