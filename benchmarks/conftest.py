"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper figure (or ablation) exactly
once under ``pytest-benchmark`` timing, prints the series table to the
terminal (bypassing capture, so ``tee``d output keeps the rows), and
asserts the shape properties the paper reports.
"""

from __future__ import annotations

import pytest

from repro.metrics.report import SeriesTable


@pytest.fixture
def show(capsys):
    """Print a SeriesTable to the real terminal despite capture."""

    def _show(table: SeriesTable) -> SeriesTable:
        with capsys.disabled():
            print()
            print(table.to_text())
        return table

    return _show


def run_once(benchmark, fn, **kwargs):
    """Run *fn* exactly once under benchmark timing and return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
