"""Microbenchmarks of the simulation substrate.

Not a paper figure — these time the building blocks (event engine,
transport fan-out, two-phase policy operations, a full protocol round)
so performance regressions in the substrate are visible independently
of the experiment harness.  These use pytest-benchmark's normal
multi-round timing, unlike the one-shot figure benches.
"""

from repro.net.ipmulticast import FixedHolderCount
from repro.net.latency import ConstantLatency
from repro.net.topology import single_region
from repro.net.transport import Network
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation
from repro.sim import RandomStreams, Simulator, TraceLog
from repro.core.manager import TwoPhaseBufferPolicy
from tests.conftest import FakeBufferHost


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of 10k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.after(1.0, tick)

        sim.after(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_network_multicast_fanout(benchmark):
    """Cost of multicasting to 500 endpoints and delivering."""

    class Sink:
        def on_packet(self, packet):
            pass

    def run():
        sim = Simulator()
        network = Network(sim, ConstantLatency(5.0), streams=RandomStreams(1))
        sink = Sink()
        for node in range(500):
            network.register(node, sink)
        data = DataMessage(seq=1, sender=0)
        network.multicast(0, list(range(500)), data)
        sim.run()
        return network.stats.delivered

    assert benchmark(run) == 499


def test_two_phase_policy_churn(benchmark):
    """Receive/request/idle lifecycle for 500 messages."""

    def run():
        sim = Simulator()
        host = FakeBufferHost(sim, TraceLog(keep_records=False), region_size=100)
        policy = TwoPhaseBufferPolicy(idle_threshold=40.0, long_term_c=0.0)
        policy.bind(host)
        for seq in range(500):
            policy.on_receive(DataMessage(seq=seq, sender=0))
            policy.on_request(seq)
        sim.run()
        return len(policy.buffer.records)

    assert benchmark(run) == 500


def test_full_protocol_recovery_round(benchmark):
    """One lossy multicast to 100 members recovered end to end."""

    def run():
        simulation = RrmpSimulation(
            single_region(100),
            config=RrmpConfig(session_interval=25.0),
            seed=5,
            outcome=FixedHolderCount(10),
        )
        simulation.sender.multicast()
        simulation.run(duration=1_000.0)
        return simulation.received_count(1)

    assert benchmark(run) == 100
