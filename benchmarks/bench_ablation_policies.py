"""Ablation bench: all buffering policies on one streamed WAN workload."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_policies import run_policy_comparison


def test_ablation_policy_comparison(benchmark, show):
    table = run_once(benchmark, run_policy_comparison, bench_id="ablation_policies",
                     region_size=20, messages=30, interval=20.0,
                     loss=0.05, seeds=3)
    show(table)
    label_index = {label: i for i, label in enumerate(table.xs)}
    occupancy = table.series["avg total occupancy"]
    control = table.series["control messages"]
    undelivered = table.series["undelivered"]
    two_phase = label_index["two-phase C=6 T=40"]
    never = label_index["never-discard"]
    stability = label_index["stability-gossip"]
    tree = label_index["repair-server tree"]
    # The paper's claims on one table:
    assert occupancy[two_phase] < occupancy[never]          # far below the strawman
    assert control[stability] > 1.5 * control[two_phase]    # digest traffic dominates
    assert undelivered[two_phase] == 0.0                    # still reliable here
    peak_node = table.series["peak single-node occupancy"]
    assert peak_node[tree] >= peak_node[two_phase]           # server hotspot
