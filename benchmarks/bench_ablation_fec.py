"""Ablation bench: FEC repair vs pull recovery vs the RMTP tree."""

from benchmarks.conftest import run_once
from repro.experiments.ablation_fec import run_fec_ablation


def test_ablation_fec(benchmark, show):
    table = run_once(
        benchmark, run_fec_ablation, bench_id="ablation_fec",
        points=((4, 1), (8, 1), (8, 2)),
        loss_rates=(0.1, 0.3),
        seeds=5,
    )
    show(table)
    off_latency = table.series["off: mean latency (ms)"]
    fec_latency = table.series["proactive: mean latency (ms)"]
    off_remote = table.series["off: remote requests"]
    fec_remote = table.series["proactive: remote requests"]
    decoded = table.series["proactive: gaps decoded"]
    # Headline claim: at least one (k, r, loss) point where proactive
    # FEC cuts both mean recovery latency and remote-request count.
    wins = [
        index for index in range(len(off_latency))
        if fec_latency[index] < off_latency[index]
        and fec_remote[index] < off_remote[index]
    ]
    assert wins
    # Parity actually does the work: gaps are decoded, not just pulled.
    assert all(count > 0 for count in decoded)
    # More parity shards fill more gaps: (8, 2) decodes at least as
    # many at p=0.3 as (8, 1) does (indices 3 and 5 of the sweep).
    assert decoded[5] >= decoded[3]
    # Overhead accounting is visible: r/k of the data bytes, in KB.
    parity_kb = table.series["proactive: parity KB"]
    assert parity_kb[0] > 0
