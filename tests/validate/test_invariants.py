"""Fault-injection unit tests: every invariant must actually fire.

Each test feeds the oracle a trace stream (via the fake simulation of
``conftest.py``) that violates exactly one invariant and asserts the
violation is attributed to it — plus the matching clean stream that
must not fire.  An oracle that never flags anything would pass every
scenario test; these are the tests of the tester.
"""

from __future__ import annotations

import pytest

from repro.protocol.messages import DATA_WIRE_SIZE, DataMessage
from repro.validate.invariants import Violation
from repro.validate.oracle import InvariantOracle


def names(oracle):
    return [violation.invariant for violation in oracle.violations]


@pytest.fixture
def oracle(fake_sim):
    return InvariantOracle().attach(fake_sim)


class TestNoDuplicateDelivery:
    def test_duplicate_delivery_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "member_received", node=1, seq=5, via="multicast")
        fake_sim.trace.emit(2.0, "member_received", node=1, seq=5, via="local-repair")
        assert names(oracle) == ["no-duplicate-delivery"]
        assert "delivered seq 5 twice" in oracle.violations[0].message

    def test_distinct_nodes_and_seqs_are_fine(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "member_received", node=1, seq=5, via="multicast")
        fake_sim.trace.emit(1.0, "member_received", node=2, seq=5, via="multicast")
        fake_sim.trace.emit(2.0, "member_received", node=1, seq=6, via="multicast")
        assert oracle.ok


class TestGaplessDelivery:
    def test_unresolved_gap_at_quiescence_fires(self, fake_sim, oracle):
        fake_sim.members[1]._gaps = [4]
        oracle.finish()
        assert names(oracle) == ["gapless-delivery"]

    def test_explicit_violation_exempts_the_gap(self, fake_sim, oracle):
        fake_sim.members[1]._gaps = [4]
        fake_sim.trace.emit(1.0, "loss_detected", node=1, seq=4)
        fake_sim.trace.emit(9.0, "reliability_violation", node=1, seq=4, waited=500.0)
        oracle.finish()
        assert oracle.ok

    def test_non_quiescent_run_skips_the_check(self, fake_sim, oracle):
        fake_sim.members[1]._gaps = [4]
        fake_sim.sim.pending_events = 3  # stopped mid-flight
        oracle.finish()
        assert oracle.ok


class TestBufferConservation:
    def test_discard_without_add_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "buffer_discard", node=1, seq=7, reason="idle",
                            was_long_term=False, duration=0.0)
        assert names(oracle) == ["buffer-conservation"]

    def test_double_add_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "buffer_add", node=1, seq=7)
        fake_sim.trace.emit(2.0, "buffer_add", node=1, seq=7)
        assert "double add" in oracle.violations[0].message

    def test_unknown_discard_reason_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "buffer_add", node=1, seq=7)
        fake_sim.trace.emit(2.0, "buffer_discard", node=1, seq=7, reason="whim")
        assert any("unknown" in v.message for v in oracle.violations)

    def test_balanced_ledger_is_clean(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "buffer_add", node=1, seq=7)
        fake_sim.trace.emit(5.0, "buffer_discard", node=1, seq=7, reason="idle",
                            was_long_term=False, duration=4.0)
        oracle.finish()
        assert oracle.ok

    def test_shutdown_clears_the_nodes_ledger(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "buffer_add", node=1, seq=7)
        fake_sim.trace.emit(2.0, "member_crashed", node=1)
        fake_sim.members[1].alive = False
        oracle.finish()
        assert oracle.ok

    def test_trace_vs_live_state_mismatch_fires(self, fake_sim, oracle):
        # Trace says buffered, member buffer says no.
        fake_sim.trace.emit(1.0, "buffer_add", node=1, seq=7)
        oracle.finish()
        assert "buffer disagrees" in oracle.violations[0].message

    def test_untracked_live_entry_fires(self, fake_sim, oracle):
        # Member buffers something the trace never saw added.
        fake_sim.members[2].policy.buffer.add(DataMessage(seq=9, sender=0), 1.0)
        oracle.finish()
        assert any("no live buffer_add" in v.message for v in oracle.violations)

    def test_matching_trace_and_state_is_clean(self, fake_sim, oracle):
        fake_sim.members[2].policy.buffer.add(DataMessage(seq=9, sender=0), 1.0)
        fake_sim.trace.emit(1.0, "buffer_add", node=2, seq=9)
        oracle.finish()
        assert oracle.ok


class TestLongTermQuota:
    def test_over_promotion_fires(self, fake_sim, oracle):
        # C=6 -> statistical bound 6 + 6*sqrt(6) + 4 ~ 24.7; region 0
        # has many members all promoting the same seq.
        fake_sim.hierarchy.node_regions = {n: 0 for n in range(1, 40)}
        for node in range(1, 30):
            fake_sim.trace.emit(1.0, "long_term_selected", node=node, seq=3,
                                via="coin-flip")
        assert "long-term-quota" in names(oracle)

    def test_expected_c_holders_are_clean(self, fake_sim, oracle):
        for node in (1, 2, 3):
            fake_sim.trace.emit(1.0, "long_term_selected", node=node, seq=3,
                                via="coin-flip")
        assert oracle.ok

    def test_handoff_conserves_the_count(self, fake_sim):
        # Quota-only oracle: the synthetic stream has no buffer_add
        # records, which the conservation invariant would flag.
        from repro.validate.invariants import LongTermQuota

        oracle = InvariantOracle(invariants=[LongTermQuota()]).attach(fake_sim)
        fake_sim.hierarchy.node_regions = {n: 0 for n in range(1, 40)}
        bound_fill = list(range(1, 25))  # 24 holders: still under 24.7
        for node in bound_fill:
            fake_sim.trace.emit(1.0, "long_term_selected", node=node, seq=3,
                                via="coin-flip")
        assert oracle.ok
        # A leaver hands off: discard at 24, promote at 30 — count holds.
        fake_sim.trace.emit(2.0, "buffer_discard", node=24, seq=3,
                            reason="handoff", was_long_term=True, duration=1.0)
        fake_sim.trace.emit(2.5, "long_term_selected", node=30, seq=3, via="handoff")
        assert oracle.ok
        # One more net promotion crosses the bound.
        fake_sim.trace.emit(3.0, "long_term_selected", node=31, seq=3, via="coin-flip")
        assert "long-term-quota" in names(oracle)


class TestRecoveryLiveness:
    def test_completed_recovery_is_clean(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "loss_detected", node=1, seq=4)
        fake_sim.trace.emit(9.0, "recovery_completed", node=1, seq=4, latency=8.0,
                            local_rounds=1, remote_rounds=0, remote_requests=0)
        oracle.finish()
        assert oracle.ok

    def test_open_recovery_at_quiescence_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "loss_detected", node=1, seq=4)
        oracle.finish()
        assert names(oracle) == ["recovery-liveness"]

    def test_terminal_without_detection_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(9.0, "recovery_completed", node=1, seq=4, latency=8.0)
        assert "terminal event without detection" in oracle.violations[0].message

    def test_stalled_active_process_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "loss_detected", node=1, seq=4)
        fake_sim.trace.emit(2.0, "reliability_violation", node=1, seq=4, waited=1.0)
        fake_sim.members[1]._active = [4]  # state says still running
        oracle.finish()
        assert any("stalled" in v.message for v in oracle.violations)

    def test_shutdown_cancels_open_recoveries(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "loss_detected", node=1, seq=4)
        fake_sim.trace.emit(2.0, "member_left", node=1)
        fake_sim.members[1].alive = False
        oracle.finish()
        assert oracle.ok


class TestFecAccounting:
    @staticmethod
    def _encode(trace, block=0, k=4, r=2):
        trace.emit(1.0, "fec_encode", block=block, k=k, r=r, trigger="proactive")

    def test_consistent_records_are_clean(self, fake_sim, oracle):
        self._encode(fake_sim.trace)
        fake_sim.trace.emit(1.0, "fec_parity_overhead", block=0, parity_messages=2,
                            parity_bytes=2 * DATA_WIRE_SIZE,
                            data_bytes=4 * DATA_WIRE_SIZE)
        oracle.finish()
        assert oracle.ok

    def test_double_encode_fires(self, fake_sim, oracle):
        self._encode(fake_sim.trace)
        self._encode(fake_sim.trace)
        assert "encoded twice" in oracle.violations[0].message

    def test_parity_count_mismatch_fires(self, fake_sim, oracle):
        self._encode(fake_sim.trace)
        fake_sim.trace.emit(1.0, "fec_parity_overhead", block=0, parity_messages=1,
                            parity_bytes=DATA_WIRE_SIZE,
                            data_bytes=4 * DATA_WIRE_SIZE)
        assert any("encoded with r=2" in v.message for v in oracle.violations)

    def test_orphan_overhead_fires(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "fec_parity_overhead", block=5, parity_messages=1,
                            parity_bytes=DATA_WIRE_SIZE, data_bytes=DATA_WIRE_SIZE)
        assert any("no encode" in v.message for v in oracle.violations)

    def test_byte_accounting_mismatch_fires(self, fake_sim, oracle):
        self._encode(fake_sim.trace)
        fake_sim.trace.emit(1.0, "fec_parity_overhead", block=0, parity_messages=2,
                            parity_bytes=7, data_bytes=4 * DATA_WIRE_SIZE)
        assert any("parity_bytes" in v.message for v in oracle.violations)


class TestViolationShape:
    def test_to_dict_includes_the_record(self, fake_sim, oracle):
        fake_sim.trace.emit(1.0, "member_received", node=1, seq=5, via="multicast")
        fake_sim.trace.emit(2.0, "member_received", node=1, seq=5, via="handoff")
        payload = oracle.violations[0].to_dict()
        assert payload["invariant"] == "no-duplicate-delivery"
        assert payload["record"]["kind"] == "member_received"
        assert payload["record"]["fields"]["via"] == "handoff"

    def test_to_dict_without_record(self):
        payload = Violation("x", 1.0, "boom").to_dict()
        assert "record" not in payload


class TestAdaptiveTopology:
    """Feed tree_reparent records against a real (mutable) hierarchy."""

    @staticmethod
    def _star():
        from repro.net.topology import star

        return star(2, [2, 2])

    def test_legal_reparent_is_clean(self, oracle, fake_sim):
        fake_sim.hierarchy = self._star()
        fake_sim.hierarchy.regions[2].parent_id = 1  # apply the move first
        fake_sim.trace.emit(10.0, "tree_reparent", region=2, old_parent=0,
                            new_parent=1, previous_cost=800.0,
                            predicted_cost=160.0)
        assert oracle.finish() == ()

    def test_reparent_onto_empty_region_fires(self, oracle, fake_sim):
        fake_sim.hierarchy = self._star()
        fake_sim.hierarchy.add_region(3, parent_id=0)  # exists, no members
        fake_sim.hierarchy.regions[2].parent_id = 3
        fake_sim.trace.emit(10.0, "tree_reparent", region=2, old_parent=0,
                            new_parent=3, previous_cost=800.0,
                            predicted_cost=160.0)
        assert any("empty region" in v.message for v in oracle.violations)

    def test_reparent_onto_missing_region_fires(self, oracle, fake_sim):
        fake_sim.hierarchy = self._star()
        fake_sim.trace.emit(10.0, "tree_reparent", region=2, old_parent=0,
                            new_parent=99, previous_cost=800.0,
                            predicted_cost=160.0)
        assert any("missing" in v.message for v in oracle.violations)

    def test_cycle_fires(self, oracle, fake_sim):
        fake_sim.hierarchy = self._star()
        # Manufacture 1 -> 2 -> 1 behind the optimizer's back.
        fake_sim.hierarchy.regions[1].parent_id = 2
        fake_sim.hierarchy.regions[2].parent_id = 1
        fake_sim.trace.emit(10.0, "tree_reparent", region=2, old_parent=0,
                            new_parent=1, previous_cost=800.0,
                            predicted_cost=160.0)
        assert any("invalid" in v.message for v in oracle.violations)

    def test_split_forest_fires(self, oracle, fake_sim):
        fake_sim.hierarchy = self._star()
        fake_sim.hierarchy.regions[2].parent_id = None  # second root
        fake_sim.trace.emit(10.0, "tree_reparent", region=2, old_parent=0,
                            new_parent=1, previous_cost=800.0,
                            predicted_cost=160.0)
        assert any("disconnected" in v.message for v in oracle.violations)

    def test_inert_without_reparent_records(self, oracle, fake_sim):
        """Static runs pay nothing: no records, no end-of-run re-check —
        even a hierarchy the invariant would reject goes unexamined."""
        fake_sim.hierarchy = self._star()
        fake_sim.hierarchy.regions[2].parent_id = None
        assert oracle.finish() == ()
