"""Fixtures for the invariant-oracle tests: a minimal fake simulation.

The oracle observes a simulation through a narrow surface — its trace
log, event queue, hierarchy, config and per-member introspection hooks
— so these fakes implement exactly that surface, letting invariant
tests emit hand-crafted (including deliberately inconsistent) trace
streams without building a protocol stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.core.buffer import MessageBuffer
from repro.sim import TraceLog


class FakeEngine:
    def __init__(self) -> None:
        self.now = 0.0
        self.pending_events = 0
        self.events_fired = 0


class FakeHierarchy:
    def __init__(self, node_regions: Optional[Dict[int, int]] = None) -> None:
        self.node_regions = dict(node_regions or {})

    def contains(self, node_id: int) -> bool:
        return node_id in self.node_regions

    def region_id_of(self, node_id: int) -> int:
        return self.node_regions[node_id]


class FakeConfig:
    def __init__(self, long_term_c: float = 6.0) -> None:
        self.long_term_c = long_term_c


class FakePolicy:
    def __init__(self) -> None:
        self.buffer = MessageBuffer()


class FakeMember:
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        self.policy = FakePolicy()
        self._gaps: List[int] = []
        self._active: List[int] = []

    # --- oracle hooks -------------------------------------------------
    def is_buffering(self, seq: int) -> bool:
        return seq in self.policy.buffer

    def buffered_seqs(self):
        return tuple(self.policy.buffer.seqs())

    def unresolved_gaps(self):
        return tuple(self._gaps)

    def active_recovery_seqs(self):
        return tuple(self._active)


class FakeSimulation:
    """Just enough of RrmpSimulation for InvariantOracle."""

    def __init__(self, nodes: Optional[Dict[int, int]] = None,
                 long_term_c: float = 6.0) -> None:
        nodes = nodes if nodes is not None else {1: 0, 2: 0, 3: 0}
        self.trace = TraceLog()
        self.sim = FakeEngine()
        self.hierarchy = FakeHierarchy(nodes)
        self.config = FakeConfig(long_term_c)
        self.members = {node: FakeMember(node) for node in nodes}

    def alive_members(self):
        return [member for member in self.members.values() if member.alive]


@pytest.fixture
def fake_sim() -> FakeSimulation:
    """Three members in one region, C=6."""
    return FakeSimulation()
