"""Tests for the ``validate`` CLI subcommand."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.cli import main
from repro.scenario.registry import get_scenario
from repro.sim import trace_digest
from repro.validate.fuzz import sample_spec


class TestValidateRun:
    def test_registry_scenario_clean_exit(self, capsys):
        assert main(["validate", "run", "search"]) == 0
        output = capsys.readouterr().out
        assert "all invariants hold" in output
        assert "invariant violations 0" in output

    def test_json_payload(self, capsys):
        assert main(["validate", "run", "search", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "search"
        assert payload["violation_count"] == 0
        assert payload["error"] is None
        assert payload["records_checked"] > 0

    def test_seed_override(self, capsys):
        assert main(["validate", "run", "search", "--seed", "9", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["seed"] == 9

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["validate", "run", "no_such_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_spec_json_file_runs(self, tmp_path, capsys):
        spec = sample_spec(0, 1)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["validate", "run", str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["scenario"] == spec.name


class TestValidateFuzz:
    def test_clean_fuzz_exits_zero(self, capsys):
        assert main(["validate", "fuzz", "--trials", "5", "--seed", "0",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["trials"] == 5

    def test_text_report(self, capsys):
        assert main(["validate", "fuzz", "--trials", "3", "--seed", "1"]) == 0
        captured = capsys.readouterr()
        assert "all invariants hold on every sampled scenario" in captured.out
        assert "trial    0" in captured.err  # per-trial progress on stderr

    def test_bad_trial_count_is_a_usage_error(self, capsys):
        assert main(["validate", "fuzz", "--trials", "0"]) == 2


class TestValidateReplay:
    def test_replay_spec_file(self, tmp_path, capsys):
        spec = sample_spec(0, 2)
        path = tmp_path / "repro.json"
        path.write_text(json.dumps({"format": "rrmp-validate-repro/1",
                                    "spec": spec.to_dict()}))
        assert main(["validate", "replay", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == spec.name
        assert payload["violation_count"] == 0

    def test_missing_artifact_is_a_usage_error(self, capsys):
        assert main(["validate", "replay", "/nonexistent/artifact.json"]) == 2
        assert "cannot load artifact" in capsys.readouterr().err


class TestReplayDirectory:
    @staticmethod
    def write_artifact(directory, name, spec):
        path = directory / name
        path.write_text(json.dumps({"format": "rrmp-validate-repro/1",
                                    "spec": spec.to_dict()}))
        return path

    def test_clean_directory_replays_every_artifact(self, tmp_path, capsys):
        self.write_artifact(tmp_path, "a.json", sample_spec(0, 3))
        self.write_artifact(tmp_path, "b.json", sample_spec(1, 3))
        assert main(["validate", "replay", str(tmp_path)]) == 0
        assert "2/2 replay clean" in capsys.readouterr().out

    def test_json_summary_shape(self, tmp_path, capsys):
        self.write_artifact(tmp_path, "a.json", sample_spec(0, 3))
        assert main(["validate", "replay", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(tmp_path)
        assert payload["artifacts"] == 1
        assert payload["failures"] == 0
        [result] = payload["results"]
        assert result["status"] == "ok"
        assert result["violation_count"] == 0

    def test_unloadable_artifact_counts_as_a_failure(self, tmp_path, capsys):
        self.write_artifact(tmp_path, "good.json", sample_spec(0, 3))
        (tmp_path / "bad.json").write_text("{broken")
        assert main(["validate", "replay", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == 1
        statuses = {os.path.basename(r["artifact"]): r["status"]
                    for r in payload["results"]}
        assert statuses["bad.json"] == "load_error"
        assert statuses["good.json"] == "ok"

    def test_empty_directory_is_a_usage_error(self, tmp_path, capsys):
        assert main(["validate", "replay", str(tmp_path)]) == 2
        assert "no *.json artifacts" in capsys.readouterr().err


class TestValidateDigest:
    def test_digest_matches_a_direct_run(self, capsys):
        assert main(["validate", "digest", "search"]) == 0
        printed = capsys.readouterr().out.split()[0]
        built = get_scenario("search").build().run()
        assert printed == trace_digest(built.simulation.trace.records)

    def test_unknown_scenario(self, capsys):
        assert main(["validate", "digest", "nope"]) == 2


def test_validate_appears_in_help():
    with pytest.raises(SystemExit):
        main(["--help"])
