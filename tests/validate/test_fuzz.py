"""Tests for the scenario fuzzer: sampling, artifacts, minimization."""

from __future__ import annotations

import json

from repro.scenario.spec import ChurnSpec, FecSpec, LossSpec, ScenarioSpec
from repro.validate import fuzz as fuzz_module
from repro.validate.fuzz import (
    ARTIFACT_FORMAT,
    TrialOutcome,
    _traffic_end,
    artifact_payload,
    load_artifact_spec,
    minimize_spec,
    run_fuzz,
    run_spec,
    sample_spec,
    write_artifact,
)


class TestSampling:
    def test_sampling_is_deterministic(self):
        assert sample_spec(0, 7) == sample_spec(0, 7)
        assert sample_spec(0, 7).digest() == sample_spec(0, 7).digest()

    def test_distinct_trials_differ(self):
        digests = {sample_spec(0, index).digest() for index in range(20)}
        assert len(digests) == 20

    def test_distinct_seeds_differ(self):
        assert sample_spec(0, 3) != sample_spec(1, 3)

    def test_samples_are_valid_and_bounded(self):
        for index in range(50):
            spec = sample_spec(2, index)
            # Constructing the frozen spec validates every field.
            assert spec.topology.member_count() <= 40
            measurement = spec.measurement
            assert measurement.oracle and measurement.drain
            assert measurement.duration is not None
            # Termination guarantees (see fuzz module docstring).
            assert spec.policy.max_recovery_time is not None
            assert spec.policy.max_search_rounds is not None
            assert spec.policy.session_interval is not None

    def test_samples_round_trip_through_json(self):
        for index in range(10):
            spec = sample_spec(3, index)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_traffic_end_covers_all_kinds(self):
        for index in range(30):
            spec = sample_spec(4, index)
            assert _traffic_end(spec.traffic) >= 0.0

    def test_congestion_sampled_in_both_modes(self):
        """The fuzzer must exercise open-loop AND controlled senders."""
        modes = {sample_spec(5, index).congestion.enabled
                 for index in range(40)}
        assert modes == {True, False}

    def test_cc_samples_have_valid_rate_windows(self):
        for index in range(50):
            spec = sample_spec(6, index)
            cc = spec.congestion
            if cc.enabled:
                assert 0.0 < cc.min_rate <= cc.max_rate
                assert cc.feedback_interval > 0.0
                # Throttled senders get extra drain headroom.
                assert spec.measurement.duration >= (
                    _traffic_end(spec.traffic) + 1000.0 / cc.min_rate
                )

    def test_adapt_sampled_in_both_modes(self):
        """The fuzzer must exercise static AND adaptive hierarchies."""
        modes = [sample_spec(8, index).adapt.enabled for index in range(60)]
        assert True in modes and False in modes
        # Roughly the configured ~30% on-rate, not a token one-off.
        assert 5 <= sum(modes) <= 40

    def test_adapt_samples_are_bounded(self):
        for index in range(60):
            adapt = sample_spec(8, index).adapt
            if adapt.enabled:
                assert adapt.mode == "passive"
                assert adapt.update_interval > 0.0
                assert adapt.hysteresis >= 0.0
                assert 1 <= adapt.max_reparents <= 6
                assert 0.0 < adapt.ewma_alpha <= 1.0


class TestRunSpec:
    def test_clean_trial(self):
        outcome = run_spec(sample_spec(0, 0))
        assert not outcome.failed
        assert outcome.failure_key == ""
        assert outcome.records_checked > 0
        assert outcome.events_fired > 0

    def test_cc_enabled_sample_runs_clean(self):
        index = next(i for i in range(60)
                     if sample_spec(7, i).congestion.enabled)
        outcome = run_spec(sample_spec(7, index))
        assert not outcome.failed
        assert outcome.records_checked > 0

    def test_adapt_enabled_sample_runs_clean(self):
        index = next(i for i in range(80)
                     if sample_spec(8, i).adapt.enabled)
        outcome = run_spec(sample_spec(8, index))
        assert not outcome.failed
        assert outcome.records_checked > 0

    def test_crash_is_captured_not_raised(self):
        # An unsatisfiable build (detect_all holders > group size)
        # must come back as an error outcome, not an exception.
        spec = sample_spec(0, 0)
        bad = spec.with_(traffic=spec.traffic.__class__(
            kind="detect_all", holders=10_000))
        outcome = run_spec(bad)
        assert outcome.failed
        assert outcome.error is not None
        assert outcome.failure_key.startswith("error:")


class TestArtifacts:
    def test_payload_and_file_round_trip(self, tmp_path):
        spec = sample_spec(0, 5)
        outcome = TrialOutcome(
            spec=spec,
            violations=[{"invariant": "recovery-liveness", "time": 1.0,
                         "message": "boom"}],
            violation_count=1,
        )
        payload = artifact_payload(outcome, fuzz_seed=0, trial_index=5)
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["digest"] == spec.digest()
        assert payload["first_violation"]["invariant"] == "recovery-liveness"
        path = write_artifact(payload, str(tmp_path / "artifacts"))
        restored = load_artifact_spec(path)
        assert restored == spec

    def test_load_bare_spec_json(self, tmp_path):
        spec = sample_spec(0, 1)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert load_artifact_spec(str(path)) == spec

    def test_error_outcome_payload(self):
        outcome = TrialOutcome(spec=sample_spec(0, 2), error="ValueError: nope")
        payload = artifact_payload(outcome, fuzz_seed=0, trial_index=2)
        assert payload["error"] == "ValueError: nope"
        assert "first_violation" not in payload

    def test_adaptive_violation_artifact_is_replayable(self, tmp_path):
        """An adaptive-topology failure must ship a one-command repro:
        the artifact keeps the adapt node, and the restored spec runs."""
        index = next(i for i in range(80)
                     if sample_spec(8, i).adapt.enabled)
        spec = sample_spec(8, index)
        outcome = TrialOutcome(
            spec=spec,
            violations=[{"invariant": "adaptive-topology", "time": 250.0,
                         "message": "region 2 re-parented onto empty region 3"}],
            violation_count=1,
        )
        payload = artifact_payload(outcome, fuzz_seed=8, trial_index=index)
        assert payload["first_violation"]["invariant"] == "adaptive-topology"
        path = write_artifact(payload, str(tmp_path / "artifacts"))
        restored = load_artifact_spec(path)
        assert restored == spec
        assert restored.adapt.enabled
        assert restored.digest() == spec.digest()
        replayed = run_spec(restored)  # the `validate replay` path
        assert replayed.records_checked > 0


class TestMinimization:
    def test_minimizer_strips_irrelevant_dimensions(self, monkeypatch):
        """With a stubbed runner that fails iff churn is on, the
        minimizer must drop fec and loss but keep churn."""
        spec = sample_spec(0, 0).with_(
            churn=ChurnSpec(kind="random", leave_rate=0.01),
            fec=FecSpec(mode="proactive", block_size=4, parity=1),
            loss=LossSpec(kind="bernoulli", p=0.2),
        )

        def fake_run(candidate):
            outcome = TrialOutcome(spec=candidate)
            if candidate.churn.kind == "random":
                outcome.violation_count = 1
                outcome.violations = [
                    {"invariant": "recovery-liveness", "time": 0.0, "message": "x"}
                ]
            return outcome

        monkeypatch.setattr(fuzz_module, "run_spec", fake_run)
        minimized, outcome, runs = minimize_spec(spec, "invariant:recovery-liveness")
        assert minimized.churn.kind == "random"
        assert minimized.fec.mode == "off"
        assert minimized.loss.kind == "none"
        assert runs > 0
        # The minimizer hands back the verified failing outcome so the
        # caller never has to re-run the minimized spec.
        assert outcome is not None and outcome.failed
        assert outcome.spec == minimized

    def test_minimizer_can_drop_congestion(self, monkeypatch):
        """A failure independent of the controller sheds the CC node."""
        from repro.scenario.spec import CongestionSpec

        spec = sample_spec(0, 0).with_(
            churn=ChurnSpec(kind="random", leave_rate=0.01),
            congestion=CongestionSpec(controller="aimd", min_rate=5.0,
                                      max_rate=100.0),
        )

        def fake_run(candidate):
            outcome = TrialOutcome(spec=candidate)
            if candidate.churn.kind == "random":
                outcome.violation_count = 1
                outcome.violations = [
                    {"invariant": "recovery-liveness", "time": 0.0, "message": "x"}
                ]
            return outcome

        monkeypatch.setattr(fuzz_module, "run_spec", fake_run)
        minimized, _outcome, _runs = minimize_spec(
            spec, "invariant:recovery-liveness")
        assert not minimized.congestion.enabled
        assert minimized.churn.kind == "random"

    def test_minimizer_can_drop_adapt(self, monkeypatch):
        """A failure independent of re-parenting sheds the adapt node."""
        from repro.scenario.spec import AdaptSpec

        spec = sample_spec(0, 0).with_(
            churn=ChurnSpec(kind="random", leave_rate=0.01),
            adapt=AdaptSpec(mode="passive", update_interval=100.0),
        )

        def fake_run(candidate):
            outcome = TrialOutcome(spec=candidate)
            if candidate.churn.kind == "random":
                outcome.violation_count = 1
                outcome.violations = [
                    {"invariant": "recovery-liveness", "time": 0.0, "message": "x"}
                ]
            return outcome

        monkeypatch.setattr(fuzz_module, "run_spec", fake_run)
        minimized, _outcome, _runs = minimize_spec(
            spec, "invariant:recovery-liveness")
        assert not minimized.adapt.enabled
        assert minimized.churn.kind == "random"

    def test_minimizer_keeps_spec_when_nothing_reproduces(self, monkeypatch):
        spec = sample_spec(0, 0).with_(loss=LossSpec(kind="bernoulli", p=0.2))
        monkeypatch.setattr(
            fuzz_module, "run_spec", lambda candidate: TrialOutcome(spec=candidate)
        )
        minimized, outcome, _runs = minimize_spec(spec, "invariant:whatever")
        assert minimized == spec
        assert outcome is None


class TestRunFuzz:
    def test_clean_fuzz_session(self, tmp_path):
        report = run_fuzz(trials=10, seed=0, artifact_dir=str(tmp_path))
        assert report.ok
        assert report.failures == []
        assert list(tmp_path.iterdir()) == []
        assert report.records_checked > 0
        payload = report.to_dict()
        assert payload["ok"] is True and payload["trials"] == 10

    def test_failing_trial_writes_a_minimized_artifact(self, tmp_path, monkeypatch):
        real_run = fuzz_module.run_spec

        def failing_run(candidate):
            outcome = real_run(candidate)
            if candidate.churn.kind == "random":
                outcome.violation_count += 1
                outcome.violations = outcome.violations + [
                    {"invariant": "fake", "time": 0.0, "message": "injected"}
                ]
            return outcome

        monkeypatch.setattr(fuzz_module, "run_spec", failing_run)
        trials = 6
        churny = [i for i in range(trials)
                  if sample_spec(0, i).churn.kind == "random"]
        assert churny, "expected at least one churny sample in the window"
        report = run_fuzz(trials=trials, seed=0, artifact_dir=str(tmp_path))
        assert not report.ok
        assert len(report.failures) == len(churny)
        assert len(report.artifacts) == len(churny)
        with open(report.artifacts[0], encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["format"] == ARTIFACT_FORMAT
        assert artifact["failure"] == "invariant:fake"
        # Minimization ran and (at least) kept the failure reproducing.
        restored = load_artifact_spec(report.artifacts[0])
        assert restored.churn.kind == "random"

    def test_progress_callback_fires_per_trial(self):
        seen = []
        run_fuzz(trials=3, seed=1, minimize=False,
                 progress=lambda index, outcome: seen.append(index))
        assert seen == [0, 1, 2]


def test_fuzz_acceptance_batch():
    """A slice of the acceptance run (200 trials is the CLI gate)."""
    report = run_fuzz(trials=40, seed=0, minimize=False)
    assert report.ok
