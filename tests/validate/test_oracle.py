"""Oracle integration tests against real simulations.

The headline guarantees: attaching the oracle never changes a run
(event-for-event identical trace), every registered scenario passes
the full invariant set, and the oracle refuses trace configurations
under which it would silently observe nothing.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.net.ipmulticast import FixedHolderCount
from repro.net.topology import single_region
from repro.protocol.rrmp import RrmpSimulation
from repro.scenario.registry import get_scenario, scenario_names
from repro.sim import NullTraceLog, trace_digest
from repro.validate.oracle import MAX_STORED_VIOLATIONS, InvariantOracle
from repro.validate.invariants import Violation


def test_attach_refuses_null_trace_log():
    simulation = RrmpSimulation(single_region(4), seed=1)
    simulation.trace = NullTraceLog()
    with pytest.raises(RuntimeError, match="NullTraceLog"):
        InvariantOracle().attach(simulation)


def test_attach_twice_refused():
    simulation = RrmpSimulation(single_region(4), seed=1)
    oracle = InvariantOracle().attach(simulation)
    with pytest.raises(RuntimeError, match="already attached"):
        oracle.attach(simulation)


def test_finish_before_attach_refused():
    with pytest.raises(RuntimeError, match="never attached"):
        InvariantOracle().finish()


def test_streaming_trace_log_is_accepted():
    """keep_records=False still fans out to subscribers — valid for the
    oracle (only NullTraceLog is a dead end)."""
    simulation = RrmpSimulation(
        single_region(10), seed=3, outcome=FixedHolderCount(3), keep_trace=False
    )
    oracle = InvariantOracle().attach(simulation)
    simulation.sender.multicast()
    simulation.drain()
    oracle.finish()
    assert oracle.records_checked > 0
    assert oracle.ok


def test_simple_lossy_run_is_clean_and_checked():
    simulation = RrmpSimulation(
        single_region(20), seed=7, outcome=FixedHolderCount(5)
    )
    oracle = InvariantOracle().attach(simulation)
    for _ in range(3):
        simulation.sender.multicast()
    simulation.drain()
    violations = oracle.finish()
    assert violations == ()
    assert oracle.ok
    assert oracle.records_checked > 50
    report = oracle.report_dict()
    assert report["violation_count"] == 0
    assert report["finished"] is True
    assert set(report["violations_by_invariant"]) == {
        "no-duplicate-delivery", "gapless-delivery", "buffer-conservation",
        "long-term-quota", "recovery-liveness", "fec-accounting",
        "congestion-quota", "adaptive-topology",
        "handoff-conservation", "rebuffer-accounting",
    }


def test_finish_is_idempotent():
    simulation = RrmpSimulation(single_region(4), seed=1)
    oracle = InvariantOracle().attach(simulation)
    simulation.sender.multicast()
    simulation.drain()
    first = oracle.finish()
    second = oracle.finish()
    assert first == second


def test_violation_storage_is_capped():
    simulation = RrmpSimulation(single_region(4), seed=1)
    oracle = InvariantOracle().attach(simulation)
    for index in range(MAX_STORED_VIOLATIONS + 50):
        oracle.report(Violation("x", float(index), "boom"))
    assert oracle.violation_count == MAX_STORED_VIOLATIONS + 50
    assert len(oracle.violations) == MAX_STORED_VIOLATIONS


@pytest.mark.parametrize("name", scenario_names())
def test_every_registered_scenario_passes_the_oracle(name):
    spec = get_scenario(name)
    spec = replace(spec, measurement=replace(spec.measurement, oracle=True))
    built = spec.build().run()
    assert built.oracle is not None
    assert built.oracle.finish() == ()
    assert built.oracle.ok
    assert built.summary()["invariant_violations"] == 0


def test_oracle_does_not_perturb_the_run():
    """The oracle is a pure observer: an oracle-carrying run must be
    event-for-event and record-for-record identical to a plain one."""
    spec = get_scenario("wan_burst_loss")
    plain = spec.build().run()
    with_oracle = replace(
        spec, measurement=replace(spec.measurement, oracle=True)
    ).build().run()
    assert (
        with_oracle.simulation.sim.events_fired == plain.simulation.sim.events_fired
    )
    assert trace_digest(with_oracle.simulation.trace.records) == trace_digest(
        plain.simulation.trace.records
    )
    assert with_oracle.summary()["events_fired"] == plain.summary()["events_fired"]


def test_summary_omits_violations_key_when_oracle_off():
    built = get_scenario("search").build().run()
    assert built.oracle is None
    assert "invariant_violations" not in built.summary()


def test_oracle_catches_an_injected_duplicate_delivery():
    """End-to-end fault injection on a real simulation: replaying a
    delivery record must trip the oracle."""
    simulation = RrmpSimulation(single_region(6), seed=2)
    oracle = InvariantOracle().attach(simulation)
    simulation.sender.multicast()
    simulation.drain()
    assert oracle.ok
    record = next(simulation.trace.of_kind("member_received"))
    simulation.trace.emit(simulation.sim.now, "member_received",
                          node=record["node"], seq=record["seq"], via="replay")
    assert not oracle.ok
    assert oracle.violations[0].invariant == "no-duplicate-delivery"
