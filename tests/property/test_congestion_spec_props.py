"""Property-based round-trip tests for CongestionSpec serialization.

Any valid congestion node (and the bottleneck loss fields that ride
with the CC ablations) must survive JSON and pickle unchanged, with a
digest that moves iff the value does.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.spec import CongestionSpec, LossSpec, ScenarioSpec

rates = st.floats(min_value=0.1, max_value=10_000.0,
                  allow_nan=False, allow_infinity=False)
losses = st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def congestion_specs(draw):
    min_rate = draw(rates)
    return CongestionSpec(
        controller=draw(st.sampled_from(["none", "tfmcc", "aimd"])),
        target_loss=draw(losses),
        min_rate=min_rate,
        max_rate=min_rate * draw(st.floats(min_value=1.0, max_value=100.0,
                                           allow_nan=False)),
        feedback_interval=draw(st.floats(min_value=1.0, max_value=1_000.0,
                                         allow_nan=False)),
        parity_min=draw(st.one_of(st.none(), st.integers(0, 4))),
        parity_max=draw(st.one_of(st.none(), st.integers(1, 8))),
    )


@st.composite
def bottleneck_loss_specs(draw):
    return LossSpec(
        kind="bottleneck",
        capacity=draw(st.floats(min_value=1.0, max_value=100_000.0,
                                allow_nan=False, allow_infinity=False)),
        window=draw(st.floats(min_value=1.0, max_value=5_000.0,
                              allow_nan=False, allow_infinity=False)),
        receiver_loss=draw(losses),
    )


@st.composite
def cc_scenario_specs(draw):
    return ScenarioSpec(
        name=draw(st.sampled_from(["prop-a", "prop-b"])),
        seed=draw(st.integers(0, 2**31 - 1)),
        congestion=draw(congestion_specs()),
        loss=draw(st.one_of(st.just(LossSpec()), bottleneck_loss_specs())),
    )


class TestCongestionSpecRoundTrip:
    @given(spec=cc_scenario_specs())
    @settings(max_examples=150, deadline=None)
    def test_json_round_trip_is_identity(self, spec):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.congestion == spec.congestion
        assert restored.loss == spec.loss

    @given(spec=cc_scenario_specs())
    @settings(max_examples=100, deadline=None)
    def test_digest_survives_the_round_trip(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()).digest() == spec.digest()

    @given(spec=cc_scenario_specs())
    @settings(max_examples=50, deadline=None)
    def test_pickle_round_trip_is_identity(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    @given(congestion=congestion_specs())
    @settings(max_examples=100, deadline=None)
    def test_default_congestion_node_is_omitted_others_kept(self, congestion):
        spec = ScenarioSpec(name="n", congestion=congestion)
        payload = spec.to_dict()
        if congestion == CongestionSpec():
            assert "congestion" not in payload
        else:
            assert payload["congestion"]["controller"] == congestion.controller

    @given(spec=cc_scenario_specs())
    @settings(max_examples=100, deadline=None)
    def test_enabled_tracks_controller(self, spec):
        assert spec.congestion.enabled == (spec.congestion.controller != "none")
