"""Property-based tests for gap-based loss detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.loss_detection import GapTracker

seq_lists = st.lists(st.integers(min_value=1, max_value=60),
                     min_size=1, max_size=80)


class TestGapTrackerProperties:
    @given(seqs=seq_lists)
    @settings(max_examples=100, deadline=None)
    def test_every_gap_reported_exactly_once(self, seqs):
        tracker = GapTracker()
        reported = []
        for seq in seqs:
            reported.extend(tracker.on_receive(seq))
        assert len(reported) == len(set(reported))
        # Everything reported is genuinely below the highest seen and
        # was missing at report time.
        highest = max(seqs)
        assert all(1 <= missing <= highest for missing in reported)

    @given(seqs=seq_lists)
    @settings(max_examples=100, deadline=None)
    def test_received_plus_missing_covers_prefix(self, seqs):
        tracker = GapTracker()
        for seq in seqs:
            tracker.on_receive(seq)
        covered = tracker.received | set(tracker.missing())
        assert covered >= set(range(1, tracker.highest + 1))

    @given(seqs=st.permutations(list(range(1, 21))))
    @settings(max_examples=50, deadline=None)
    def test_any_arrival_order_converges_clean(self, seqs):
        """Delivering a dense prefix in any order leaves no missing."""
        tracker = GapTracker()
        for seq in seqs:
            tracker.on_receive(seq)
        assert tracker.missing() == []
        assert tracker.contiguous_prefix() == 20

    @given(seqs=seq_lists, advertised=st.integers(min_value=1, max_value=80))
    @settings(max_examples=100, deadline=None)
    def test_advertise_never_unreports(self, seqs, advertised):
        tracker = GapTracker()
        for seq in seqs:
            tracker.on_receive(seq)
        before = set(tracker.missing())
        tracker.on_advertise(advertised)
        after = set(tracker.missing())
        assert before <= after

    @given(seqs=seq_lists)
    @settings(max_examples=100, deadline=None)
    def test_contiguous_prefix_invariant(self, seqs):
        tracker = GapTracker()
        for seq in seqs:
            tracker.on_receive(seq)
        prefix = tracker.contiguous_prefix()
        assert all(tracker.is_received(seq) for seq in range(1, prefix + 1))
        assert not tracker.is_received(prefix + 1)

    @given(seqs=seq_lists)
    @settings(max_examples=60, deadline=None)
    def test_duplicates_never_change_state(self, seqs):
        tracker_a = GapTracker()
        for seq in seqs:
            tracker_a.on_receive(seq)
        tracker_b = GapTracker()
        for seq in seqs:
            tracker_b.on_receive(seq)
            tracker_b.on_receive(seq)  # duplicate delivery
        assert tracker_a.received == tracker_b.received
        assert tracker_a.missing() == tracker_b.missing()
        assert tracker_a.contiguous_prefix() == tracker_b.contiguous_prefix()
