"""Property-based tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
    min_size=1, max_size=60,
)


class TestEventOrdering:
    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.after(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_final_time_is_max_delay(self, delays):
        sim = Simulator()
        for delay in delays:
            sim.after(delay, lambda: None)
        assert sim.run() == max(delays)

    @given(delays=delays, boundary=st.floats(min_value=0.0, max_value=1_000.0))
    @settings(max_examples=60, deadline=None)
    def test_run_until_splits_cleanly(self, delays, boundary):
        """Running to a boundary then to completion fires everything
        exactly once, in the same order as a single run."""
        single = Simulator()
        single_log = []
        for index, delay in enumerate(delays):
            single.after(delay, single_log.append, index)
        single.run()

        split = Simulator()
        split_log = []
        for index, delay in enumerate(delays):
            split.after(delay, split_log.append, index)
        split.run(until=boundary)
        split.run()
        assert split_log == single_log

    @given(
        delays=delays,
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_cancelled_subset_never_fires(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        events = [
            sim.after(delay, fired.append, index)
            for index, delay in enumerate(delays)
        ]
        cancelled = set()
        for index, (event, flag) in enumerate(zip(events, cancel_mask)):
            if flag:
                event.cancel()
                cancelled.add(index)
        sim.run()
        assert set(fired).isdisjoint(cancelled)
        assert set(fired) | cancelled >= set(range(min(len(delays), len(cancel_mask))))
