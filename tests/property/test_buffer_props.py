"""Property-based tests for the two-phase buffer policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import TwoPhaseBufferPolicy
from repro.protocol.messages import DataMessage
from repro.sim import Simulator, TraceLog
from tests.conftest import FakeBufferHost


def build_policy(c=0.0, t=40.0, region=100, seed=0):
    sim = Simulator()
    trace = TraceLog()
    host = FakeBufferHost(sim, trace, region_size=region, seed=seed)
    policy = TwoPhaseBufferPolicy(idle_threshold=t, long_term_c=c)
    policy.bind(host)
    return sim, policy


request_times = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    min_size=0, max_size=30,
)


class TestTwoPhaseProperties:
    @given(times=request_times)
    @settings(max_examples=80, deadline=None)
    def test_discard_happens_exactly_t_after_last_request(self, times):
        """Invariant of §3.1: with C = 0, the discard instant is
        max(receive, last-request-before-discard) + T."""
        sim, policy = build_policy(c=0.0, t=40.0)
        policy.on_receive(DataMessage(seq=1, sender=0))
        for time in times:
            sim.at(time, policy.on_request, 1)
        sim.run()
        assert not policy.has(1)
        [record] = policy.buffer.records
        # Reconstruct the expected discard point: requests refresh only
        # while the entry is still buffered.  Equal-time events fire in
        # schedule order, so a request landing exactly at the deadline
        # loses the tie against the *original* idle event (armed before
        # any request was scheduled) but wins it once any refresh has
        # re-armed the timer (the re-scheduled event is newer than every
        # pre-scheduled request).
        deadline = 40.0
        refreshed = False
        for time in sorted(times):
            if time < deadline or (time == deadline and refreshed):
                deadline = time + 40.0
                refreshed = True
        assert abs(record.discard_time - deadline) < 1e-6

    @given(times=request_times)
    @settings(max_examples=50, deadline=None)
    def test_buffering_duration_at_least_t(self, times):
        sim, policy = build_policy(c=0.0, t=40.0)
        policy.on_receive(DataMessage(seq=1, sender=0))
        for time in times:
            sim.at(time, policy.on_request, 1)
        sim.run()
        assert policy.buffer.records[0].duration >= 40.0

    @given(
        seqs=st.lists(st.integers(min_value=1, max_value=30),
                      min_size=1, max_size=30, unique=True),
        c=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_message_eventually_leaves_or_is_long_term(self, seqs, c):
        sim, policy = build_policy(c=c, t=40.0, region=20)
        for seq in seqs:
            policy.on_receive(DataMessage(seq=seq, sender=0))
        sim.run()
        for seq in seqs:
            entry = policy.buffer.get(seq)
            if entry is not None:
                assert entry.long_term  # survivors must be long-term
        discarded = {record.seq for record in policy.buffer.records}
        surviving = set(policy.buffer.seqs())
        assert discarded | surviving == set(seqs)
        assert discarded.isdisjoint(surviving)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_close_always_leaves_clean_state(self, seed):
        sim, policy = build_policy(c=5.0, t=40.0, region=10, seed=seed)
        for seq in range(1, 10):
            policy.on_receive(DataMessage(seq=seq, sender=0))
        sim.run(until=20.0)
        policy.close()
        sim.run()
        assert policy.occupancy == 0
        assert policy.short_term.tracked_count == 0
