"""Stateful property test: MessageBuffer's long-term index vs a model.

Drives random ``add`` / ``promote`` / ``demote`` / ``discard`` /
``discard_all`` sequences against :class:`repro.core.buffer.MessageBuffer`
while maintaining an independent model (a plain dict of seq →
long-term flag), and asserts after every step that the buffer's O(1)
index answers — ``long_term_count``, ``is_long_term``,
``long_term_seqs`` ordering — agree with the model and that
``check_index`` finds no internal inconsistency.

This is the regression net for the PR-3 index optimisation: the set
index must stay synchronized with the per-entry ``long_term`` flags
through every interleaving, including promote-after-discard and
demote-of-never-promoted no-ops.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.buffer import DISCARD_IDLE, MessageBuffer
from repro.protocol.messages import DataMessage

SEQS = st.integers(min_value=1, max_value=12)


class BufferIndexMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.buffer = MessageBuffer()
        #: Model: seq -> long_term flag, insertion-ordered like the buffer.
        self.model: dict = {}
        self.clock = 0.0

    def _now(self) -> float:
        self.clock += 1.0
        return self.clock

    @rule(seq=SEQS, long_term=st.booleans())
    def add(self, seq: int, long_term: bool) -> None:
        self.buffer.add(DataMessage(seq=seq, sender=0), self._now(),
                        long_term=long_term)
        # add() is a no-op for an already-buffered seq.
        if seq not in self.model:
            self.model[seq] = long_term

    @rule(seq=SEQS)
    def promote(self, seq: int) -> None:
        entry = self.buffer.promote(seq)
        if seq in self.model:
            assert entry is not None
            self.model[seq] = True
        else:
            assert entry is None

    @rule(seq=SEQS)
    def demote(self, seq: int) -> None:
        entry = self.buffer.demote(seq)
        if seq in self.model:
            assert entry is not None
            self.model[seq] = False
        else:
            assert entry is None

    @rule(seq=SEQS)
    def discard(self, seq: int) -> None:
        entry = self.buffer.discard(seq, self._now(), DISCARD_IDLE)
        if seq in self.model:
            assert entry is not None
            assert entry.long_term == self.model.pop(seq)
        else:
            assert entry is None

    @rule()
    def discard_all(self) -> None:
        removed = self.buffer.discard_all(self._now())
        assert sorted(e.seq for e in removed) == sorted(self.model)
        self.model.clear()

    @invariant()
    def index_matches_model(self) -> None:
        expected_long_term = [s for s, flag in self.model.items() if flag]
        assert self.buffer.long_term_count == len(expected_long_term)
        assert self.buffer.occupancy == len(self.model)
        for seq in self.model:
            assert self.buffer.is_long_term(seq) == self.model[seq]
        # long_term_seqs is ordered by buffer insertion, which the
        # model's dict insertion order mirrors exactly.
        assert list(self.buffer.long_term_seqs()) == expected_long_term
        assert list(self.buffer.seqs()) == list(self.model)

    @invariant()
    def internal_index_is_consistent(self) -> None:
        assert self.buffer.check_index() == []


TestBufferIndexMachine = BufferIndexMachine.TestCase
TestBufferIndexMachine.settings = settings(max_examples=60, stateful_step_count=40)
