"""Property-based tests for the closed-form analysis."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.formulas import (
    bufferer_pmf_binomial,
    bufferer_pmf_poisson,
    prob_no_bufferer,
    prob_no_bufferer_binomial,
    prob_no_request,
    prob_no_request_limit,
)

cs = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
ps = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
ns = st.integers(min_value=2, max_value=5_000)


class TestProbabilityBounds:
    @given(n=ns, p=ps)
    @settings(max_examples=200, deadline=None)
    def test_no_request_is_a_probability(self, n, p):
        value = prob_no_request(n, p)
        assert 0.0 <= value <= 1.0

    @given(p=ps)
    @settings(max_examples=100, deadline=None)
    def test_limit_is_a_probability(self, p):
        assert 0.0 < prob_no_request_limit(p) <= 1.0

    @given(n=st.integers(min_value=50, max_value=5_000), p=ps)
    @settings(max_examples=100, deadline=None)
    def test_exact_close_to_limit_for_large_n(self, n, p):
        assert abs(prob_no_request(n, p) - prob_no_request_limit(p)) < 0.05

    @given(n=ns, p1=ps, p2=ps)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_missing_fraction(self, n, p1, p2):
        low, high = sorted((p1, p2))
        assert prob_no_request(n, high) <= prob_no_request(n, low) + 1e-12


class TestPmfProperties:
    @given(c=cs, k=st.integers(min_value=0, max_value=60))
    @settings(max_examples=200, deadline=None)
    def test_poisson_pmf_in_unit_interval(self, c, k):
        assert 0.0 <= bufferer_pmf_poisson(c, k) <= 1.0

    @given(c=cs, n=st.integers(min_value=1, max_value=300))
    @settings(max_examples=100, deadline=None)
    def test_binomial_pmf_normalised(self, c, n):
        total = sum(bufferer_pmf_binomial(n, c, k) for k in range(n + 1))
        assert abs(total - 1.0) < 1e-9

    @given(c=st.floats(min_value=0.1, max_value=15.0),
           n=st.integers(min_value=200, max_value=2_000))
    @settings(max_examples=60, deadline=None)
    def test_no_bufferer_binomial_below_poisson(self, c, n):
        """(1 - C/n)^n <= e^{-C}: the finite-region probability of an
        unbuffered message never exceeds the Poisson estimate."""
        assert prob_no_bufferer_binomial(n, c) <= prob_no_bufferer(c) + 1e-12

    @given(c=cs)
    @settings(max_examples=100, deadline=None)
    def test_no_bufferer_equals_pmf_at_zero(self, c):
        assert prob_no_bufferer(c) == bufferer_pmf_poisson(c, 0)
