"""Property-based tests for search termination and correctness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.scenarios import run_search


class TestSearchProperties:
    @given(
        n=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_search_with_one_bufferer_always_serves(self, n, seed):
        """As long as at least one member buffers the message, the
        downstream requester is served (§3.3's liveness claim)."""
        result = run_search(n, 1, seed=seed, horizon=10_000.0)
        assert result.search_time is not None
        assert result.simulation.members[result.requester].has_received(1)

    @given(
        n=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_search_time_nonnegative_and_on_grid(self, n, seed):
        result = run_search(n, 1, seed=seed, horizon=10_000.0)
        assert result.search_time >= 0.0
        # Every hop is 5 ms one-way, timers are 10 ms: the grid is 5 ms.
        assert result.search_time % 5.0 < 1e-9

    @given(
        n=st.integers(min_value=6, max_value=40),
        b=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_searches_terminate(self, n, b, seed):
        """Liveness + quiescence.  The requester's remote-retry timer is
        one RTT (§2.2), which cannot cover request + search + return, so
        a second request wave is protocol-legal; what must hold is that
        every wave terminates (no active searches at the horizon) and
        search traffic stays bounded rather than re-seeding forever."""
        result = run_search(n, min(b, n), seed=seed, horizon=10_000.0)
        assert result.served_at is not None
        simulation = result.simulation
        for node in simulation.hierarchy.regions[0].members:
            assert simulation.members[node].search.active_seqs() == []
        # Bounded traffic: a runaway re-seeding loop would produce
        # thousands of forwards over a 10 s horizon.
        assert result.search_forwards < 60 * n

    @given(seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_given_seed(self, seed):
        a = run_search(20, 2, seed=seed)
        b = run_search(20, 2, seed=seed)
        assert a.search_time == b.search_time
        assert a.bufferers == b.bufferers
