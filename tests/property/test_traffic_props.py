"""Property-based tests for the TrafficGenerator pull cursor.

The ``next_send(now, credit)`` surface drives both the event-driven
scheduler and the congestion controller's pacing loop, so the cursor
and credit semantics have to hold for every stream shape — most
delicately at the end of the stream, where an exhausted cursor must
stay exhausted (no phantom sends) until an explicit ``restart()``.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.traffic import (
    BurstStream,
    PoissonStream,
    RampStream,
    UniformStream,
)

counts = st.integers(min_value=0, max_value=30)
intervals = st.floats(min_value=0.5, max_value=100.0,
                      allow_nan=False, allow_infinity=False)
starts = st.floats(min_value=0.0, max_value=500.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def streams(draw):
    kind = draw(st.sampled_from(("uniform", "ramp", "burst", "poisson")))
    if kind == "uniform":
        return UniformStream(count=draw(counts), interval=draw(intervals),
                             start=draw(starts))
    if kind == "ramp":
        return RampStream(draw(counts), draw(intervals), draw(intervals),
                          start=draw(starts))
    if kind == "burst":
        bursts = draw(st.lists(
            st.tuples(starts, st.integers(min_value=1, max_value=5)),
            min_size=0, max_size=6,
        ))
        return BurstStream(bursts)
    return PoissonStream(
        rate=draw(st.floats(min_value=0.001, max_value=0.2)),
        duration=draw(st.floats(min_value=10.0, max_value=500.0)),
        rng=random.Random(draw(st.integers(min_value=0, max_value=2**16))),
    )


any_stream = streams()


class TestCursorExhaustion:
    @given(stream=any_stream)
    @settings(max_examples=150, deadline=None)
    def test_cursor_drains_exactly_arrival_count_then_stays_none(self, stream):
        expected = stream.arrival_count()
        pulled = []
        now = 0.0
        while (t := stream.next_send(now)) is not None:
            pulled.append(t)
            now = t
        assert len(pulled) == expected
        assert stream.remaining() == 0
        # Exhaustion is sticky: no now/credit combination revives it.
        assert stream.next_send(now) is None
        assert stream.next_send(now + 1e6, credit=now + 2e6) is None
        assert stream.peek_arrival() is None

    @given(stream=any_stream)
    @settings(max_examples=150, deadline=None)
    def test_restart_after_exhaustion_replays_the_same_sequence(self, stream):
        first, now = [], 0.0
        while (t := stream.next_send(now)) is not None:
            first.append(t)
            now = t
        stream.restart()
        assert stream.remaining() == stream.arrival_count()
        second, now = [], 0.0
        while (t := stream.next_send(now)) is not None:
            second.append(t)
            now = t
        assert second == first

    @given(stream=any_stream)
    @settings(max_examples=150, deadline=None)
    def test_peek_always_agrees_with_the_next_pull(self, stream):
        now = 0.0
        while True:
            peeked = stream.peek_arrival()
            pulled = stream.next_send(now)
            if pulled is None:
                assert peeked is None
                break
            # Credit-free pulls fire at max(arrival, now): peek reports
            # the raw arrival, the pull can only be later.
            assert peeked is not None
            assert pulled >= peeked
            now = pulled

    @given(stream=any_stream,
           credit=st.floats(min_value=0.0, max_value=1e4,
                            allow_nan=False, allow_infinity=False))
    @settings(max_examples=150, deadline=None)
    def test_credit_only_defers_never_reorders(self, stream, credit):
        """Pulling under credit yields a non-decreasing send schedule
        whose length still equals the arrival count."""
        sends, now = [], 0.0
        while (t := stream.next_send(now, credit=credit)) is not None:
            assert t >= credit or t >= now
            sends.append(t)
            now = t
        assert len(sends) == stream.arrival_count()
        assert sends == sorted(sends)
