"""FlatMemberPool unit tests: layout contract and aggregate queries."""

import numpy as np
import pytest

from repro.net.topology import Hierarchy, star
from repro.scale.pool import FlatMemberPool


def _pool(regions=3, members=4, messages=5) -> FlatMemberPool:
    hierarchy = star(root_size=members, leaf_sizes=[members] * (regions - 1))
    return FlatMemberPool(hierarchy, messages)


class TestLayoutContract:
    def test_regions_map_to_contiguous_row_ranges(self):
        pool = _pool(regions=3, members=4)
        ranges = sorted(pool.region_rows.values())
        assert ranges == [(0, 4), (4, 8), (8, 12)]
        assert pool.size == 12

    def test_non_contiguous_node_ids_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_region(0)
        hierarchy.add_member(0, 0)
        hierarchy.add_member(0, 7)  # hole: FlatMemberPool cannot slice this
        with pytest.raises(ValueError, match="contiguous"):
            FlatMemberPool(hierarchy, 3)

    def test_message_count_must_be_positive(self):
        hierarchy = star(root_size=2, leaf_sizes=[])
        with pytest.raises(ValueError, match="message_count"):
            FlatMemberPool(hierarchy, 0)

    def test_region_of_row_inverts_rows(self):
        pool = _pool(regions=3, members=4)
        for region_id, (start, stop) in pool.region_rows.items():
            assert pool.region_of_row(start) == region_id
            assert pool.region_of_row(stop - 1) == region_id
        with pytest.raises(KeyError):
            pool.region_of_row(pool.size)


class TestAggregates:
    def test_fresh_pool_is_empty(self):
        pool = _pool()
        assert pool.delivered_fraction() == 0.0
        assert pool.occupancy() == 0
        assert pool.given_up_pairs() == 0
        assert np.all(np.isinf(pool.idle_deadline))

    def test_delivered_pairs_slices_by_region(self):
        pool = _pool(regions=3, members=4, messages=2)
        pool.received[0:4, :] = True  # first region fully delivered
        assert pool.delivered_pairs(rows=(0, 4)) == 8
        assert pool.delivered_pairs(rows=(4, 8)) == 0
        assert pool.delivered_pairs() == 8
        assert pool.delivered_fraction() == pytest.approx(8 / 24)

    def test_highest_delivered_is_the_gapfree_prefix(self):
        pool = _pool(regions=1, members=3, messages=4)
        pool.received[0] = [True, True, False, True]  # gap at seq 3
        pool.received[1] = [True, True, True, True]
        pool.received[2] = [False, True, True, True]  # gap at seq 1
        assert pool.highest_delivered().tolist() == [2, 4, 0]

    def test_member_views_match_bitmaps(self):
        pool = _pool(regions=1, members=2, messages=4)
        pool.buffered[0, [0, 2]] = True
        pool.received[0, [0, 1, 2]] = True
        assert pool.member_buffered_seqs(0) == [1, 3]
        assert pool.member_unresolved_gaps(0) == [4]
        assert pool.member_is_buffering(0, 3)
        assert not pool.member_is_buffering(0, 2)

    def test_long_term_copies_counts_one_column(self):
        pool = _pool(regions=2, members=3, messages=2)
        pool.long_term[[0, 4], 1] = True
        assert pool.long_term_copies(2) == 2
        assert pool.long_term_copies(1) == 0

    def test_nbytes_scales_with_population(self):
        small, big = _pool(regions=1, members=10), _pool(regions=1, members=20)
        assert big.nbytes() == 2 * small.nbytes()
