"""CLI surface of the scale subsystem: list/describe/run + --profile."""

import json

import pytest

from repro.experiments.cli import main


class TestScenariosList:
    def test_list_includes_scale_tier(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "scale tier (flat engine):" in out
        assert "scale_10k" in out
        assert "scale_100k" in out
        # The classic tier is still fully listed.
        assert "initial_holders" in out and "wan_burst_loss" in out

    def test_describe_resolves_scale_tier_names(self, capsys):
        assert main(["scenarios", "describe", "scale_10k"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("digest:")])
        assert payload["name"] == "scale_10k"
        assert payload["topology"]["kind"] == "star"

    def test_unknown_name_mentions_both_tiers(self, capsys):
        assert main(["scenarios", "run", "scale_1M"]) == 2
        err = capsys.readouterr().err
        assert "scale tier" in err and "scale_100k" in err


class TestScenariosRunSharded:
    def test_scale_tier_runs_on_flat_engine(self, capsys):
        assert main(["scenarios", "run", "scale_10k", "--shards", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "flat"
        assert payload["shards"] == 2
        assert payload["delivered_fraction"] == 1.0
        assert payload["trace_digest"]

    def test_classic_sharded_run_reports_mirror_engine(self, capsys):
        assert main(["scenarios", "run", "initial_holders", "--shards", "2",
                     "--jobs", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "mirror-sharded"
        assert payload["shards"] == 2

    def test_classic_serial_run_is_unchanged(self, capsys):
        assert main(["scenarios", "run", "initial_holders", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "engine" not in payload  # the plain object-engine summary
        assert payload["delivered_fraction"] == 1.0

    def test_invalid_shard_count_is_a_usage_error(self, capsys):
        assert main(["scenarios", "run", "initial_holders",
                     "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err


class TestProfileFlag:
    def test_scenarios_run_profile_writes_pstats(self, tmp_path, capsys):
        out_path = tmp_path / "scen.pstats"
        assert main(["scenarios", "run", "initial_holders", "--json",
                     "--profile", "--profile-out", str(out_path)]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stayed machine-readable
        assert out_path.exists() and out_path.stat().st_size > 0
        assert "profile" in captured.err
        assert "cumulative" in captured.err

    def test_experiments_run_profile_writes_pstats(self, tmp_path, capsys):
        import pstats

        out_path = tmp_path / "exp.pstats"
        assert main(["run", "fig6", "--quick", "--no-cache",
                     "--profile", "--profile-out", str(out_path)]) == 0
        assert out_path.exists()
        stats = pstats.Stats(str(out_path))
        assert stats.total_calls > 0

    def test_profile_off_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["scenarios", "run", "initial_holders", "--json"]) == 0
        assert not (tmp_path / "profile.pstats").exists()


@pytest.mark.parametrize("name", ["scale_10k", "scale_100k"])
def test_scale_tier_describe_digests_are_stable(name, capsys):
    assert main(["scenarios", "describe", name]) == 0
    first = capsys.readouterr().out
    assert main(["scenarios", "describe", name]) == 0
    assert capsys.readouterr().out == first
