"""Flat engine behaviour: reliability, determinism, oracle cleanliness."""

import dataclasses

import pytest

from repro.scale.engine import CommutativeTraceDigest, run_flat
from repro.scale.scenarios import (
    get_scale_scenario,
    scale_scenario_names,
    scale_scenarios,
)
from repro.scenario.library import scale_spec


def small_spec(seed=1):
    """4 regions x 6 members, lossy enough that recovery always fires."""
    return scale_spec(
        regions=4, members_per_region=6, messages=4, loss_rate=0.3, seed=seed,
    )


def remote_heavy_spec(seed=2):
    """Tiny regions + heavy loss: whole regions miss, forcing parent
    (remote) recovery instead of local repair."""
    return scale_spec(
        regions=6, members_per_region=3, messages=3, loss_rate=0.6, seed=seed,
    )


class TestReliability:
    def test_every_member_eventually_delivers_everything(self):
        result = run_flat(small_spec())
        assert result.delivered_fraction == 1.0
        assert result.reliability_violations == 0
        assert result.recoveries > 0

    def test_remote_recovery_path_is_exercised(self):
        result = run_flat(remote_heavy_spec(), keep_records=True)
        assert result.delivered_fraction == 1.0
        kinds = {
            record.kind
            for engine in result.engines
            for record in engine.trace.records
        }
        assert "remote_request_served" in kinds

    def test_lossless_run_never_recovers(self):
        spec = scale_spec(regions=3, members_per_region=5, messages=3,
                          loss_rate=0.0)
        result = run_flat(spec)
        assert result.delivered_fraction == 1.0
        assert result.recoveries == 0


class TestDeterminism:
    def test_same_seed_same_digest(self):
        first = run_flat(small_spec(seed=7))
        second = run_flat(small_spec(seed=7))
        assert first.trace_digest == second.trace_digest
        assert first.events_fired == second.events_fired

    def test_different_seed_different_digest(self):
        assert (run_flat(small_spec(seed=1)).trace_digest
                != run_flat(small_spec(seed=2)).trace_digest)


class TestOracle:
    def test_serial_flat_run_is_invariant_clean(self):
        result = run_flat(small_spec(), oracle=True)
        assert result.invariant_violations == 0
        assert result.oracle_records_checked > 0

    def test_sharded_flat_run_is_invariant_clean(self):
        result = run_flat(remote_heavy_spec(), shards=2, oracle=True)
        assert result.invariant_violations == 0
        assert result.oracle_records_checked > 0


class TestSpecGate:
    def test_churn_spec_rejected(self):
        spec = get_scale_scenario("scale_10k")
        churned = spec.with_(
            churn=dataclasses.replace(spec.churn, kind="random", leave_rate=0.01)
        )
        with pytest.raises(ValueError, match="churn"):
            run_flat(churned)

    def test_unbounded_recovery_rejected(self):
        spec = small_spec()
        unbounded = spec.with_(
            policy=dataclasses.replace(spec.policy, max_recovery_time=None),
            measurement=dataclasses.replace(spec.measurement, duration=100.0),
        )
        with pytest.raises(ValueError, match="max_recovery_time"):
            run_flat(unbounded)


class TestScaleTier:
    def test_tier_names_resolve_to_supported_specs(self):
        assert scale_scenario_names() == ["scale_10k", "scale_100k"]
        for name, spec in scale_scenarios().items():
            assert spec.name == name
            assert spec.topology.member_count() >= 10_000

    def test_unknown_tier_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="scale_100k"):
            get_scale_scenario("scale_1M")


class TestCommutativeDigest:
    def _lines(self):
        return [
            b'{"kind": "a", "t": 1.0}',
            b'{"kind": "b", "t": 2.0}',
            b'{"kind": "c", "t": 3.0}',
        ]

    def _digest_of(self, lines):
        import hashlib
        digest = CommutativeTraceDigest()
        for line in lines:
            line_hash = int.from_bytes(hashlib.sha256(line).digest(), "big")
            digest.merge(line_hash, 1)
        return digest

    def test_order_independent(self):
        lines = self._lines()
        assert (self._digest_of(lines).hexdigest()
                == self._digest_of(list(reversed(lines))).hexdigest())

    def test_merge_equals_single_stream(self):
        lines = self._lines()
        combined = self._digest_of(lines)
        left = self._digest_of(lines[:1])
        right = self._digest_of(lines[1:])
        left.merge(*right.state)
        assert left.hexdigest() == combined.hexdigest()

    def test_count_disambiguates_truncation(self):
        lines = self._lines()
        full = self._digest_of(lines)
        partial = self._digest_of(lines[:2])
        assert full.hexdigest() != partial.hexdigest()
        assert full.hexdigest().endswith("-3")
