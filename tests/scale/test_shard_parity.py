"""Shard determinism: partitioned runs must match serial ones exactly.

Two parity families, matching the two sharding strategies:

* **flat** — region-partitioned engines with epoch barriers; the
  commutative digest of a sharded run must equal the serial flat run's,
  for any shard count and for process-mode execution.
* **mirror** — classic registry scenarios replayed per shard; the
  merged emission-order digest must equal the *golden* serial baselines
  in ``tests/baselines/scenario_trace_digests.json``.
"""

import json
from pathlib import Path

import pytest

from repro.scale.engine import run_flat
from repro.scale.scenarios import get_scale_scenario
from repro.scale.sharding import run_mirror_sharded
from repro.scenario.library import scale_spec
from repro.scenario.registry import get_scenario

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "baselines"
    / "scenario_trace_digests.json"
)


def golden(name: str) -> dict:
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)[name]


def parity_spec(seed=3):
    """Multi-region and lossy enough that shards must exchange repairs."""
    return scale_spec(
        regions=5, members_per_region=4, messages=4, loss_rate=0.4, seed=seed,
    )


class TestFlatShardParity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_digest_equals_serial(self, shards):
        serial = run_flat(parity_spec())
        sharded = run_flat(parity_spec(), shards=shards)
        assert sharded.trace_digest == serial.trace_digest
        assert sharded.events_fired == serial.events_fired
        assert sharded.shards == shards

    def test_process_mode_matches_in_process(self):
        in_process = run_flat(parity_spec(), shards=3)
        processes = run_flat(parity_spec(), shards=3, processes=True)
        assert processes.trace_digest == in_process.trace_digest
        assert processes.summary() == in_process.summary()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_scale_tier_scenario_parity(self, shards):
        spec = get_scale_scenario("scale_10k")
        serial = run_flat(spec)
        sharded = run_flat(spec, shards=shards)
        assert sharded.trace_digest == serial.trace_digest
        assert serial.delivered_fraction == 1.0
        assert serial.reliability_violations == 0

    def test_more_shards_than_regions_collapses_gracefully(self):
        spec = scale_spec(regions=2, members_per_region=3, messages=2)
        serial = run_flat(spec)
        over = run_flat(spec, shards=8)
        assert over.shards == 2  # one engine per region, empties dropped
        assert over.trace_digest == serial.trace_digest


class TestMirrorShardParity:
    @pytest.mark.parametrize("name", ["initial_holders", "wan_burst_loss"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_merged_digest_equals_golden_serial(self, name, shards):
        result = run_mirror_sharded(get_scenario(name), shards, jobs=1)
        expected = golden(name)
        assert result.trace_digest == expected["digest"]
        assert result.trace_records == expected["records"]
        assert sum(result.shard_records) == expected["records"]

    def test_parallel_jobs_match_golden_too(self):
        result = run_mirror_sharded(get_scenario("wan_burst_loss"), 2, jobs=2)
        expected = golden("wan_burst_loss")
        assert result.trace_digest == expected["digest"]
        assert result.jobs == 2

    def test_multi_region_scenario_actually_splits_records(self):
        result = run_mirror_sharded(get_scenario("wan_burst_loss"), 2, jobs=1)
        assert all(count > 0 for count in result.shard_records)

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            run_mirror_sharded(get_scenario("initial_holders"), 0)
