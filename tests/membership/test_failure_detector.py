"""Tests for the gossip-style failure detector (ref [13])."""

import pytest

from repro.membership.failure_detector import attach_failure_detectors
from repro.net.latency import ConstantLatency
from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation


def build(n=8, seed=0, gossip_interval=20.0, suspect_timeout=120.0):
    simulation = RrmpSimulation(
        single_region(n),
        config=RrmpConfig(session_interval=None),
        seed=seed,
        latency=ConstantLatency(5.0),
    )
    detectors = attach_failure_detectors(
        list(simulation.members.values()),
        gossip_interval=gossip_interval,
        suspect_timeout=suspect_timeout,
    )
    return simulation, detectors


class TestHealthyGroup:
    def test_no_suspicions_in_steady_state(self):
        simulation, detectors = build()
        simulation.run(duration=2_000.0)
        for detector in detectors:
            assert detector.suspected == set()

    def test_heartbeats_propagate(self):
        simulation, detectors = build()
        simulation.run(duration=2_000.0)
        for detector in detectors:
            # Everyone eventually learns about everyone.
            assert len(detector.heartbeats) == 8

    def test_alive_view_contains_group(self):
        simulation, detectors = build()
        simulation.run(duration=2_000.0)
        assert set(detectors[0].alive_view()) == set(range(8))


class TestCrashDetection:
    def test_crashed_member_is_suspected_by_survivors(self):
        simulation, detectors = build(seed=3)
        simulation.run(duration=500.0)
        victim = simulation.members[3]
        victim.crash()
        simulation.run(duration=2_000.0)
        for detector in detectors:
            if detector.member.node_id != 3 and detector.member.alive:
                assert detector.is_suspected(3)

    def test_suspicion_latency_bounded_by_timeout(self):
        simulation, detectors = build(seed=4, suspect_timeout=100.0)
        simulation.run(duration=500.0)
        simulation.members[2].crash()
        crash_time = simulation.sim.now
        simulation.run(duration=2_000.0)
        suspicions = [record.time for record
                      in simulation.trace.of_kind("fd_suspected")
                      if record["peer"] == 2]
        assert suspicions
        # Detected within timeout + a few gossip rounds of slack.
        assert min(suspicions) - crash_time < 100.0 + 200.0

    def test_on_suspect_callback_runs_once_per_peer(self):
        simulation = RrmpSimulation(
            single_region(6),
            config=RrmpConfig(session_interval=None),
            seed=5,
            latency=ConstantLatency(5.0),
        )
        from repro.membership.failure_detector import GossipFailureDetector
        hits = []
        _detectors = [
            GossipFailureDetector(
                member, peers_provider=member.region_member_ids,
                gossip_interval=20.0, suspect_timeout=100.0,
                on_suspect=lambda node, me=member.node_id: hits.append((me, node)),
            )
            for member in simulation.members.values()
        ]
        simulation.run(duration=300.0)
        simulation.members[1].crash()
        simulation.run(duration=3_000.0)
        per_detector = [hit for hit in hits if hit[1] == 1]
        assert len(per_detector) == len(set(per_detector))

    def test_suspicion_converges_despite_gossip_flaps(self):
        """Gossip propagation can briefly rehabilitate a suspect (a
        fresher counter was still in flight); the end state must still
        be unanimous suspicion once those counters drain."""
        simulation, detectors = build(seed=6)
        simulation.run(duration=500.0)
        simulation.members[4].crash()
        simulation.run(duration=5_000.0)
        for detector in detectors:
            if detector.member.alive:
                assert detector.is_suspected(4)


class TestConfiguration:
    def test_timeout_must_exceed_interval(self):
        simulation = RrmpSimulation(
            single_region(3), config=RrmpConfig(session_interval=None), seed=1,
        )
        from repro.membership.failure_detector import GossipFailureDetector
        member = simulation.members[0]
        with pytest.raises(ValueError):
            GossipFailureDetector(member, peers_provider=member.region_member_ids,
                                  gossip_interval=50.0, suspect_timeout=40.0)

    def test_detector_stops_with_member(self):
        simulation, detectors = build(seed=7)
        simulation.run(duration=200.0)
        before = simulation.network.stats.sent_by_type.get("HeartbeatGossip", 0)
        for detector in detectors:
            detector.stop()
        simulation.run(duration=1_000.0)
        after = simulation.network.stats.sent_by_type.get("HeartbeatGossip", 0)
        assert before == after
