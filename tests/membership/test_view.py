"""Tests for stale membership views (§1 footnote 1)."""

import pytest

from repro.membership.view import StaleView


class TestStaleView:
    def test_snapshot_taken_at_construction(self, sim):
        source = [1, 2, 3]
        view = StaleView(sim, lambda: list(source), refresh_interval=100.0)
        source.append(4)
        assert view.members() == [1, 2, 3]

    def test_refresh_after_interval(self, sim):
        source = [1, 2, 3]
        view = StaleView(sim, lambda: list(source), refresh_interval=100.0)
        source.append(4)
        sim.run(until=150.0)
        assert view.members() == [1, 2, 3, 4]

    def test_forced_refresh(self, sim):
        source = [1]
        view = StaleView(sim, lambda: list(source), refresh_interval=1_000.0)
        source.append(2)
        view.refresh()
        assert view.members() == [1, 2]

    def test_staleness_tracks_time(self, sim):
        view = StaleView(sim, lambda: [1], refresh_interval=1_000.0)
        sim.run(until=42.0)
        assert view.staleness == pytest.approx(42.0)

    def test_zero_interval_always_fresh(self, sim):
        source = [1]
        view = StaleView(sim, lambda: list(source), refresh_interval=0.0)
        source.append(2)
        assert view.members() == [1, 2]

    def test_contains_and_len(self, sim):
        view = StaleView(sim, lambda: [1, 2], refresh_interval=100.0)
        assert 1 in view
        assert 3 not in view
        assert len(view) == 2

    def test_negative_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            StaleView(sim, lambda: [], refresh_interval=-1.0)
