"""Tests for churn schedules and membership dynamics."""

import random

import pytest

from repro.membership.churn import (
    EVENT_CRASH,
    EVENT_JOIN,
    EVENT_LEAVE,
    ChurnEvent,
    ChurnSchedule,
    random_churn,
)
from repro.net.ipmulticast import BernoulliOutcome
from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation


def build(n=12, seed=0):
    return RrmpSimulation(
        single_region(n),
        config=RrmpConfig(session_interval=25.0),
        seed=seed,
        outcome=BernoulliOutcome(0.1),
    )


class TestChurnEvent:
    def test_leave_requires_node(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, action=EVENT_LEAVE)

    def test_join_requires_region(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, action=EVENT_JOIN)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, action="explode", node=1)


class TestScriptedChurn:
    def test_leave_event_fires_at_time(self):
        simulation = build()
        schedule = ChurnSchedule(simulation, [
            ChurnEvent(time=100.0, action=EVENT_LEAVE, node=5),
        ])
        simulation.run(duration=200.0)
        assert not simulation.members[5].alive
        assert len(schedule.applied) == 1
        assert simulation.trace.count("member_left") == 1

    def test_crash_event(self):
        simulation = build()
        ChurnSchedule(simulation, [
            ChurnEvent(time=50.0, action=EVENT_CRASH, node=3),
        ])
        simulation.run(duration=100.0)
        assert simulation.trace.count("member_crashed") == 1

    def test_join_event_adds_member(self):
        simulation = build(n=5)
        ChurnSchedule(simulation, [
            ChurnEvent(time=50.0, action=EVENT_JOIN, region=0),
        ])
        simulation.run(duration=100.0)
        assert simulation.hierarchy.size == 6
        assert simulation.trace.count("member_joined") == 1

    def test_double_leave_is_tolerated(self):
        simulation = build()
        ChurnSchedule(simulation, [
            ChurnEvent(time=50.0, action=EVENT_LEAVE, node=5),
            ChurnEvent(time=60.0, action=EVENT_LEAVE, node=5),
        ])
        simulation.run(duration=100.0)
        assert simulation.trace.count("member_left") == 1

    def test_events_applied_in_time_order(self):
        simulation = build()
        schedule = ChurnSchedule(simulation, [
            ChurnEvent(time=80.0, action=EVENT_LEAVE, node=2),
            ChurnEvent(time=40.0, action=EVENT_LEAVE, node=3),
        ])
        simulation.run(duration=200.0)
        assert [event.node for event in schedule.applied] == [3, 2]


class TestDuplicateGuard:
    """Regression: scheduling the same event twice used to silently
    double the churn (two timers firing the same leave)."""

    def test_same_event_twice_in_one_list_rejected(self):
        simulation = build()
        event = ChurnEvent(time=50.0, action=EVENT_LEAVE, node=5)
        with pytest.raises(ValueError, match="duplicate churn event"):
            ChurnSchedule(simulation, [event, event])

    def test_second_schedule_with_same_event_rejected(self):
        simulation = build()
        ChurnSchedule(simulation, [
            ChurnEvent(time=50.0, action=EVENT_LEAVE, node=5),
        ])
        with pytest.raises(ValueError, match="duplicate churn event"):
            ChurnSchedule(simulation, [
                ChurnEvent(time=50.0, action=EVENT_LEAVE, node=5),
            ])

    def test_distinct_events_coexist(self):
        simulation = build()
        ChurnSchedule(simulation, [
            ChurnEvent(time=50.0, action=EVENT_LEAVE, node=5),
        ])
        ChurnSchedule(simulation, [
            ChurnEvent(time=60.0, action=EVENT_LEAVE, node=6),
        ])
        simulation.run(duration=100.0)
        assert simulation.trace.count("member_left") == 2


class TestRandomChurn:
    def test_protected_nodes_survive(self):
        simulation = build(n=10, seed=2)
        sender = simulation.sender.node_id
        random_churn(simulation, random.Random(1), duration=2_000.0,
                     leave_rate=0.005, protect=[sender])
        simulation.sender.multicast()
        simulation.run(duration=2_500.0)
        assert simulation.members[sender].alive

    def test_delivery_survives_moderate_churn(self):
        simulation = build(n=15, seed=3)
        sender = simulation.sender.node_id
        random_churn(simulation, random.Random(2), duration=1_000.0,
                     leave_rate=0.002, join_rate=0.002, protect=[sender])
        for _ in range(5):
            simulation.sender.multicast()
        simulation.run(duration=5_000.0)
        # Members present from the start that never left must have
        # everything; joiners recover what sessions advertise to them.
        for seq in range(1, 6):
            assert simulation.all_received(seq)

    def test_generated_events_are_recorded_on_the_schedule(self):
        """Regression: random_churn used to self-schedule closures and
        return a schedule with an empty ``events`` list — inspection
        and replay tooling saw no churn at all."""
        simulation = build(n=10, seed=5)
        schedule = random_churn(simulation, random.Random(4),
                                duration=1_000.0,
                                leave_rate=0.003, join_rate=0.002)
        assert schedule.events
        assert schedule.events == sorted(
            schedule.events, key=lambda event: event.time
        )
        for event in schedule.events:
            if event.action == EVENT_JOIN:
                assert event.region is not None
            else:
                assert event.lazy and event.node is None

    def test_applied_events_carry_resolved_victims(self):
        simulation = build(n=10, seed=5)
        sender = simulation.sender.node_id
        schedule = random_churn(simulation, random.Random(4),
                                duration=1_000.0,
                                leave_rate=0.004, protect=[sender])
        simulation.run(duration=1_500.0)
        assert schedule.applied
        for event in schedule.applied:
            assert event.node is not None
            assert event.node != sender

    def test_group_never_empties(self):
        simulation = build(n=8, seed=4)
        sender = simulation.sender.node_id
        random_churn(simulation, random.Random(3), duration=3_000.0,
                     leave_rate=0.01, crash_rate=0.01, protect=[sender])
        simulation.run(duration=4_000.0)
        assert len(simulation.alive_members()) >= 1
        assert simulation.members[sender].alive
