"""Unit tests for passive link-state estimation (repro.adapt.linkstate)."""

import pytest

from repro.adapt.linkstate import LinkStateEstimator, PairState, pair_key
from repro.net.topology import chain, star


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key(2, 1) == (1, 2)
        assert pair_key(1, 2) == (1, 2)

    def test_self_pair(self):
        assert pair_key(3, 3) == (3, 3)


class TestPairState:
    def test_first_loss_sample_replaces_the_default(self):
        state = PairState()
        state.observe_loss(1.0, alpha=0.2)
        assert state.loss == 1.0
        assert state.samples == 1

    def test_subsequent_loss_samples_are_ewma(self):
        state = PairState()
        state.observe_loss(1.0, alpha=0.2)
        state.observe_loss(0.0, alpha=0.2)
        assert state.loss == pytest.approx(0.8)

    def test_first_rtt_sample_replaces_none(self):
        state = PairState()
        state.observe_rtt(50.0, alpha=0.2)
        assert state.rtt_ms == 50.0

    def test_subsequent_rtt_samples_are_ewma(self):
        state = PairState()
        state.observe_rtt(100.0, alpha=0.5)
        state.observe_rtt(50.0, alpha=0.5)
        assert state.rtt_ms == pytest.approx(75.0)

    def test_etx_of_clean_link_is_one(self):
        assert PairState().etx() == 1.0

    def test_etx_grows_with_loss(self):
        state = PairState(loss=0.5, samples=1)
        assert state.etx() == pytest.approx(4.0)  # 1 / (1 - 0.5)^2

    def test_etx_is_capped_for_dead_links(self):
        state = PairState(loss=1.0, samples=1)
        assert state.etx() == 100.0


class TestQueries:
    def test_unsampled_pair_has_optimistic_etx_and_prior_rtt(self):
        estimator = LinkStateEstimator(chain([2, 2]), default_rtt_ms=80.0)
        assert estimator.etx(0, 1) == 1.0
        assert estimator.rtt_ms(0, 1) == 80.0
        assert estimator.edge_cost(0, 1) == 80.0

    def test_edge_cost_is_etx_times_rtt(self):
        estimator = LinkStateEstimator(chain([2, 2]))
        state = estimator.state(0, 1)
        state.observe_loss(0.5, estimator.ewma_alpha)
        state.observe_rtt(100.0, estimator.ewma_alpha)
        assert estimator.edge_cost(0, 1) == pytest.approx(400.0)

    def test_queries_are_undirected(self):
        estimator = LinkStateEstimator(chain([2, 2]))
        estimator.state(1, 0).observe_rtt(33.0, 0.2)
        assert estimator.rtt_ms(0, 1) == 33.0


class TestTraceSubscribers:
    """Feed hand-crafted trace records through a real TraceLog."""

    def _estimator(self, trace, hierarchy=None):
        hierarchy = hierarchy if hierarchy is not None else chain([2, 2, 2])
        return LinkStateEstimator(hierarchy, default_rtt_ms=80.0).attach(trace)

    def test_served_remote_request_is_a_success_sample(self, trace):
        estimator = self._estimator(trace)
        # node 0 lives in region 0, node 2 in region 1.
        trace.emit(10.0, "remote_request_received", node=0, seq=1, requester=2)
        state = estimator.pairs[pair_key(0, 1)]
        assert state.samples == 1
        assert state.loss == 0.0

    def test_same_region_request_is_ignored(self, trace):
        estimator = self._estimator(trace)
        trace.emit(10.0, "remote_request_received", node=0, seq=1, requester=1)
        assert estimator.pairs == {}

    def test_departed_node_is_ignored(self, trace):
        """Churn can remove a node between emit and delivery."""
        estimator = self._estimator(trace)
        trace.emit(10.0, "remote_request_received", node=0, seq=1, requester=999)
        assert estimator.pairs == {}

    def test_remote_recovery_contributes_rtt_and_loss(self, trace):
        estimator = self._estimator(trace)
        # node 2 (region 1, parent region 0): 3 remote rounds, 150 ms.
        trace.emit(150.0, "recovery_completed", node=2, seq=1, latency=150.0,
                   local_rounds=0, remote_rounds=3, remote_requests=2)
        state = estimator.pairs[pair_key(0, 1)]
        assert state.rtt_ms == pytest.approx(50.0)  # latency / rounds
        # One success plus two timed-out rounds as loss samples.
        assert state.samples == 3
        assert state.loss > 0.0

    def test_local_only_recovery_is_not_a_link_sample(self, trace):
        estimator = self._estimator(trace)
        trace.emit(20.0, "recovery_completed", node=2, seq=1, latency=20.0,
                   local_rounds=2, remote_rounds=0, remote_requests=0)
        assert estimator.pairs == {}

    def test_root_region_recovery_has_no_parent_edge(self, trace):
        estimator = self._estimator(trace)
        trace.emit(20.0, "recovery_completed", node=0, seq=1, latency=20.0,
                   local_rounds=0, remote_rounds=2, remote_requests=1)
        assert estimator.pairs == {}

    def test_reliability_violation_is_a_hard_loss_sample(self, trace):
        estimator = self._estimator(trace)
        trace.emit(500.0, "reliability_violation", node=2, seq=1, waited=500.0)
        state = estimator.pairs[pair_key(0, 1)]
        assert state.loss == 1.0
        assert state.etx() == 100.0

    def test_cc_feedback_samples_the_parent_edge(self, trace):
        estimator = self._estimator(trace)
        trace.emit(100.0, "cc_feedback", receiver=2, loss=0.25, rtt=120.0)
        state = estimator.pairs[pair_key(0, 1)]
        assert state.loss == 0.25
        assert state.rtt_ms == 120.0

    def test_ewma_tracks_an_improving_link(self, trace):
        """A burst of successes after a violation pulls loss back down."""
        estimator = self._estimator(trace)
        trace.emit(1.0, "reliability_violation", node=2, seq=1, waited=100.0)
        for t in range(40):
            trace.emit(float(t), "remote_request_received",
                       node=0, seq=t, requester=2)
        state = estimator.pairs[pair_key(0, 1)]
        assert state.loss < 0.01

    def test_star_topology_distinguishes_leaf_edges(self, trace):
        hierarchy = star(2, [2, 2])
        estimator = self._estimator(trace, hierarchy)
        # node 2 is in region 1, node 4 in region 2; both parent region 0.
        trace.emit(400.0, "reliability_violation", node=2, seq=1, waited=400.0)
        trace.emit(10.0, "remote_request_received", node=0, seq=1, requester=4)
        assert estimator.etx(0, 1) == 100.0
        assert estimator.etx(0, 2) == 1.0
