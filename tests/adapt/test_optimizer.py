"""Unit tests for the makespan-aware tree re-optimizer."""

import pytest

from repro.adapt.linkstate import LinkStateEstimator
from repro.adapt.optimizer import TreeOptimizer
from repro.net.topology import chain, star


def make_optimizer(sim, trace, hierarchy, **kwargs):
    estimator = LinkStateEstimator(hierarchy, default_rtt_ms=80.0).attach(trace)
    return TreeOptimizer(sim, hierarchy, estimator, trace, **kwargs)


def poison_edge(estimator, trace, node, rounds=5):
    """Mark *node*'s parent edge as effectively dead via violations."""
    for _ in range(rounds):
        trace.emit(0.0, "reliability_violation", node=node, seq=1, waited=100.0)


class TestValidation:
    def test_bad_update_interval_rejected(self, sim, trace):
        with pytest.raises(ValueError, match="update_interval"):
            make_optimizer(sim, trace, chain([2, 2]), update_interval=0.0)

    def test_negative_hysteresis_rejected(self, sim, trace):
        with pytest.raises(ValueError, match="hysteresis"):
            make_optimizer(sim, trace, chain([2, 2]), hysteresis=-0.1)

    def test_negative_budget_rejected(self, sim, trace):
        with pytest.raises(ValueError, match="max_reparents"):
            make_optimizer(sim, trace, chain([2, 2]), max_reparents=-1)


class TestPathCosts:
    def test_costs_accumulate_along_the_chain(self, sim, trace):
        optimizer = make_optimizer(sim, trace, chain([2, 2, 2]))
        costs = optimizer.path_costs()
        assert costs[0] == 0.0           # root
        assert costs[1] == 80.0          # one prior-cost hop
        assert costs[2] == 160.0         # two prior-cost hops

    def test_costs_reflect_link_state(self, sim, trace):
        optimizer = make_optimizer(sim, trace, chain([2, 2]))
        poison_edge(optimizer.linkstate, trace, node=2)
        costs = optimizer.path_costs()
        assert costs[1] == pytest.approx(100.0 * 80.0)  # capped ETX x prior


class TestReparenting:
    def test_reparents_away_from_a_dead_edge(self, sim, trace):
        # Region 2 hangs off region 0 over a dead edge; sibling region 1
        # is clean, so 2 should move under 1.
        hierarchy = star(2, [2, 2])
        hierarchy.regions[2].parent_id = 0
        optimizer = make_optimizer(sim, trace, hierarchy, update_interval=100.0)
        poison_edge(optimizer.linkstate, trace, node=4)  # node 4 in region 2
        optimizer.start()
        sim.run(until=150.0)
        assert hierarchy.regions[2].parent_id == 1
        assert optimizer.reparent_count == 1
        record = trace.first("tree_reparent")
        assert record["region"] == 2
        assert record["old_parent"] == 0
        assert record["new_parent"] == 1
        assert record["predicted_cost"] < record["previous_cost"]
        hierarchy.validate()  # still a legal tree

    def test_hysteresis_blocks_marginal_moves(self, sim, trace):
        hierarchy = star(2, [2, 2])
        optimizer = make_optimizer(sim, trace, hierarchy, hysteresis=0.5)
        # A mildly lossy parent edge: better alternatives exist but not
        # 50% better once the sibling hop is priced in.
        state = optimizer.linkstate.state(0, 2)
        state.observe_loss(0.15, 0.2)
        optimizer._update()
        assert hierarchy.regions[2].parent_id == 0
        assert optimizer.reparent_count == 0

    def test_zero_budget_never_moves(self, sim, trace):
        hierarchy = star(2, [2, 2])
        optimizer = make_optimizer(sim, trace, hierarchy, max_reparents=0)
        poison_edge(optimizer.linkstate, trace, node=2)
        optimizer._update()
        assert optimizer.reparent_count == 0
        assert trace.count("tree_reparent") == 0

    def test_at_most_one_reparent_per_pass(self, sim, trace):
        hierarchy = star(2, [2, 2, 2])
        poisoned = make_optimizer(sim, trace, hierarchy)
        poison_edge(poisoned.linkstate, trace, node=2)  # region 1
        poison_edge(poisoned.linkstate, trace, node=4)  # region 2
        poisoned._update()
        assert poisoned.reparent_count == 1
        poisoned._update()
        assert poisoned.reparent_count == 2

    def test_budget_bounds_the_session(self, sim, trace):
        hierarchy = star(2, [2, 2, 2])
        optimizer = make_optimizer(sim, trace, hierarchy,
                                   max_reparents=1, cooldown_passes=0)
        poison_edge(optimizer.linkstate, trace, node=2)
        poison_edge(optimizer.linkstate, trace, node=4)
        for _ in range(5):
            optimizer._update()
        assert optimizer.reparent_count == 1
        assert trace.count("tree_reparent") == 1

    def test_cooldown_keeps_a_moved_region_parked(self, sim, trace):
        hierarchy = star(2, [2, 2, 2])
        optimizer = make_optimizer(sim, trace, hierarchy, cooldown_passes=3)
        poison_edge(optimizer.linkstate, trace, node=2)  # region 1 -> moves
        optimizer._update()
        assert hierarchy.regions[1].parent_id == 2
        # Now poison the new edge too; region 3 is clean and strictly
        # better, but the region must sit out the cool-down first.
        poison_edge(optimizer.linkstate, trace, node=2)
        optimizer._update()
        optimizer._update()
        assert optimizer.reparent_count == 1
        optimizer._update()  # cool-down expired
        assert optimizer.reparent_count == 2
        assert hierarchy.regions[1].parent_id == 3

    def test_never_adopts_a_descendant(self, sim, trace):
        # chain 0 -> 1 -> 2; even with 1's parent edge dead, the only
        # non-parent candidate for region 1 is its own child 2, which
        # must be rejected (adopting it would make a cycle).
        hierarchy = chain([2, 2, 2])
        optimizer = make_optimizer(sim, trace, hierarchy)
        poison_edge(optimizer.linkstate, trace, node=2)  # region 1's edge
        assert optimizer._best_move(1, optimizer.path_costs()) is None
        # The full pass instead relieves the bottleneck legally: the
        # *grandchild* escapes the poisoned path by moving to the root.
        optimizer._update()
        assert hierarchy.regions[1].parent_id == 0
        assert hierarchy.regions[2].parent_id == 0
        hierarchy.validate()

    def test_never_adopts_an_empty_region(self, sim, trace):
        hierarchy = star(2, [2])
        hierarchy.add_region(2, parent_id=0)  # exists but empty
        optimizer = make_optimizer(sim, trace, hierarchy)
        poison_edge(optimizer.linkstate, trace, node=2)  # region 1's edge
        optimizer._update()
        # The only live alternative to the poisoned parent edge was the
        # empty region, which cannot serve repairs: no move.
        assert hierarchy.regions[1].parent_id == 0
        assert optimizer.reparent_count == 0


class TestLifecycle:
    def test_start_stop(self, sim, trace):
        optimizer = make_optimizer(sim, trace, chain([2, 2]),
                                   update_interval=50.0)
        assert not optimizer.running
        optimizer.start()
        assert optimizer.running
        sim.run(until=220.0)
        assert optimizer.update_count == 4
        optimizer.stop()
        optimizer.stop()  # idempotent
        assert not optimizer.running
        sim.run(until=500.0)
        assert optimizer.update_count == 4

    def test_clean_tree_is_left_alone(self, sim, trace):
        hierarchy = star(2, [2, 2])
        optimizer = make_optimizer(sim, trace, hierarchy, update_interval=50.0)
        optimizer.start()
        sim.run(until=500.0)
        assert optimizer.reparent_count == 0
        assert hierarchy.regions[1].parent_id == 0
        assert hierarchy.regions[2].parent_id == 0
