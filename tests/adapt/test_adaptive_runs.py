"""Integration tests: the adaptive subsystem end to end.

Two guarantees anchor this file: a default (off) ``AdaptSpec`` is
invisible — byte-identical events and trace digests — and an enabled
one re-parents under the invariant oracle without a single violation.
"""

from dataclasses import replace

from repro.scenario.registry import get_scenario
from repro.scenario.spec import AdaptSpec
from repro.sim import trace_digest


class TestDefaultOff:
    def test_default_adapt_spec_preserves_digest_and_events(self):
        spec = get_scenario("heterogeneous_regions")
        plain = spec.build().run()
        carried = replace(spec, adapt=AdaptSpec()).build().run()
        assert carried.simulation.sim.events_fired == plain.simulation.sim.events_fired
        assert trace_digest(carried.simulation.trace.records) == trace_digest(
            plain.simulation.trace.records
        )
        assert carried.adapt is None
        assert carried.linkstate is None

    def test_default_adapt_spec_preserves_spec_digest(self):
        spec = get_scenario("wan_burst_loss")
        assert replace(spec, adapt=AdaptSpec()).digest() == spec.digest()

    def test_summary_omits_adapt_keys_when_off(self):
        built = get_scenario("wan_burst_loss").build().run()
        summary = built.summary()
        assert "adapt_reparents" not in summary
        assert "adapt_updates" not in summary


class TestAdaptiveRun:
    def _adaptive(self, name, **adapt_kwargs):
        spec = get_scenario(name)
        spec = replace(
            spec,
            adapt=AdaptSpec(mode="passive", **adapt_kwargs),
            measurement=replace(spec.measurement, oracle=True),
        )
        return spec.build().run()

    def test_heterogeneous_regions_reparents_cleanly(self):
        built = self._adaptive("heterogeneous_regions",
                               update_interval=150.0, max_reparents=8)
        summary = built.summary()
        assert summary["invariant_violations"] == 0
        assert summary["adapt_updates"] > 0
        assert summary["adapt_reparents"] <= 8
        assert built.adapt is not None
        assert not built.adapt.running  # stopped at drain
        # Every applied re-parent left a traceable audit record.
        reparents = list(built.simulation.trace.of_kind("tree_reparent"))
        assert len(reparents) == summary["adapt_reparents"]
        built.simulation.hierarchy.validate()

    def test_no_alternative_parent_means_no_reparents(self):
        """wan_burst_loss is a two-region chain: nothing to move to."""
        built = self._adaptive("wan_burst_loss", update_interval=100.0)
        summary = built.summary()
        assert summary["adapt_reparents"] == 0
        assert summary["invariant_violations"] == 0

    def test_churn_scenario_stays_violation_free(self):
        built = self._adaptive("flash_crowd", update_interval=100.0)
        assert built.summary()["invariant_violations"] == 0
        built.simulation.hierarchy.validate()

    def test_makespan_reported_for_adaptive_and_static_runs(self):
        spec = get_scenario("heterogeneous_regions")
        static_summary = spec.build().run().summary()
        adaptive_summary = self._adaptive("heterogeneous_regions").summary()
        for summary in (static_summary, adaptive_summary):
            assert summary["makespan_session_ms"] > 0
            assert (summary["makespan_seq_p90_ms"]
                    <= summary["makespan_seq_max_ms"])
