"""Re-parenting mid-recovery: gap tracking and recovery stay coherent.

A re-parent mutates ``Region.parent_id`` while recoveries may be
mid-flight.  The design relies on two properties checked here: the
recovery process re-reads ``parent_member_ids()`` every remote round
(so it redirects without being restarted), and :class:`GapTracker`
accounting is untouched by the switch — one recovery per missing seq,
one completion, no resurrection.
"""

import pytest

from repro.protocol.config import RrmpConfig
from repro.protocol.loss_detection import GapTracker
from repro.protocol.recovery import RecoveryProcess
from repro.sim import RandomStreams


class SwitchableHost:
    """RecoveryHost whose parent membership can be swapped mid-run."""

    def __init__(self, sim, trace, parents, region_size=1, seed=11):
        self.node_id = 0
        self.sim = sim
        self.trace = trace
        self.config = RrmpConfig(session_interval=None, remote_lambda=1.0)
        self.parents = list(parents)
        self.sent_remote = []  # (time, dst, seq)
        self._region_size = region_size
        self._streams = RandomStreams(seed)

    def neighbor_ids(self):
        return []

    def parent_member_ids(self):
        return list(self.parents)

    def has_parent_region(self):
        return True

    def region_size(self):
        return self._region_size

    def send_local_request(self, dst, request):  # pragma: no cover
        raise AssertionError("no neighbours configured")

    def send_remote_request(self, dst, request):
        self.sent_remote.append((self.sim.now, dst, request.seq))

    def rtt_to(self, dst):
        return 10.0

    def recovery_rng(self):
        return self._streams.stream("recovery")


class TestReparentMidRecovery:
    def test_next_round_targets_the_new_parent(self, sim, trace):
        """In-flight recoveries redirect with no restart or signalling."""
        host = SwitchableHost(sim, trace, parents=[100, 101])
        process = RecoveryProcess(host, seq=7, detected_at=0.0)
        process.start()
        sim.run(until=25.0)
        assert host.sent_remote
        assert all(dst in (100, 101) for _, dst, _ in host.sent_remote)
        before = len(host.sent_remote)
        host.parents = [200, 201]  # the re-parent, between rounds
        sim.run(until=65.0)
        redirected = host.sent_remote[before:]
        assert redirected
        assert all(dst in (200, 201) for _, dst, _ in redirected)
        # Still the same single process, still recovering the same seq.
        assert process.active
        assert process.remote_rounds == len(host.sent_remote)

    def test_reparent_does_not_duplicate_completion(self, sim, trace):
        host = SwitchableHost(sim, trace, parents=[100])
        process = RecoveryProcess(host, seq=7, detected_at=0.0)
        process.start()
        sim.run(until=15.0)
        host.parents = [200]
        sim.run(until=35.0)
        process.complete(sim.now)
        sim.run(until=200.0)
        assert trace.count("recovery_completed") == 1
        assert not process.active
        # No further requests to either the old or the new parent.
        assert all(t <= 35.0 for t, _, _ in host.sent_remote)

    def test_reparent_onto_empty_region_keeps_probing(self, sim, trace):
        """A re-parent onto a (momentarily) empty region must not kill
        the remote phase: the idle probe picks members up later."""
        host = SwitchableHost(sim, trace, parents=[100])
        process = RecoveryProcess(host, seq=7, detected_at=0.0)
        process.start()
        sim.run(until=15.0)
        host.parents = []           # new parent region still filling
        sim.run(until=100.0)
        before = len(host.sent_remote)
        host.parents = [300]        # members arrived
        sim.run(until=300.0)
        assert len(host.sent_remote) > before
        assert host.sent_remote[-1][1] == 300
        assert process.active


class TestGapTrackerAcrossReparent:
    def test_gap_accounting_is_independent_of_the_repair_target(self, sim, trace):
        """The tracker owes nothing to topology: a seq recovered *via*
        the new parent clears exactly like one from the old parent."""
        tracker = GapTracker()
        assert tracker.on_receive(1) == []
        assert tracker.on_receive(4) == [2, 3]
        # One recovery per missing seq, started against the old parent.
        host = SwitchableHost(sim, trace, parents=[100])
        processes = {seq: RecoveryProcess(host, seq, sim.now)
                     for seq in tracker.missing()}
        for process in processes.values():
            process.start()
        sim.run(until=15.0)
        host.parents = [200]  # re-parent while both are mid-flight
        sim.run(until=35.0)
        # Seq 2 arrives via the new parent, seq 3 via a late multicast:
        # both complete their processes and leave the missing set.
        for seq in (2, 3):
            assert tracker.on_receive(seq) == []
            processes[seq].complete(sim.now)
        assert tracker.missing() == []
        assert trace.count("recovery_completed") == 2
        # A duplicate of an already-recovered seq reports nothing new
        # and must not spawn another recovery.
        assert tracker.on_receive(2) == []
        assert tracker.received_count == 4

    def test_losses_detected_after_reparent_start_fresh_recoveries(self, sim, trace):
        tracker = GapTracker()
        tracker.on_receive(1)
        host = SwitchableHost(sim, trace, parents=[100])
        host.parents = [200]  # re-parent happens first
        newly_missing = tracker.on_receive(3)
        assert newly_missing == [2]
        process = RecoveryProcess(host, 2, sim.now)
        process.start()
        assert host.sent_remote[-1][1] == 200  # straight to the new parent
        assert process.remote_rounds == 1
