"""Shared fixtures and fakes for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim import RandomStreams, Simulator, TraceLog


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at t = 0."""
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic stream factory with a fixed master seed."""
    return RandomStreams(1234)


@pytest.fixture
def trace() -> TraceLog:
    """A record-keeping trace log."""
    return TraceLog()


class FakeBufferHost:
    """Minimal BufferHost for unit-testing policies without a member."""

    def __init__(self, sim: Simulator, trace: TraceLog, node_id: int = 0,
                 region_size: int = 100, seed: int = 99) -> None:
        self.node_id = node_id
        self.sim = sim
        self.trace = trace
        self._region_size = region_size
        self._streams = RandomStreams(seed)

    def region_size(self) -> int:
        return self._region_size

    def set_region_size(self, n: int) -> None:
        self._region_size = n

    def policy_rng(self, purpose: str) -> random.Random:
        return self._streams.stream("policy", purpose)


@pytest.fixture
def buffer_host(sim: Simulator, trace: TraceLog) -> FakeBufferHost:
    """A fake policy host bound to the shared sim/trace fixtures."""
    return FakeBufferHost(sim, trace)


class FakeSearchHost:
    """Minimal SearchHost recording forwarded requests."""

    def __init__(self, sim: Simulator, trace: TraceLog, node_id: int = 0,
                 members=None, rtt: float = 10.0, seed: int = 7) -> None:
        self.node_id = node_id
        self.sim = sim
        self.trace = trace
        self.members = list(members if members is not None else range(10))
        self.rtt = rtt
        self.sent = []  # list of (dst, SearchRequest)
        self._streams = RandomStreams(seed)

    def region_member_ids(self):
        return list(self.members)

    def send_search_request(self, dst, request):
        self.sent.append((dst, request))

    def rtt_to(self, dst):
        return self.rtt

    def search_rng(self):
        return self._streams.stream("search")


@pytest.fixture
def search_host(sim: Simulator, trace: TraceLog) -> FakeSearchHost:
    """A fake search host with ten region members."""
    return FakeSearchHost(sim, trace)
