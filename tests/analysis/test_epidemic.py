"""Tests for the mean-field epidemic and search models."""

import pytest

from repro.analysis.epidemic import (
    pull_epidemic_curve,
    pull_epidemic_rounds,
    search_time_estimate,
)
from repro.workloads.scenarios import run_initial_holders, run_search


class TestPullEpidemicCurve:
    def test_monotone_non_decreasing(self):
        curve = pull_epidemic_curve(100, 1)
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_saturates_at_n(self):
        curve = pull_epidemic_curve(100, 1)
        assert curve[-1] == pytest.approx(100.0, abs=0.5)

    def test_zero_holders_never_spreads(self):
        assert pull_epidemic_curve(100, 0) == [0.0]

    def test_all_holders_is_immediate(self):
        curve = pull_epidemic_curve(50, 50)
        assert curve[0] == 50.0
        assert len(curve) == 1

    def test_exponential_early_growth(self):
        curve = pull_epidemic_curve(1_000, 1)
        # Early rounds roughly double the holder count.
        assert curve[3] / curve[2] > 1.7

    def test_validation(self):
        with pytest.raises(ValueError):
            pull_epidemic_curve(0, 0)
        with pytest.raises(ValueError):
            pull_epidemic_curve(10, 11)


class TestPullEpidemicRounds:
    def test_more_holders_fewer_rounds(self):
        assert pull_epidemic_rounds(100, 32) < pull_epidemic_rounds(100, 1)

    def test_logarithmic_scaling(self):
        r100 = pull_epidemic_rounds(100, 1)
        r10000 = pull_epidemic_rounds(10_000, 1)
        assert r10000 < 3 * r100  # log-ish, not linear

    def test_matches_simulated_recovery_duration(self):
        """The mean-field model predicts the simulated epidemic within
        a factor of two (rounds are 10 ms in the §4 setup)."""
        rounds = pull_epidemic_rounds(50, 1)
        result = run_initial_holders(50, 1, seed=0)
        received = [record.time for record
                    in result.simulation.trace.of_kind("member_received")]
        simulated_ms = max(received)
        predicted_ms = rounds * 10.0
        assert 0.4 < simulated_ms / predicted_ms < 2.5

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            pull_epidemic_rounds(10, 1, coverage=0.0)


class TestSearchTimeEstimate:
    def test_zero_with_all_bufferers(self):
        assert search_time_estimate(100, 100) == 0.0

    def test_infinite_with_no_bufferers(self):
        assert search_time_estimate(100, 0) == float("inf")

    def test_decreases_with_bufferers(self):
        values = [search_time_estimate(100, b) for b in (1, 5, 10)]
        assert values[0] > values[1] > values[2]

    def test_increases_sublinearly_with_region_size(self):
        """Figure 9's claim: 10x size -> only ~2-3x search time."""
        small = search_time_estimate(100, 10)
        large = search_time_estimate(1_000, 10)
        assert 1.5 < large / small < 4.0

    def test_brackets_simulated_search_time(self):
        simulated = []
        for seed in range(30):
            result = run_search(100, 5, seed=seed)
            simulated.append(result.search_time)
        mean_simulated = sum(simulated) / len(simulated)
        estimate = search_time_estimate(100, 5)
        assert 0.3 < mean_simulated / estimate < 3.0
