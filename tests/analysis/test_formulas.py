"""Tests for the paper's closed-form results (§3.1, §3.2)."""

import math

import pytest

from repro.analysis.formulas import (
    bufferer_distribution_poisson,
    bufferer_pmf_binomial,
    bufferer_pmf_poisson,
    expected_remote_requests,
    prob_no_bufferer,
    prob_no_bufferer_binomial,
    prob_no_request,
    prob_no_request_limit,
)


class TestNoRequestProbability:
    def test_exact_formula(self):
        # (1 - 1/99)^(100*0.5) with n=100, p=0.5
        expected = (1 - 1 / 99) ** 50
        assert prob_no_request(100, 0.5) == pytest.approx(expected)

    def test_no_missing_members_means_silence(self):
        assert prob_no_request(100, 0.0) == 1.0

    def test_limit_approximation_converges(self):
        """§3.1: as n -> inf the probability approaches e^-p."""
        p = 0.3
        exact_small = prob_no_request(10, p)
        exact_large = prob_no_request(100_000, p)
        limit = prob_no_request_limit(p)
        assert abs(exact_large - limit) < abs(exact_small - limit)
        assert exact_large == pytest.approx(limit, rel=1e-3)

    def test_decreases_exponentially_with_p(self):
        values = [prob_no_request_limit(p) for p in (0.1, 0.5, 1.0)]
        assert values[0] > values[1] > values[2]
        assert values[2] == pytest.approx(math.exp(-1))

    def test_validation(self):
        with pytest.raises(ValueError):
            prob_no_request(1, 0.5)
        with pytest.raises(ValueError):
            prob_no_request(100, 1.5)
        with pytest.raises(ValueError):
            prob_no_request_limit(-0.1)


class TestBuffererDistribution:
    def test_poisson_pmf_sums_to_one(self):
        total = sum(bufferer_pmf_poisson(6.0, k) for k in range(80))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_binomial_pmf_sums_to_one(self):
        total = sum(bufferer_pmf_binomial(100, 6.0, k) for k in range(101))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_poisson_approximates_binomial(self):
        """§3.2: Binomial(n, C/n) -> Poisson(C) for large n."""
        for k in range(15):
            binomial = bufferer_pmf_binomial(10_000, 6.0, k)
            poisson = bufferer_pmf_poisson(6.0, k)
            assert binomial == pytest.approx(poisson, abs=2e-3)

    def test_poisson_mode_near_c(self):
        pmf = bufferer_distribution_poisson(6.0, 20)
        mode = pmf.index(max(pmf))
        assert mode in (5, 6)

    def test_figure3_shift_right_with_c(self):
        """Figure 3: curves shift right as C grows."""
        modes = []
        for c in (5.0, 6.0, 7.0, 8.0):
            pmf = bufferer_distribution_poisson(c, 25)
            modes.append(pmf.index(max(pmf)))
        assert modes == sorted(modes)

    def test_out_of_range_k(self):
        assert bufferer_pmf_binomial(10, 2.0, 11) == 0.0
        assert bufferer_pmf_poisson(2.0, -1) == 0.0

    def test_binomial_mean_is_c(self):
        n, c = 100, 6.0
        mean = sum(k * bufferer_pmf_binomial(n, c, k) for k in range(n + 1))
        assert mean == pytest.approx(c)


class TestNoBufferer:
    def test_paper_example_quarter_percent_at_c6(self):
        """'When C = 6, for example, the probability is only 0.25%.'"""
        assert prob_no_bufferer(6.0) == pytest.approx(0.0025, abs=0.0002)

    def test_exponential_decay(self):
        values = [prob_no_bufferer(c) for c in range(1, 7)]
        ratios = [a / b for a, b in zip(values[1:], values)]
        for ratio in ratios:
            assert ratio == pytest.approx(math.exp(-1))

    def test_binomial_close_to_poisson_for_n100(self):
        assert prob_no_bufferer_binomial(100, 6.0) == pytest.approx(
            prob_no_bufferer(6.0), rel=0.25
        )


class TestExpectedRemoteRequests:
    def test_lambda_when_region_is_large(self):
        assert expected_remote_requests(100, 1.0) == pytest.approx(1.0)

    def test_capped_at_region_size(self):
        assert expected_remote_requests(3, 10.0) == pytest.approx(3.0)

    def test_empty_region(self):
        assert expected_remote_requests(0, 1.0) == 0.0
