"""Tests for the Runner (cache interplay, stats, ambient context)."""

from repro.runner import (
    ProcessPoolBackend,
    ResultCache,
    Runner,
    SerialBackend,
    SweepSpec,
    current_runner,
    using_runner,
)
from repro.runner._testing import trial_square


def sweep(points=3, seeds=(0, 1)):
    return SweepSpec("exp", trial_square, [{"x": x} for x in range(points)], list(seeds))


class TestRunner:
    def test_results_in_spec_order(self):
        runner = Runner()
        grouped = runner.run_sweep(sweep())
        assert [[run["value"] for run in runs] for runs in grouped] == [
            [0, 1], [1, 2], [4, 5]
        ]

    def test_cold_run_executes_and_populates_cache(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        runner.run_sweep(sweep())
        assert runner.stats.executed == 6
        assert runner.stats.cached == 0
        assert runner.stats.events_fired == 0  # arithmetic trials, no engine
        assert ResultCache(tmp_path).entry_count() == 6

    def test_warm_run_executes_nothing(self, tmp_path):
        Runner(cache=ResultCache(tmp_path)).run_sweep(sweep())
        warm = Runner(cache=ResultCache(tmp_path))
        grouped = warm.run_sweep(sweep())
        assert warm.stats.executed == 0
        assert warm.stats.cached == 6
        assert [[run["value"] for run in runs] for runs in grouped] == [
            [0, 1], [1, 2], [4, 5]
        ]

    def test_duplicate_specs_coalesce(self):
        runner = Runner()
        duplicated = SweepSpec("exp", trial_square, [{"x": 2}, {"x": 2}], [5])
        grouped = runner.run_sweep(duplicated)
        assert grouped == [[{"value": 9, "seed": 5}], [{"value": 9, "seed": 5}]]
        assert runner.stats.executed == 1
        assert runner.stats.deduped == 1

    def test_parallel_equals_serial_through_cacheless_runner(self):
        serial = Runner(backend=SerialBackend()).run_sweep(sweep(4, (0, 1, 2)))
        parallel = Runner(backend=ProcessPoolBackend(2)).run_sweep(sweep(4, (0, 1, 2)))
        assert serial == parallel

    def test_run_sweeps_batches_and_groups(self):
        runner = Runner()
        first, second = runner.run_sweeps([sweep(2), sweep(1, seeds=(9,))])
        assert [[run["value"] for run in runs] for runs in first] == [[0, 1], [1, 2]]
        assert [[run["value"] for run in runs] for runs in second] == [[9]]

    def test_stats_summary_mentions_counts(self):
        runner = Runner()
        runner.run_sweep(sweep(1, seeds=(0,)))
        assert "executed=1" in runner.stats.summary()


class TestAmbientRunner:
    def test_default_is_serial_uncached(self):
        runner = current_runner()
        assert isinstance(runner.backend, SerialBackend)
        assert runner.cache is None

    def test_using_runner_installs_and_restores(self):
        replacement = Runner()
        original = current_runner()
        with using_runner(replacement) as active:
            assert active is replacement
            assert current_runner() is replacement
        assert current_runner() is original

    def test_using_runner_restores_on_exception(self):
        original = current_runner()
        try:
            with using_runner(Runner()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_runner() is original
