"""Tests for the serial and process-pool execution backends."""

import pytest

from repro.runner import ProcessPoolBackend, SerialBackend, SweepSpec, TrialSpec
from repro.runner._testing import trial_draw, trial_square


def specs(count=6):
    return SweepSpec("exp", trial_square, [{"x": x} for x in range(count)], [1, 2]).trials()


class TestSerialBackend:
    def test_runs_in_order(self):
        outcomes = SerialBackend().run(specs())
        assert [o.value["value"] for o in outcomes] == [
            x * x + seed for x in range(6) for seed in (1, 2)
        ]

    def test_accounts_elapsed_time(self):
        outcomes = SerialBackend().run(specs(1))
        assert all(o.elapsed_s >= 0.0 for o in outcomes)


class TestProcessPoolBackend:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)

    def test_empty_task_list(self):
        assert ProcessPoolBackend(2).run([]) == []

    def test_matches_serial_results_and_order(self):
        serial = [o.value for o in SerialBackend().run(specs())]
        pooled = [o.value for o in ProcessPoolBackend(2).run(specs())]
        assert pooled == serial

    def test_seeded_randomness_is_position_independent(self):
        sweep = SweepSpec("exp", trial_draw, [{"bound": 100}], list(range(8)))
        serial = [o.value for o in SerialBackend().run(sweep.trials())]
        pooled = [o.value for o in ProcessPoolBackend(2).run(sweep.trials())]
        assert pooled == serial
        # Distinct seeds produce distinct streams.
        assert serial[0]["draws"] != serial[1]["draws"]

    def test_trial_exception_propagates(self):
        bad = TrialSpec("exp", trial_square, {"x": "not-an-int"}, 0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(2).run([bad] * 3)

    def test_single_job_pool_degrades_to_inline(self):
        outcomes = ProcessPoolBackend(1).run(specs(2))
        assert [o.value["value"] for o in outcomes] == [1, 2, 2, 3]

    def test_pool_is_reused_across_runs_and_close_is_idempotent(self):
        backend = ProcessPoolBackend(2)
        try:
            backend.run(specs(3))
            first = backend._executor
            assert first is not None
            backend.run(specs(3))
            assert backend._executor is first  # no per-run pool spin-up
        finally:
            backend.close()
        assert backend._executor is None
        backend.close()  # idempotent
        # A closed backend lazily re-creates its pool on the next run.
        try:
            assert [o.value["value"] for o in backend.run(specs(2))] == [1, 2, 2, 3]
        finally:
            backend.close()
