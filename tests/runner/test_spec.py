"""Tests for TrialSpec / SweepSpec fan-out and cache keying."""

import pickle

import pytest

from repro.runner import CACHE_SCHEMA_VERSION, SweepSpec, TrialSpec, canonical_params
from repro.runner._testing import trial_square


class TestCanonicalParams:
    def test_key_order_insensitive(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params({"b": 2, "a": 1})

    def test_tuples_and_lists_collapse(self):
        assert canonical_params({"xs": (1, 2)}) == canonical_params({"xs": [1, 2]})

    def test_distinct_values_distinct(self):
        assert canonical_params({"a": 1}) != canonical_params({"a": 2})


class TestTrialSpec:
    def test_cache_key_stable_and_distinct(self):
        spec = TrialSpec("exp", trial_square, {"x": 3}, 7)
        assert spec.cache_key() == TrialSpec("exp", trial_square, {"x": 3}, 7).cache_key()
        assert spec.cache_key() != TrialSpec("exp", trial_square, {"x": 3}, 8).cache_key()
        assert spec.cache_key() != TrialSpec("exp", trial_square, {"x": 4}, 7).cache_key()
        assert spec.cache_key() != TrialSpec("other", trial_square, {"x": 3}, 7).cache_key()

    def test_picklable(self):
        spec = TrialSpec("exp", trial_square, {"x": 3}, 7)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.trial({"x": 3}, 7) == {"value": 16, "seed": 7}

    def test_schema_version_in_key(self, monkeypatch):
        spec = TrialSpec("exp", trial_square, {"x": 3}, 7)
        before = spec.cache_key()
        monkeypatch.setattr("repro.runner.spec.CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert spec.cache_key() != before

    def test_code_fingerprint_in_key(self, monkeypatch):
        spec = TrialSpec("exp", trial_square, {"x": 3}, 7)
        before = spec.cache_key()
        monkeypatch.setattr("repro.runner.spec.code_fingerprint",
                            lambda: "different-source-tree")
        assert spec.cache_key() != before


class TestSweepSpec:
    def test_fanout_grid_major_seed_minor(self):
        sweep = SweepSpec("exp", trial_square, [{"x": 1}, {"x": 2}], [10, 11])
        trials = sweep.trials()
        assert [(t.params["x"], t.seed) for t in trials] == [
            (1, 10), (1, 11), (2, 10), (2, 11)
        ]
        assert all(t.experiment_id == "exp" for t in trials)

    def test_group_chunks_per_point(self):
        sweep = SweepSpec("exp", trial_square, [{"x": 1}, {"x": 2}], [0, 1, 2])
        grouped = sweep.group(list(range(6)))
        assert grouped == [[0, 1, 2], [3, 4, 5]]

    def test_group_rejects_wrong_length(self):
        sweep = SweepSpec("exp", trial_square, [{"x": 1}], [0, 1])
        with pytest.raises(ValueError, match="expects 2 results"):
            sweep.group([1, 2, 3])

    def test_seed_salt_derivation_is_deterministic(self):
        plain = SweepSpec("exp", trial_square, [{"x": 1}], [0, 1])
        salted = SweepSpec("exp", trial_square, [{"x": 1}], [0, 1], seed_salt="v2")
        assert plain.derived_seeds() == [0, 1]
        assert salted.derived_seeds() != [0, 1]
        assert salted.derived_seeds() == salted.derived_seeds()
