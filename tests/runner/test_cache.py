"""Tests for the on-disk result cache."""

import json

from repro.runner import ResultCache, TrialSpec
from repro.runner.cache import default_cache_dir
from repro.runner._testing import trial_square


def spec(x=3, seed=7, experiment_id="exp"):
    return TrialSpec(experiment_id, trial_square, {"x": x}, seed)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(spec()) is None
        cache.put(spec(), {"value": 16}, events_fired=5, elapsed_s=0.1)
        entry = cache.get(spec())
        assert entry["result"] == {"value": 16}
        assert entry["events_fired"] == 5
        assert entry["seed"] == 7

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(seed=7), "seven")
        cache.put(spec(seed=8), "eight")
        assert cache.get(spec(seed=7))["result"] == "seven"
        assert cache.get(spec(seed=8))["result"] == "eight"
        assert cache.entry_count() == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(spec(), {"value": 16})
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec()) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(spec(), {"value": 16})
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = -1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(spec()) is None

    def test_experiment_ids_partition_directories(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(experiment_id="a/b"), 1)
        assert (tmp_path / "a_b").is_dir()

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("RRMP_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultCache().root == tmp_path / "elsewhere"

    def test_nan_results_survive_the_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(), {"latency": float("nan")})
        value = cache.get(spec())["result"]["latency"]
        assert value != value  # NaN round-trips through the JSON layer
