"""Property and unit tests for the erasure codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fec.codec import (
    FecDecodeError,
    FecError,
    Gf256Codec,
    XorCodec,
    gf_inv,
    gf_mul,
    gf_pow,
    make_codec,
)


# ----------------------------------------------------------------------
# Field arithmetic
# ----------------------------------------------------------------------
class TestGf256:
    def test_multiplication_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_every_nonzero_element_has_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(a=st.integers(1, 255), b=st.integers(1, 255), c=st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_multiplication_is_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    def test_pow_matches_repeated_multiplication(self):
        for base in (0, 1, 2, 7, 255):
            acc = 1
            for exponent in range(6):
                assert gf_pow(base, exponent) == acc
                acc = gf_mul(acc, base)


# ----------------------------------------------------------------------
# Round-trip property: encode -> erase <= r shards -> decode
# ----------------------------------------------------------------------
@st.composite
def xor_blocks(draw):
    k = draw(st.integers(1, 10))
    length = draw(st.integers(0, 32))
    shards = [draw(st.binary(min_size=length, max_size=length)) for _ in range(k)]
    erased = draw(st.sets(st.integers(0, k), max_size=1))
    return k, shards, sorted(erased)


@st.composite
def gf_blocks(draw):
    k = draw(st.integers(1, 10))
    r = draw(st.integers(2, 5))
    length = draw(st.integers(0, 32))
    shards = [draw(st.binary(min_size=length, max_size=length)) for _ in range(k)]
    erase_count = draw(st.integers(0, r))
    erased = draw(
        st.sets(st.integers(0, k + r - 1), min_size=erase_count, max_size=erase_count)
    )
    return k, r, shards, sorted(erased)


class TestXorRoundTrip:
    @given(block=xor_blocks())
    @settings(max_examples=120, deadline=None)
    def test_single_erasure_round_trips(self, block):
        k, shards, erased = block
        codec = XorCodec(k)
        parity = codec.encode(shards)
        assert len(parity) == 1
        slots = list(shards) + parity
        lossy = [None if i in erased else s for i, s in enumerate(slots)]
        assert codec.decode(lossy) == shards

    def test_two_erasures_raise(self):
        codec = XorCodec(3)
        shards = [b"aa", b"bb", b"cc"]
        parity = codec.encode(shards)
        lossy = [None, None, shards[2], parity[0]]
        with pytest.raises(FecDecodeError):
            codec.decode(lossy)


class TestGf256RoundTrip:
    @given(block=gf_blocks())
    @settings(max_examples=120, deadline=None)
    def test_up_to_r_erasures_round_trip(self, block):
        k, r, shards, erased = block
        codec = Gf256Codec(k, r)
        parity = codec.encode(shards)
        assert len(parity) == r and all(len(p) == len(shards[0]) for p in parity)
        slots = list(shards) + parity
        lossy = [None if i in erased else s for i, s in enumerate(slots)]
        assert codec.decode(lossy) == shards

    def test_more_than_r_erasures_raise(self):
        codec = Gf256Codec(4, 2)
        shards = [bytes([i] * 8) for i in range(4)]
        parity = codec.encode(shards)
        lossy = [None, None, None, shards[3], parity[0], None]
        with pytest.raises(FecDecodeError):
            codec.decode(lossy)

    def test_systematic_top_rows_are_identity(self):
        codec = Gf256Codec(5, 3)
        for row in range(5):
            assert codec.matrix[row] == [
                1 if col == row else 0 for col in range(5)
            ]

    def test_worst_case_all_parity_used(self):
        """Erase the first r data shards; decode from the tail + parity."""
        codec = Gf256Codec(6, 3)
        shards = [bytes([17 * i + j for j in range(16)]) for i in range(6)]
        parity = codec.encode(shards)
        lossy = [None, None, None] + shards[3:] + parity
        assert codec.decode(lossy) == shards


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_make_codec_selects_xor_for_single_parity(self):
        assert isinstance(make_codec(8, 1), XorCodec)
        assert isinstance(make_codec(8, 2), Gf256Codec)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FecError):
            XorCodec(0)
        with pytest.raises(FecError):
            Gf256Codec(0, 2)
        with pytest.raises(FecError):
            Gf256Codec(4, 0)
        with pytest.raises(FecError):
            Gf256Codec(200, 57)  # k + r > 256

    def test_unequal_shard_lengths_rejected(self):
        with pytest.raises(FecError):
            XorCodec(2).encode([b"a", b"bb"])
        with pytest.raises(FecError):
            Gf256Codec(2, 2).encode([b"a", b"bb"])

    def test_wrong_slot_count_rejected(self):
        with pytest.raises(FecError):
            XorCodec(2).decode([b"a", b"b"])
        with pytest.raises(FecError):
            Gf256Codec(2, 2).decode([b"a", b"b", b"c"])
