"""Unit tests for the sender encoder pipeline and receiver block decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fec.decoder import FecBlockDecoder
from repro.fec.encoder import (
    FecEncoder,
    decode_payload,
    encode_payload,
    message_shard,
    pad_shard,
    shard_payload,
)
from repro.protocol.messages import DataMessage, ParityMessage, parity_seq


def msg(seq, payload=None):
    return DataMessage(seq=seq, sender=0, payload=payload)


# ----------------------------------------------------------------------
# Payload serialization
# ----------------------------------------------------------------------
class TestPayloadSerialization:
    @given(
        payload=st.one_of(
            st.none(),
            st.binary(max_size=64),
            st.text(max_size=32),
            st.integers(-(10**12), 10**12),
            st.floats(allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, payload):
        assert decode_payload(encode_payload(payload)) == payload

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_payload(["not", "serializable"])
        with pytest.raises(TypeError):
            encode_payload(True)

    def test_shard_round_trip_survives_padding(self):
        data = msg(4, payload=b"hello")
        shard = pad_shard(message_shard(data), 64)
        assert shard_payload(shard) == b"hello"


# ----------------------------------------------------------------------
# Encoder
# ----------------------------------------------------------------------
class TestFecEncoder:
    def test_block_completes_after_k_messages(self):
        encoder = FecEncoder(block_size=3, parity=1, sender=0)
        assert encoder.add(msg(1)) is None
        assert encoder.add(msg(2)) is None
        assert encoder.add(msg(3)) == 0
        assert encoder.add(msg(4)) is None  # next block begins

    def test_encode_block_emits_parity_messages(self):
        encoder = FecEncoder(block_size=3, parity=2, sender=7)
        for seq in (1, 2, 3):
            encoder.add(msg(seq, payload=f"m{seq}"))
        parities = encoder.encode_block(0)
        assert len(parities) == 2
        for index, parity in enumerate(parities):
            assert isinstance(parity, ParityMessage)
            assert parity.block_id == 0
            assert parity.index == index
            assert parity.r == 2
            assert parity.block_seqs == (1, 2, 3)
            assert parity.sender == 7
            assert parity.seq == parity_seq(0, index)
            assert parity.seq < 0

    def test_encode_block_is_one_shot(self):
        encoder = FecEncoder(block_size=2, parity=1, sender=0)
        encoder.add(msg(1))
        encoder.add(msg(2))
        assert len(encoder.encode_block(0)) == 1
        assert encoder.encode_block(0) == []
        assert encoder.is_encoded(0)

    def test_flush_seals_partial_block(self):
        encoder = FecEncoder(block_size=8, parity=2, sender=0)
        encoder.add(msg(1))
        encoder.add(msg(2))
        block_id = encoder.flush()
        assert block_id == 0
        parities = encoder.encode_block(block_id)
        assert parities[0].block_seqs == (1, 2)
        assert encoder.flush() is None  # nothing pending

    def test_block_containing_only_names_sealed_blocks(self):
        encoder = FecEncoder(block_size=2, parity=1, sender=0)
        encoder.add(msg(1))
        assert encoder.block_containing(1) is None  # still pending
        encoder.add(msg(2))
        assert encoder.block_containing(1) == 0
        assert encoder.block_containing(2) == 0
        assert encoder.block_containing(99) is None
        encoder.encode_block(0)
        assert encoder.block_containing(1) == 0  # encoded blocks stay known


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
def build_block(k=3, r=2, payloads=None):
    """One encoded block: (data messages, parity messages)."""
    encoder = FecEncoder(block_size=k, parity=r, sender=0)
    messages = [
        msg(seq + 1, payload=(payloads[seq] if payloads else f"payload-{seq}"))
        for seq in range(k)
    ]
    for message in messages:
        encoder.add(message)
    return messages, encoder.encode_block(0)


class TestFecBlockDecoder:
    def test_no_recovery_without_parity(self):
        messages, _parities = build_block()
        decoder = FecBlockDecoder()
        assert decoder.on_data(messages[0]) == []
        assert decoder.on_data(messages[1]) == []
        assert decoder.recover(3) == []

    def test_parity_completes_block_and_recovers_missing(self):
        messages, parities = build_block(k=3, r=2)
        decoder = FecBlockDecoder()
        decoder.on_data(messages[0])
        decoder.on_data(messages[2])
        recovered = decoder.on_parity(parities[0])
        assert [m.seq for m in recovered] == [2]
        assert recovered[0].payload == messages[1].payload
        assert recovered[0].sender == messages[1].sender
        assert decoder.recovered_count == 1

    def test_decode_fills_several_gaps_at_once(self):
        messages, parities = build_block(k=4, r=2)
        decoder = FecBlockDecoder()
        decoder.on_data(messages[0])
        decoder.on_data(messages[3])
        assert decoder.on_parity(parities[0]) == []  # 3 of 4 shards: not enough
        recovered = decoder.on_parity(parities[1])
        assert sorted(m.seq for m in recovered) == [2, 3]
        by_seq = {m.seq: m for m in recovered}
        assert by_seq[2].payload == messages[1].payload
        assert by_seq[3].payload == messages[2].payload

    def test_data_arrival_after_parity_triggers_decode(self):
        messages, parities = build_block(k=3, r=1)
        decoder = FecBlockDecoder()
        decoder.on_parity(parities[0])
        decoder.on_data(messages[0])
        recovered = decoder.on_data(messages[1])
        assert [m.seq for m in recovered] == [3]

    def test_fully_received_block_is_retired(self):
        messages, parities = build_block(k=2, r=1)
        decoder = FecBlockDecoder()
        for message in messages:  # all data first: nothing to decode
            decoder.on_data(message)
        assert decoder.on_parity(parities[0]) == []
        assert decoder.tracked_blocks == 0
        assert decoder.cached_shards == 0
        # Further shards for the retired block are ignored, not cached.
        assert decoder.on_parity(parities[0]) == []
        assert decoder.on_data(messages[0]) == []
        assert decoder.cached_shards == 0

    def test_duplicate_feeds_are_idempotent(self):
        messages, parities = build_block(k=3, r=1)
        decoder = FecBlockDecoder()
        decoder.on_data(messages[0])
        decoder.on_data(messages[0])
        decoder.on_parity(parities[0])
        assert decoder.on_parity(parities[0]) == []
        recovered = decoder.on_data(messages[1])
        assert [m.seq for m in recovered] == [3]

    def test_recover_is_a_safety_net(self):
        """Feeds decode eagerly, so recover() only confirms the state:
        it returns [] for unknown blocks, short blocks and retired
        blocks — never racing the eager path."""
        messages, parities = build_block(k=3, r=2)
        decoder = FecBlockDecoder()
        assert decoder.recover(1) == []  # no parity announced the block yet
        decoder.on_parity(parities[0])
        assert decoder.recover(2) == []  # 1 of 3 shards: not enough
        decoder.on_data(messages[0])
        recovered = decoder.on_data(messages[1])  # eager decode fires here
        assert [m.seq for m in recovered] == [3]
        assert decoder.recover(3) == []  # already recovered and retired

    def test_shard_cache_is_bounded(self):
        decoder = FecBlockDecoder(max_cached_shards=4)
        for seq in range(1, 10):
            decoder.on_data(msg(seq))
        assert decoder.cached_shards == 4

    def test_round_trip_with_varied_payload_sizes(self):
        """Shards of different lengths pad/strip transparently."""
        payloads = ["", "x" * 40, "mid"]
        messages, parities = build_block(k=3, r=2, payloads=payloads)
        decoder = FecBlockDecoder()
        decoder.on_data(messages[0])
        recovered = decoder.on_parity(parities[0])
        assert recovered == []  # only 2 of 3 shards so far
        recovered = decoder.on_parity(parities[1])
        assert sorted(m.seq for m in recovered) == [2, 3]
        by_seq = {m.seq: m for m in recovered}
        assert by_seq[2].payload == "x" * 40
        assert by_seq[3].payload == "mid"
