"""Integration tests: FEC wired through the RRMP protocol stack."""


from repro.net.ipmulticast import (
    FixedHolders,
    MulticastOutcome,
    RegionCorrelatedOutcome,
)
from repro.net.topology import chain, single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import LocalRequest, Repair
from repro.protocol.rrmp import RrmpSimulation


def fec_config(mode="proactive", k=4, r=1, **overrides):
    defaults = dict(
        fec_mode=mode, fec_block_size=k, fec_parity=r, session_interval=None
    )
    defaults.update(overrides)
    return RrmpConfig(**defaults)


class LoseSeqsAt(MulticastOutcome):
    """Everything arrives everywhere, except *seqs* miss *victim*.

    Selecting by seq (parity seqs are negative) lets a test lose a
    specific data message while its block's parity still arrives.
    """

    def __init__(self, victim, seqs):
        self.victim = victim
        self.seqs = set(seqs)

    def holders(self, seq, group, rng):
        lost = {self.victim} if seq in self.seqs else set()
        return set(group) - lost


class TestProactiveRepair:
    def test_parity_fills_gap_without_any_request(self):
        """One member misses the tail message of a block; the block's
        parity fills the gap before the loss is even detected, so pull
        recovery never sends a request."""
        hierarchy = single_region(4)
        simulation = RrmpSimulation(hierarchy, config=fec_config(k=2, r=1), seed=1)
        sender = simulation.sender
        victim = [n for n in hierarchy.nodes if n != sender.node_id][0]
        sender.outcome = LoseSeqsAt(victim, {2})
        sender.multicast(payload="m1")
        sender.multicast(payload="m2")  # completes the block -> parity
        simulation.run(duration=500.0)
        member = simulation.members[victim]
        assert member.has_received(2)
        received = [
            record for record in simulation.trace.of_kind("member_received")
            if record["node"] == victim and record["seq"] == 2
        ]
        assert received[0]["via"] == "fec-decode"
        assert simulation.trace.count("fec_decode_recovered") == 1
        # The decode beat the pull epidemic: no request, no repair,
        # not even a detected loss at the victim.
        assert simulation.network.stats.sent_by_type.get("LocalRequest", 0) == 0
        assert simulation.network.stats.sent_by_type.get("Repair", 0) == 0
        assert simulation.trace.count("loss_detected") == 0

    def test_decode_completes_inflight_recovery(self):
        """A regional loss starts recoveries; the parity decode fills
        the gap and completes them (no timers left running)."""
        hierarchy = chain([3, 3])
        simulation = RrmpSimulation(
            hierarchy, config=fec_config(k=2, r=1), seed=2
        )
        sender = simulation.sender
        child = set(hierarchy.regions[1].members)
        # Message 1 misses the whole child region; message 2 arrives
        # everywhere, revealing the gap before any parity exists.
        sender.outcome = FixedHolders(set(hierarchy.nodes) - child)
        sender.multicast()
        simulation.run(duration=1.0)
        sender.outcome = FixedHolders(set(hierarchy.nodes))
        sender.multicast()  # completes the block -> parity multicast
        simulation.run(duration=2_000.0)
        assert all(simulation.members[n].has_received(1) for n in child)
        assert simulation.trace.count("fec_decode_recovered") >= 1
        completions = list(simulation.trace.of_kind("recovery_completed"))
        assert completions  # the decode completed detected recoveries
        for member in simulation.members.values():
            assert not member.recoveries

    def test_partial_tail_block_protected_by_flush(self):
        hierarchy = single_region(3)
        simulation = RrmpSimulation(hierarchy, config=fec_config(k=8, r=1), seed=3)
        sender = simulation.sender
        victim = [n for n in hierarchy.nodes if n != sender.node_id][0]
        sender.outcome = LoseSeqsAt(victim, {2})
        sender.multicast()
        sender.multicast()  # tail message, lost at the victim
        emitted = sender.flush_parity()
        assert len(emitted) == 1 and emitted[0].block_seqs == (1, 2)
        simulation.run(duration=500.0)
        assert simulation.members[victim].has_received(2)
        assert simulation.trace.count("fec_decode_recovered") == 1

    def test_encode_and_overhead_traces(self):
        hierarchy = single_region(3)
        simulation = RrmpSimulation(hierarchy, config=fec_config(k=2, r=1), seed=4)
        simulation.sender.multicast()
        simulation.sender.multicast()
        encode = simulation.trace.first("fec_encode")
        assert encode is not None
        assert encode["k"] == 2 and encode["r"] == 1
        assert encode["trigger"] == "proactive"
        overhead = simulation.trace.first("fec_parity_overhead")
        assert overhead["parity_messages"] == 1
        assert overhead["parity_bytes"] > 0
        assert overhead["data_bytes"] == 2 * 1024


class TestReactiveRepair:
    def test_request_observed_by_sender_triggers_parity(self):
        hierarchy = single_region(3)
        simulation = RrmpSimulation(
            hierarchy, config=fec_config(mode="reactive", k=2, r=1), seed=5
        )
        sender = simulation.sender
        simulation.sender.multicast()
        simulation.sender.multicast()
        assert simulation.trace.count("fec_encode") == 0  # nothing proactive
        victim = [n for n in hierarchy.nodes if n != sender.node_id][0]
        simulation.network.unicast(
            victim, sender.node_id, LocalRequest(seq=1, requester=victim)
        )
        simulation.run(duration=100.0)
        encode = simulation.trace.first("fec_encode")
        assert encode is not None and encode["trigger"] == "reactive"
        # A second request for the same block does not re-encode.
        simulation.network.unicast(
            victim, sender.node_id, LocalRequest(seq=2, requester=victim)
        )
        simulation.run(duration=100.0)
        assert simulation.trace.count("fec_encode") == 1


class TestParityThroughBufferPolicy:
    def test_parity_is_buffered_and_servable(self):
        """Parity occupies a regular buffer entry (reserved negative
        seq) and a bufferer answers a local request for it."""
        hierarchy = single_region(3)
        config = fec_config(k=2, r=1, long_term_c=100.0)  # always promote
        simulation = RrmpSimulation(hierarchy, config=config, seed=6)
        sender = simulation.sender
        sender.multicast()
        sender.multicast()
        simulation.run(duration=10.0)
        parity_seq_value = simulation.trace.first("fec_parity_received")["seq"]
        assert parity_seq_value < 0
        nodes = list(hierarchy.nodes)
        holder, requester = nodes[0], nodes[1]
        assert simulation.members[holder].is_buffering(parity_seq_value)
        # Simulate a member pulling the parity shard from a bufferer.
        simulation.network.unicast(
            requester, holder,
            LocalRequest(seq=parity_seq_value, requester=requester),
        )
        simulation.run(duration=100.0)
        served = [
            record for record in simulation.trace.of_kind("repair_sent")
            if record["seq"] == parity_seq_value
        ]
        assert served and served[0]["to"] == requester

    def test_parity_entry_survives_idle_when_promoted(self):
        hierarchy = single_region(3)
        config = fec_config(k=2, r=1, long_term_c=100.0)
        simulation = RrmpSimulation(hierarchy, config=config, seed=7)
        simulation.sender.multicast()
        simulation.sender.multicast()
        simulation.run(duration=1_000.0)  # far past the idle threshold
        parity_seq_value = simulation.trace.first("fec_parity_received")["seq"]
        bufferers = [
            m for m in simulation.alive_members()
            if m.is_buffering(parity_seq_value)
        ]
        assert bufferers  # promoted to long-term, not idle-discarded

    def test_parity_discarded_when_never_requested_and_c_zero(self):
        hierarchy = single_region(3)
        config = fec_config(k=2, r=1, long_term_c=0.0)
        simulation = RrmpSimulation(hierarchy, config=config, seed=8)
        simulation.sender.multicast()
        simulation.sender.multicast()
        simulation.run(duration=1_000.0)
        parity_seq_value = simulation.trace.first("fec_parity_received")["seq"]
        assert all(
            not m.is_buffering(parity_seq_value)
            for m in simulation.alive_members()
        )


class TestRegionalLossSweep:
    def test_proactive_beats_off_on_latency_and_remote_requests(self):
        """Seeded determinism of the headline claim: at one (k, r, loss)
        point proactive FEC cuts both mean recovery latency and remote
        requests versus fec_mode=off at equal data load."""
        def measure(mode):
            hierarchy = chain([20, 20])
            config = RrmpConfig(
                fec_mode=mode, fec_block_size=8, fec_parity=2,
                remote_lambda=4.0, session_interval=50.0,
            )
            simulation = RrmpSimulation(hierarchy, config=config, seed=11)
            simulation.sender.outcome = RegionCorrelatedOutcome(
                hierarchy, region_loss=0.3, sender=simulation.sender.node_id
            )
            for index in range(16):
                simulation.sim.at(index * 5.0, simulation.sender.multicast)
            simulation.run(until=3_000.0)
            latencies = simulation.recovery_latencies()
            assert latencies
            mean_latency = sum(latencies) / len(latencies)
            remote = simulation.network.stats.sent_by_type.get("RemoteRequest", 0)
            assert all(simulation.all_received(seq) for seq in range(1, 17))
            return mean_latency, remote

        off_latency, off_remote = measure("off")
        fec_latency, fec_remote = measure("proactive")
        assert fec_latency < off_latency
        assert fec_remote < off_remote


class TestFecOffIsInert:
    def test_off_mode_has_no_fec_state_or_traffic(self):
        hierarchy = single_region(4)
        simulation = RrmpSimulation(
            hierarchy, config=RrmpConfig(session_interval=None), seed=9
        )
        simulation.sender.multicast()
        simulation.run(duration=200.0)
        assert simulation.sender.fec is None
        assert all(m.fec is None for m in simulation.members.values())
        assert simulation.network.stats.sent_by_type.get("ParityMessage", 0) == 0
        assert simulation.trace.count("fec_encode") == 0
