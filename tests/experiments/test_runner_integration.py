"""End-to-end: experiments through the sweep runner.

The determinism contract — ``--jobs N`` byte-identical to serial at
equal seeds, warm cache re-runs executing zero trials — asserted at the
experiment level on reduced parameters.
"""

from repro.experiments.ablation_scaling import run_scaling
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig8 import run_fig8
from repro.runner import (
    ProcessPoolBackend,
    ResultCache,
    Runner,
    SerialBackend,
    using_runner,
)


class TestParallelDeterminism:
    def test_fig6_parallel_table_identical_to_serial(self):
        with using_runner(Runner(backend=SerialBackend())):
            serial = run_fig6(ks=(1, 4), seeds=3)
        with using_runner(Runner(backend=ProcessPoolBackend(2))):
            parallel = run_fig6(ks=(1, 4), seeds=3)
        assert parallel.to_json() == serial.to_json()
        assert parallel.to_text() == serial.to_text()

    def test_fig8_parallel_table_identical_to_serial(self):
        with using_runner(Runner(backend=SerialBackend())):
            serial = run_fig8(bs=(1, 5), seeds=4)
        with using_runner(Runner(backend=ProcessPoolBackend(2))):
            parallel = run_fig8(bs=(1, 5), seeds=4)
        assert parallel.to_json() == serial.to_json()


class TestWarmCache:
    def test_scaling_rerun_executes_zero_trials(self, tmp_path):
        cold = Runner(cache=ResultCache(tmp_path))
        with using_runner(cold):
            first = run_scaling(ns=(25, 50), seeds=2)
        assert cold.stats.executed == 4
        assert cold.stats.events_fired > 0

        warm = Runner(cache=ResultCache(tmp_path))
        with using_runner(warm):
            second = run_scaling(ns=(25, 50), seeds=2)
        assert warm.stats.executed == 0
        assert warm.stats.cached == 4
        assert second.to_json() == first.to_json()

    def test_param_change_misses_cache(self, tmp_path):
        with using_runner(Runner(cache=ResultCache(tmp_path))):
            run_fig6(ks=(1,), seeds=2)
        changed = Runner(cache=ResultCache(tmp_path))
        with using_runner(changed):
            run_fig6(ks=(1,), seeds=2, idle_threshold=80.0)
        assert changed.stats.executed == 2
        assert changed.stats.cached == 0
