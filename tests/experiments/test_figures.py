"""Shape tests for every regenerated paper figure.

These run reduced repetitions (seconds, not minutes) and assert the
*shape* properties the paper reports — monotonicity, crossover
locations, known endpoint values — rather than exact numbers.
"""

import math

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9


class TestFig3:
    def test_poisson_curves_and_simulation_agree(self):
        table = run_fig3(trials=4_000)
        analytic = table.series["analytic C=6"]
        simulated = table.series["simulated C=6 (n=100, 4000 trials)"]
        for a, s in zip(analytic, simulated):
            assert a == pytest.approx(s, abs=3.0)  # both in %

    def test_mode_shifts_right_with_c(self):
        table = run_fig3(trials=500)
        modes = []
        for c in (5.0, 6.0, 7.0, 8.0):
            series = table.series[f"analytic C={c:g}"]
            modes.append(series.index(max(series)))
        assert modes == sorted(modes)
        assert modes[0] in (4, 5)

    def test_probabilities_are_percentages(self):
        table = run_fig3(trials=500)
        for series in table.series.values():
            assert all(0.0 <= value <= 100.0 for value in series)


class TestFig4:
    def test_exponential_decay(self):
        table = run_fig4(trials=4_000)
        poisson = table.series["poisson e^-C"]
        assert poisson[0] == pytest.approx(100 * math.exp(-1), abs=0.01)
        assert all(a > b for a, b in zip(poisson, poisson[1:]))

    def test_paper_quarter_percent_at_c6(self):
        table = run_fig4(trials=4_000)
        assert table.series["poisson e^-C"][-1] == pytest.approx(0.25, abs=0.01)

    def test_simulation_tracks_analytic(self):
        table = run_fig4(trials=6_000)
        analytic = table.series["binomial (1-C/n)^n, n=100"]
        simulated = table.series["simulated (6000 trials)"]
        for a, s in zip(analytic, simulated):
            assert s == pytest.approx(a, abs=2.5)


class TestFig6:
    def test_buffering_time_decreases_with_holders(self):
        table = run_fig6(ks=(1, 8, 64), seeds=6)
        times = table.series["avg buffering time (ms)"]
        assert times[0] > times[1] > times[2]

    def test_k1_matches_paper_magnitude(self):
        """Paper Figure 6: ~110 ms at k=1."""
        table = run_fig6(ks=(1,), seeds=8)
        assert 90.0 < table.series["avg buffering time (ms)"][0] < 140.0

    def test_floor_is_idle_threshold(self):
        table = run_fig6(ks=(64,), seeds=4)
        assert table.series["avg buffering time (ms)"][0] >= 40.0


class TestFig7:
    def test_received_monotone_to_full_coverage(self):
        table = run_fig7(seed=0)
        received = table.series["#received"]
        assert all(b >= a for a, b in zip(received, received[1:]))
        assert received[0] == 1.0  # the single initial holder
        assert received[-1] == 100.0

    def test_buffered_tracks_then_drops(self):
        """Paper: #buffered ~ #received until ~96% coverage, then falls."""
        table = run_fig7(seed=0)
        received = table.series["#received"]
        buffered = table.series["#buffered"]
        half_cover_index = next(i for i, v in enumerate(received) if v >= 50)
        assert buffered[half_cover_index] >= 0.9 * received[half_cover_index]
        assert buffered[-1] < 20.0  # collapsed by the end of the window

    def test_time_grid(self):
        table = run_fig7(sample_dt=5.0, horizon=50.0)
        assert table.xs == [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0,
                            35.0, 40.0, 45.0, 50.0]


class TestFig8:
    def test_search_time_decreases_with_bufferers(self):
        table = run_fig8(bs=(1, 5, 10), seeds=30)
        times = table.series["mean search time (ms)"]
        assert times[0] > times[1] > times[2]

    def test_ten_bufferers_near_paper_20ms(self):
        table = run_fig8(bs=(10,), seeds=40)
        assert 12.0 < table.series["mean search time (ms)"][0] < 30.0

    def test_direct_hit_rate_grows(self):
        table = run_fig8(bs=(1, 10), seeds=40)
        hits = table.series["direct hits (time=0)"]
        assert hits[1] >= hits[0]


class TestFig9:
    def test_sublinear_growth(self):
        """Paper: 10x region size -> only ~2.2x search time."""
        table = run_fig9(ns=(100, 1000), seeds=25)
        growth = table.series["growth vs smallest n"]
        assert growth[-1] < 5.0
        assert growth[-1] > 1.2

    def test_buffer_saving_column(self):
        table = run_fig9(ns=(100, 1000), seeds=5)
        savings = table.series["buffer-space saving vs buffer-everywhere"]
        assert savings == [10.0, 100.0]
