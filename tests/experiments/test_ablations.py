"""Shape tests for the ablation experiments."""



from repro.experiments.ablation_c import run_c_tradeoff
from repro.experiments.ablation_churn import run_churn_handoff
from repro.experiments.ablation_hash import run_hash_vs_random
from repro.experiments.ablation_idle import run_idle_threshold
from repro.experiments.ablation_lambda import run_lambda_sweep
from repro.experiments.ablation_search_storm import (
    run_search_vs_multicast,
    simulate_multicast_replies,
)


class TestCTradeoff:
    def test_copies_grow_with_c(self):
        table = run_c_tradeoff(cs=(1.0, 6.0), seeds=8)
        copies = table.series["mean long-term copies (buffer cost)"]
        assert copies[1] > copies[0]

    def test_unserved_falls_with_c(self):
        table = run_c_tradeoff(cs=(1.0, 8.0), seeds=10)
        unserved = table.series["unserved within horizon"]
        assert unserved[0] >= unserved[1]


class TestLambdaSweep:
    def test_requests_grow_with_lambda(self):
        table = run_lambda_sweep(lams=(0.5, 8.0), seeds=6)
        requests = table.series["mean remote requests sent"]
        assert requests[1] > requests[0]

    def test_recovery_speeds_up_with_lambda(self):
        table = run_lambda_sweep(lams=(0.25, 8.0), seeds=6)
        latency = table.series["mean time to full region recovery (ms)"]
        assert latency[0] > latency[1]


class TestSearchStorm:
    def test_multicast_replies_grow_with_buffering_fraction(self):
        import random
        low = [simulate_multicast_replies(100, 6, rng=random.Random(s))[0]
               for s in range(200)]
        high = [simulate_multicast_replies(100, 100, rng=random.Random(s))[0]
                for s in range(200)]
        assert sum(high) / len(high) > 2 * sum(low) / len(low)

    def test_zero_bufferers_no_reply(self):
        import random
        replies, first = simulate_multicast_replies(100, 0, rng=random.Random(1))
        assert replies == 0
        assert first == float("inf")

    def test_full_table_shapes(self):
        table = run_search_vs_multicast(buffering_fractions=(0.06, 1.0), seeds=30)
        storm = table.series["multicast: duplicate replies"]
        assert storm[1] > storm[0]  # implosion when everyone buffers
        search = table.series["search: messages"]
        assert search[1] < search[0]  # search trivial when everyone buffers


class TestHashVsRandom:
    def test_tradeoff_axes(self):
        table = run_hash_vs_random(n=60, seeds=10)
        randomized, deterministic = 0, 1
        hashes = table.series["hash evaluations"]
        assert hashes[deterministic] > hashes[randomized]
        messages = table.series["locate messages"]
        assert messages[randomized] > messages[deterministic]

    def test_both_schemes_serve(self):
        table = run_hash_vs_random(n=60, seeds=10)
        assert all(value == 0.0 for value in table.series["unserved"])


class TestIdleThreshold:
    def test_small_t_causes_violations(self):
        table = run_idle_threshold(thresholds=(10.0, 40.0), seeds=6)
        violations = table.series["reliability violations"]
        assert violations[0] > violations[1]

    def test_buffering_time_grows_with_t(self):
        table = run_idle_threshold(thresholds=(20.0, 160.0), seeds=5)
        buffering = table.series["mean holder buffering time (ms)"]
        assert buffering[1] > buffering[0]


class TestScaling:
    def test_recovery_grows_sublinearly(self):
        from repro.experiments.ablation_scaling import run_scaling
        table = run_scaling(ns=(25, 100), seeds=4)
        recovery = table.series["time to full recovery (ms)"]
        # Epidemic recovery: 4x the members costs at most ~one extra
        # round or two, nowhere near 4x the time (it can even tie,
        # since rounds are 10 ms quanta).
        assert recovery[1] / recovery[0] < 2.0

    def test_copies_independent_of_region_size(self):
        from repro.experiments.ablation_scaling import run_scaling
        table = run_scaling(ns=(25, 200), seeds=5)
        copies = table.series["long-term copies (expect ~C)"]
        assert abs(copies[0] - copies[1]) < 4.0
        everyone = table.series["copies if everyone buffered"]
        assert everyone == [25.0, 200.0]


class TestChurnHandoff:
    def test_handoff_preserves_message(self):
        table = run_churn_handoff(n=30, seeds=8)
        survived = table.series["message survived (%)"]
        graceful, crash = survived[0], survived[1]
        assert graceful >= 80.0
        assert crash <= 20.0

    def test_crash_arm_sends_no_handoffs(self):
        table = run_churn_handoff(n=30, seeds=5)
        transfers = table.series["handoff transfers"]
        assert transfers[0] > 0.0
        assert transfers[1] == 0.0


class TestFecAblation:
    def test_registered_and_dispatches_with_params(self):
        """The experiment runs through the registry (the CLI path)."""
        from repro.experiments.registry import run_experiment

        table = run_experiment(
            "ablation_fec",
            points=((4, 1),), loss_rates=(0.3,),
            region_size=15, messages=8, seeds=2, horizon=2_000.0,
        )
        assert table.xs == ["k=4,r=1,p=0.3"]
        for name in (
            "off: mean latency (ms)",
            "proactive: mean latency (ms)",
            "proactive: gaps decoded",
            "reactive: mean latency (ms)",
            "tree: mean latency (ms)",
        ):
            assert name in table.series

    def test_proactive_decodes_gaps_and_pays_parity(self):
        from repro.experiments.ablation_fec import run_fec_ablation

        table = run_fec_ablation(
            points=((4, 2),), loss_rates=(0.3,),
            region_size=15, messages=8, seeds=3, horizon=2_000.0,
        )
        assert table.series["proactive: gaps decoded"][0] > 0.0
        assert table.series["proactive: parity KB"][0] > 0.0
        assert table.series["off: remote requests"][0] > 0.0
