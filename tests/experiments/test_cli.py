"""Tests for the experiment registry and CLI."""

import pytest

from repro.experiments.cli import (
    QUICK_PARAMS,
    build_parser,
    fold_params,
    main,
    parse_param,
    runner_from_args,
)
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.metrics.report import SeriesTable
from repro.runner import ProcessPoolBackend, SerialBackend


class TestRegistry:
    def test_all_figures_registered(self):
        ids = experiment_ids()
        for figure in ("fig3", "fig4", "fig6", "fig7", "fig8", "fig9"):
            assert figure in ids

    def test_every_entry_has_description(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description

    def test_run_experiment_dispatches(self):
        table = run_experiment("fig4", trials=200)
        assert isinstance(table, SeriesTable)

    def test_unknown_experiment_raises_with_hint(self):
        with pytest.raises(KeyError, match="fig4"):
            run_experiment("nope")

    def test_quick_params_cover_all_experiments(self):
        assert set(QUICK_PARAMS) == set(experiment_ids())


class TestParamParsing:
    def test_numbers(self):
        assert parse_param("seeds=10") == ("seeds", 10)
        assert parse_param("c=2.5") == ("c", 2.5)

    def test_tuples(self):
        assert parse_param("ks=(1, 2)") == ("ks", (1, 2))

    def test_strings_fall_back(self):
        assert parse_param("mode=fast") == ("mode", "fast")

    def test_lowercase_booleans_coerce(self):
        """``--param fec=true`` must arrive as True, not "true"."""
        assert parse_param("fec=true") == ("fec", True)
        assert parse_param("fec=false") == ("fec", False)
        assert parse_param("fec=TRUE") == ("fec", True)
        assert parse_param("fec=False") == ("fec", False)  # literal path

    def test_none_and_null_coerce(self):
        assert parse_param("ttl=none") == ("ttl", None)
        assert parse_param("ttl=null") == ("ttl", None)
        assert parse_param("ttl=None") == ("ttl", None)  # literal path

    def test_scientific_notation_floats(self):
        assert parse_param("rate=1e-3") == ("rate", 0.001)
        assert parse_param("rate=2.5E2") == ("rate", 250.0)
        assert parse_param("rate=inf") == ("rate", float("inf"))
        key, value = parse_param("rate=nan")
        assert key == "rate" and value != value

    def test_whitespace_stripped(self):
        assert parse_param(" seeds = 10 ") == ("seeds", 10)

    def test_word_strings_still_pass_through(self):
        assert parse_param("mode=truely") == ("mode", "truely")
        assert parse_param("mode=nonesuch") == ("mode", "nonesuch")

    def test_missing_equals_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_param("seeds")


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "ablation_policies" in output

    def test_run_prints_table(self, capsys):
        assert main(["run", "fig4", "--param", "trials=200"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "poisson e^-C" in output

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-figure"])


class TestRunnerFlags:
    def test_quick_table_shared_between_cli_and_quick_module(self):
        from repro.experiments.quick import QUICK_PARAMS as table
        assert QUICK_PARAMS is table

    def test_run_supports_quick(self, capsys):
        assert main(["run", "fig4", "--quick", "--no-cache",
                     "--param", "trials=200"]) == 0
        captured = capsys.readouterr()
        assert "Figure 4" in captured.out
        assert "runner:" in captured.err  # accounting goes to stderr

    def test_runner_from_args_builds_requested_backend(self):
        parser = build_parser()
        serial = runner_from_args(parser.parse_args(["run", "fig4", "--no-cache"]))
        assert isinstance(serial.backend, SerialBackend)
        assert serial.cache is None
        parallel = runner_from_args(
            parser.parse_args(["run", "fig4", "--jobs", "3"])
        )
        assert isinstance(parallel.backend, ProcessPoolBackend)
        assert parallel.backend.jobs == 3
        assert parallel.cache is not None

    def test_nonpositive_jobs_rejected(self, capsys):
        for bad in ("0", "-2", "two"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["run", "fig4", "--jobs", bad])
        capsys.readouterr()  # swallow argparse usage output

    def test_cache_dir_round_trip_hits_cache(self, tmp_path, capsys):
        argv = ["run", "fig4", "--param", "trials=150",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "cached=0" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "executed=0" in warm.err
        assert warm.out == cold.out  # byte-identical table from cache


class TestFoldParams:
    def test_flat_pairs_stay_flat(self):
        assert fold_params([("seeds", 10), ("mode", "fast")]) == {
            "seeds": 10, "mode": "fast",
        }

    def test_dotted_keys_nest(self):
        assert fold_params([("congestion.target_loss", 0.02)]) == {
            "congestion": {"target_loss": 0.02},
        }

    def test_sibling_dotted_keys_share_a_node(self):
        folded = fold_params([
            ("congestion.target_loss", 0.02),
            ("congestion.min_rate", 5.0),
            ("seeds", 3),
        ])
        assert folded == {
            "congestion": {"target_loss": 0.02, "min_rate": 5.0},
            "seeds": 3,
        }

    def test_deeply_dotted_keys(self):
        assert fold_params([("a.b.c", 1)]) == {"a": {"b": {"c": 1}}}

    def test_scalar_then_nested_conflict_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="conflicts"):
            fold_params([("a", 1), ("a.b", 2)])

    def test_nested_then_scalar_conflict_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="conflicts"):
            fold_params([("a.b", 2), ("a", 1)])

    def test_empty(self):
        assert fold_params([]) == {}

    def test_parse_param_composes_with_fold(self):
        pairs = [parse_param("congestion.target_loss=0.02"),
                 parse_param("seeds=4")]
        assert fold_params(pairs) == {
            "congestion": {"target_loss": 0.02}, "seeds": 4,
        }
