"""Tests for the experiment registry and CLI."""

import pytest

from repro.experiments.cli import QUICK_PARAMS, build_parser, main, parse_param
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.metrics.report import SeriesTable


class TestRegistry:
    def test_all_figures_registered(self):
        ids = experiment_ids()
        for figure in ("fig3", "fig4", "fig6", "fig7", "fig8", "fig9"):
            assert figure in ids

    def test_every_entry_has_description(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description

    def test_run_experiment_dispatches(self):
        table = run_experiment("fig4", trials=200)
        assert isinstance(table, SeriesTable)

    def test_unknown_experiment_raises_with_hint(self):
        with pytest.raises(KeyError, match="fig4"):
            run_experiment("nope")

    def test_quick_params_cover_all_experiments(self):
        assert set(QUICK_PARAMS) == set(experiment_ids())


class TestParamParsing:
    def test_numbers(self):
        assert parse_param("seeds=10") == ("seeds", 10)
        assert parse_param("c=2.5") == ("c", 2.5)

    def test_tuples(self):
        assert parse_param("ks=(1, 2)") == ("ks", (1, 2))

    def test_strings_fall_back(self):
        assert parse_param("mode=fast") == ("mode", "fast")

    def test_missing_equals_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_param("seeds")


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "ablation_policies" in output

    def test_run_prints_table(self, capsys):
        assert main(["run", "fig4", "--param", "trials=200"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "poisson e^-C" in output

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-figure"])
