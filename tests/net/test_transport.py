"""Unit tests for the network transport."""

from dataclasses import dataclass, field

import pytest

from repro.net.latency import ConstantLatency
from repro.net.loss import ReceiverSetLoss
from repro.net.transport import Network
from repro.sim import RandomStreams, TraceLog


@dataclass(frozen=True)
class ControlPing:
    note: str = "hi"
    kind: str = field(default="control", repr=False)
    wire_size: int = field(default=64, repr=False)


@dataclass(frozen=True)
class DataBlob:
    kind: str = field(default="data", repr=False)
    wire_size: int = field(default=1024, repr=False)


class Sink:
    def __init__(self):
        self.packets = []

    def on_packet(self, packet):
        self.packets.append(packet)


@pytest.fixture
def network(sim):
    return Network(sim, ConstantLatency(5.0), streams=RandomStreams(1))


class TestUnicast:
    def test_delivery_with_latency(self, sim, network):
        sink = Sink()
        network.register(1, sink)
        network.unicast(0, 1, ControlPing())
        sim.run()
        assert len(sink.packets) == 1
        packet = sink.packets[0]
        assert packet.deliver_time == pytest.approx(5.0)
        assert packet.latency == pytest.approx(5.0)
        assert packet.src == 0 and packet.dst == 1

    def test_unregistered_destination_drops(self, sim, network):
        network.unicast(0, 99, ControlPing())
        sim.run()
        assert network.stats.dropped == 1
        assert network.stats.sent == 1
        # Misrouted sends are counted separately from transport loss.
        assert network.stats.send_dropped == 1

    def test_unregistered_destination_emits_send_dropped(self, sim):
        trace = TraceLog()
        network = Network(sim, ConstantLatency(5.0), streams=RandomStreams(1),
                          trace=trace)
        network.unicast(0, 99, ControlPing())
        sim.run()
        [record] = trace.of_kind("send_dropped")
        assert record["src"] == 0
        assert record["dst"] == 99
        assert record["reason"] == "unregistered"

    def test_destination_departing_mid_flight_drops(self, sim, network):
        sink = Sink()
        network.register(1, sink)
        network.unicast(0, 1, ControlPing())
        sim.at(2.0, network.unregister, 1)
        sim.run()
        assert sink.packets == []
        assert network.stats.dropped == 1
        # An in-flight drop is ordinary loss, not a misrouted send.
        assert network.stats.send_dropped == 0

    def test_in_order_delivery_same_pair(self, sim, network):
        sink = Sink()
        network.register(1, sink)
        network.unicast(0, 1, ControlPing("first"))
        network.unicast(0, 1, ControlPing("second"))
        sim.run()
        assert [p.payload.note for p in sink.packets] == ["first", "second"]


class TestMulticast:
    def test_fan_out_excludes_sender(self, sim, network):
        sinks = {i: Sink() for i in range(4)}
        for node, sink in sinks.items():
            network.register(node, sink)
        scheduled = network.multicast(0, [0, 1, 2, 3], ControlPing())
        sim.run()
        assert scheduled == 3
        assert len(sinks[0].packets) == 0
        assert all(len(sinks[i].packets) == 1 for i in (1, 2, 3))

    def test_include_sender_loopback(self, sim, network):
        sink = Sink()
        network.register(0, sink)
        network.multicast(0, [0], ControlPing(), include_sender=True)
        sim.run()
        assert len(sink.packets) == 1

    def test_multicast_group_tag(self, sim, network):
        sink = Sink()
        network.register(1, sink)
        network.multicast(0, [1], ControlPing(), group="region")
        sim.run()
        assert sink.packets[0].multicast_group == "region"


class TestLossIntegration:
    def test_loss_model_drops_selected_receivers(self, sim):
        network = Network(sim, ConstantLatency(5.0),
                          loss=ReceiverSetLoss({2}), streams=RandomStreams(1))
        sinks = {i: Sink() for i in (1, 2)}
        for node, sink in sinks.items():
            network.register(node, sink)
        network.multicast(0, [1, 2], DataBlob())
        sim.run()
        assert len(sinks[1].packets) == 1
        assert len(sinks[2].packets) == 0
        assert network.stats.dropped == 1

    def test_control_survives_data_loss_model(self, sim):
        network = Network(sim, ConstantLatency(5.0),
                          loss=ReceiverSetLoss({1}), streams=RandomStreams(1))
        sink = Sink()
        network.register(1, sink)
        network.unicast(0, 1, ControlPing())
        sim.run()
        assert len(sink.packets) == 1


class TestStats:
    def test_counters_by_type_and_kind(self, sim, network):
        sink = Sink()
        network.register(1, sink)
        network.unicast(0, 1, ControlPing())
        network.unicast(0, 1, DataBlob())
        sim.run()
        stats = network.stats
        assert stats.sent == 2
        assert stats.delivered == 2
        assert stats.sent_by_type == {"ControlPing": 1, "DataBlob": 1}
        assert stats.control_messages() == 1
        assert stats.data_messages() == 1
        assert stats.bytes_sent == 64 + 1024

    def test_trace_emission(self, sim):
        trace = TraceLog()
        network = Network(sim, ConstantLatency(5.0), streams=RandomStreams(1),
                          trace=trace)
        sink = Sink()
        network.register(1, sink)
        network.unicast(0, 1, ControlPing())
        sim.run()
        assert trace.count("packet_sent") == 1
        assert trace.count("packet_delivered") == 1

    def test_rtt_helper(self, network):
        assert network.rtt(0, 1) == pytest.approx(10.0)
