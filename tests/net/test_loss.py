"""Unit tests for loss models."""

import random

import pytest

from repro.net.loss import (
    BernoulliLoss,
    BottleneckLoss,
    GilbertElliottLoss,
    NoLoss,
    ReceiverSetLoss,
    RegionCorrelatedLoss,
)
from repro.net.topology import chain


@pytest.fixture
def rng():
    return random.Random(42)


class TestNoLoss:
    def test_never_drops(self, rng):
        model = NoLoss()
        assert not any(model.is_lost(0, i, "data", rng) for i in range(100))


class TestBernoulliLoss:
    def test_zero_probability_never_drops(self, rng):
        model = BernoulliLoss(0.0)
        assert not any(model.is_lost(0, i, "data", rng) for i in range(100))

    def test_one_probability_always_drops_data(self, rng):
        model = BernoulliLoss(1.0)
        assert all(model.is_lost(0, i, "data", rng) for i in range(100))

    def test_control_is_reliable_by_default(self, rng):
        """The paper's §4 assumption: requests/repairs are not lost."""
        model = BernoulliLoss(1.0)
        assert not model.is_lost(0, 1, "control", rng)

    def test_kinds_override(self, rng):
        model = BernoulliLoss(1.0, kinds={"control"})
        assert model.is_lost(0, 1, "control", rng)
        assert not model.is_lost(0, 1, "data", rng)

    def test_empirical_rate(self, rng):
        model = BernoulliLoss(0.3)
        drops = sum(model.is_lost(0, i, "data", rng) for i in range(10_000))
        assert 0.27 < drops / 10_000 < 0.33

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)


class TestReceiverSetLoss:
    def test_only_listed_receivers_drop(self, rng):
        model = ReceiverSetLoss({3, 5})
        assert model.is_lost(0, 3, "data", rng)
        assert model.is_lost(0, 5, "data", rng)
        assert not model.is_lost(0, 4, "data", rng)

    def test_control_untouched(self, rng):
        model = ReceiverSetLoss({3})
        assert not model.is_lost(0, 3, "control", rng)


class TestRegionCorrelatedLoss:
    def test_whole_region_drops_together(self, rng):
        hierarchy = chain([3, 3])
        model = RegionCorrelatedLoss(hierarchy, region_loss=1.0)
        model.new_message()
        outcomes = [model.is_lost(0, node, "data", rng) for node in hierarchy.nodes]
        assert all(outcomes)

    def test_new_message_resets_outcomes(self, rng):
        hierarchy = chain([2, 2])
        model = RegionCorrelatedLoss(hierarchy, region_loss=0.5)
        results = set()
        for _ in range(50):
            model.new_message()
            results.add(model.is_lost(0, 2, "data", rng))
        assert results == {True, False}  # both outcomes occur across messages

    def test_outcome_is_cached_within_message(self, rng):
        hierarchy = chain([2, 2])
        model = RegionCorrelatedLoss(hierarchy, region_loss=0.5)
        for _ in range(20):
            model.new_message()
            first = model.is_lost(0, 2, "data", rng)
            second = model.is_lost(0, 3, "data", rng)
            assert first == second  # same region, same message

    def test_receiver_loss_is_independent(self, rng):
        hierarchy = chain([2, 50])
        model = RegionCorrelatedLoss(hierarchy, receiver_loss=0.5)
        model.new_message()
        outcomes = [model.is_lost(0, node, "data", rng)
                    for node in hierarchy.regions[1].members]
        assert 5 < sum(outcomes) < 45


class TestGilbertElliott:
    def test_good_state_rarely_drops(self, rng):
        model = GilbertElliottLoss(p_good_to_bad=0.0, p_good=0.0)
        assert not any(model.is_lost(0, 1, "data", rng) for _ in range(100))

    def test_bursty_losses_cluster(self, rng):
        model = GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.2, p_good=0.0, p_bad=1.0
        )
        outcomes = [model.is_lost(0, 1, "data", rng) for _ in range(5_000)]
        losses = sum(outcomes)
        assert losses > 0
        # Burstiness: P(loss | previous loss) should far exceed the
        # marginal loss rate.
        follow = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        conditional = follow / max(1, losses)
        marginal = losses / len(outcomes)
        assert conditional > marginal * 2

    def test_deterministic_under_a_fixed_seed(self):
        """Two models fed equally-seeded RNGs produce the identical
        drop sequence — the property scenario digests/caches rely on."""
        def sequence(seed):
            model = GilbertElliottLoss(
                p_good_to_bad=0.1, p_bad_to_good=0.3, p_good=0.05, p_bad=0.9
            )
            stream = random.Random(seed)
            return [model.is_lost(0, 1, "data", stream) for _ in range(300)]

        assert sequence(1234) == sequence(1234)
        assert sequence(1234) != sequence(4321)

    def test_links_have_independent_state(self, rng):
        model = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0,
                                   p_good=0.0, p_bad=1.0)
        assert model.is_lost(0, 1, "data", rng)  # link (0,1) now bad
        # A different link starts in its own good state but flips
        # immediately too (p_good_to_bad=1), so both drop; verify the
        # state dict tracks them separately.
        model.is_lost(0, 2, "data", rng)
        assert ((0, 1) in model._bad_state) and ((0, 2) in model._bad_state)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


class TestBottleneckLoss:
    def test_requires_clock_binding(self, rng):
        model = BottleneckLoss(capacity=100.0)
        with pytest.raises(RuntimeError, match="bind_clock"):
            model.is_lost(0, 1, "data", rng)

    def test_control_traffic_is_reliable(self, rng):
        model = BottleneckLoss(capacity=1.0)  # hopelessly overloaded
        assert not model.is_lost(0, 1, "control", rng)

    def test_under_capacity_never_drops(self, rng):
        clock = FakeClock()
        model = BottleneckLoss(capacity=100.0, window_ms=1_000.0)
        model.bind_clock(clock)
        # 50 attempts over a second: rate 50/s, half the capacity.
        drops = 0
        for index in range(50):
            clock.now = index * 20.0
            drops += model.is_lost(0, 1, "data", rng)
        assert drops == 0
        assert model.excess_ratio() == 0.0

    def test_overload_drops_the_excess_ratio(self, rng):
        clock = FakeClock()
        model = BottleneckLoss(capacity=100.0, window_ms=1_000.0)
        model.bind_clock(clock)
        # 400 attempts in one window: the rate ramps to 400/s, 4x
        # capacity, where the drop probability is 1 - 1/4 = 0.75.
        drops = 0
        for index in range(400):
            clock.now = index * 2.5
            drops += model.is_lost(0, 1, "data", rng)
        assert model.excess_ratio() == pytest.approx(0.75)
        # Averaged over the ramp the drop rate sits between the clean
        # start and the saturated end.
        assert 0.2 < drops / 400 < 0.75

    def test_window_slides_and_load_decays(self, rng):
        clock = FakeClock()
        model = BottleneckLoss(capacity=10.0, window_ms=100.0)
        model.bind_clock(clock)
        for index in range(50):
            clock.now = index * 1.0
            model.is_lost(0, 1, "data", rng)
        assert model.excess_ratio() > 0.0
        # A quiet period longer than the window forgets the burst.
        clock.now = 500.0
        model.is_lost(0, 1, "data", rng)
        assert model.current_rate() <= 10.0 * 2  # just this attempt
        assert model.excess_ratio() == 0.0

    def test_base_loss_floor_applies_below_capacity(self):
        clock = FakeClock()
        model = BottleneckLoss(capacity=10_000.0, window_ms=1_000.0,
                               base_loss=0.3)
        model.bind_clock(clock)
        stream = random.Random(9)
        drops = sum(
            model.is_lost(0, 1, "data", stream) for _ in range(2_000)
        )
        assert 0.25 < drops / 2_000 < 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            BottleneckLoss(capacity=0.0)
        with pytest.raises(ValueError):
            BottleneckLoss(capacity=10.0, window_ms=0.0)
        with pytest.raises(ValueError):
            BottleneckLoss(capacity=10.0, base_loss=1.5)
