"""Unit tests for regions and the error-recovery hierarchy."""

import pytest

from repro.net.topology import (
    Hierarchy,
    TopologyError,
    balanced_tree,
    chain,
    single_region,
    star,
)


class TestConstruction:
    def test_single_region(self):
        hierarchy = single_region(5)
        assert hierarchy.size == 5
        assert hierarchy.regions[0].size == 5
        assert hierarchy.regions[0].parent_id is None

    def test_chain_parent_links(self):
        hierarchy = chain([3, 4, 5])
        assert hierarchy.regions[0].parent_id is None
        assert hierarchy.regions[1].parent_id == 0
        assert hierarchy.regions[2].parent_id == 1
        assert hierarchy.size == 12

    def test_star_layout(self):
        hierarchy = star(2, [3, 3, 3])
        assert hierarchy.regions[0].parent_id is None
        for leaf in (1, 2, 3):
            assert hierarchy.regions[leaf].parent_id == 0
        assert hierarchy.size == 11

    def test_balanced_tree_region_count(self):
        hierarchy = balanced_tree(depth=2, fanout=2, region_size=1)
        assert len(hierarchy.regions) == 7  # 1 + 2 + 4

    def test_duplicate_region_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_region(0)
        with pytest.raises(TopologyError):
            hierarchy.add_region(0)

    def test_missing_parent_rejected(self):
        hierarchy = Hierarchy()
        with pytest.raises(TopologyError):
            hierarchy.add_region(1, parent_id=99)

    def test_duplicate_node_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_region(0)
        hierarchy.add_member(0, node_id=7)
        with pytest.raises(TopologyError):
            hierarchy.add_member(0, node_id=7)

    def test_auto_node_ids_are_dense(self):
        hierarchy = chain([2, 2])
        assert hierarchy.nodes == [0, 1, 2, 3]


class TestQueries:
    @pytest.fixture
    def three_regions(self):
        return chain([3, 4, 5])

    def test_region_of(self, three_regions):
        assert three_regions.region_id_of(0) == 0
        assert three_regions.region_id_of(3) == 1
        assert three_regions.region_id_of(11) == 2

    def test_unknown_node_raises(self, three_regions):
        with pytest.raises(TopologyError):
            three_regions.region_of(99)

    def test_neighbors_excludes_self(self, three_regions):
        neighbors = three_regions.neighbors(3)
        assert 3 not in neighbors
        assert set(neighbors) == {4, 5, 6}

    def test_parent_members(self, three_regions):
        assert set(three_regions.parent_members(3)) == {0, 1, 2}
        assert three_regions.parent_members(0) == []  # root has no parent

    def test_parent_region_of_root_is_none(self, three_regions):
        assert three_regions.parent_region_of(1) is None

    def test_same_region(self, three_regions):
        assert three_regions.same_region(3, 4)
        assert not three_regions.same_region(0, 3)

    def test_region_distance_chain(self, three_regions):
        assert three_regions.region_distance(0, 1) == 0
        assert three_regions.region_distance(0, 3) == 1
        assert three_regions.region_distance(0, 7) == 2
        assert three_regions.region_distance(7, 0) == 2

    def test_region_distance_siblings(self):
        hierarchy = star(1, [1, 1])
        left, right = hierarchy.regions[1].members[0], hierarchy.regions[2].members[0]
        assert hierarchy.region_distance(left, right) == 2

    def test_contains(self, three_regions):
        assert three_regions.contains(0)
        assert not three_regions.contains(99)


class TestMutation:
    def test_remove_member(self):
        hierarchy = single_region(3)
        hierarchy.remove_member(1)
        assert hierarchy.size == 2
        assert not hierarchy.contains(1)
        assert 1 not in hierarchy.regions[0].members

    def test_remove_unknown_raises(self):
        hierarchy = single_region(3)
        with pytest.raises(TopologyError):
            hierarchy.remove_member(99)

    def test_add_member_after_removal_gets_fresh_id(self):
        hierarchy = single_region(3)
        hierarchy.remove_member(2)
        new = hierarchy.add_member(0)
        assert new == 3  # ids are never reused

    def test_validate_passes_on_builders(self):
        for hierarchy in (single_region(4), chain([2, 2]), star(1, [2]),
                          balanced_tree(1, 2, 2)):
            hierarchy.validate()

    def test_validate_detects_cycle(self):
        hierarchy = chain([1, 1])
        hierarchy.regions[0].parent_id = 1  # corrupt: 0 <-> 1
        with pytest.raises(TopologyError):
            hierarchy.validate()

    def test_validate_detects_double_placement(self):
        hierarchy = chain([2, 2])
        hierarchy.regions[1].members.append(0)  # node 0 also in region 1
        with pytest.raises(TopologyError):
            hierarchy.validate()
