"""Unit tests for IP-multicast outcome models."""

import random

import pytest

from repro.net.ipmulticast import (
    BernoulliOutcome,
    FixedHolderCount,
    FixedHolders,
    PerfectOutcome,
    RegionCorrelatedOutcome,
)
from repro.net.topology import chain


@pytest.fixture
def rng():
    return random.Random(7)


GROUP = list(range(20))


class TestPerfectOutcome:
    def test_everyone_receives(self, rng):
        assert PerfectOutcome().holders(1, GROUP, rng) == set(GROUP)


class TestFixedHolders:
    def test_intersects_with_group(self, rng):
        outcome = FixedHolders({1, 2, 99})
        assert outcome.holders(1, GROUP, rng) == {1, 2}

    def test_same_for_every_seq(self, rng):
        outcome = FixedHolders({3})
        assert outcome.holders(1, GROUP, rng) == outcome.holders(2, GROUP, rng)


class TestFixedHolderCount:
    def test_exactly_k_holders(self, rng):
        outcome = FixedHolderCount(5)
        holders = outcome.holders(1, GROUP, rng)
        assert len(holders) == 5
        assert holders <= set(GROUP)

    def test_k_larger_than_group_returns_all(self, rng):
        outcome = FixedHolderCount(100)
        assert outcome.holders(1, GROUP, rng) == set(GROUP)

    def test_different_messages_get_different_subsets(self, rng):
        outcome = FixedHolderCount(5)
        draws = {frozenset(outcome.holders(seq, GROUP, rng)) for seq in range(20)}
        assert len(draws) > 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            FixedHolderCount(-1)


class TestBernoulliOutcome:
    def test_zero_loss_is_perfect(self, rng):
        assert BernoulliOutcome(0.0).holders(1, GROUP, rng) == set(GROUP)

    def test_full_loss_reaches_nobody(self, rng):
        assert BernoulliOutcome(1.0).holders(1, GROUP, rng) == set()

    def test_empirical_rate(self, rng):
        outcome = BernoulliOutcome(0.25)
        group = list(range(2000))
        holders = outcome.holders(1, group, rng)
        assert 0.70 < len(holders) / len(group) < 0.80

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            BernoulliOutcome(-0.1)


class TestRegionCorrelatedOutcome:
    def test_regional_loss_drops_whole_regions(self, rng):
        hierarchy = chain([4, 4, 4])
        outcome = RegionCorrelatedOutcome(hierarchy, region_loss=1.0, sender=0)
        holders = outcome.holders(1, hierarchy.nodes, rng)
        # Sender's region is protected; every other region is lost.
        assert holders == set(hierarchy.regions[0].members)

    def test_sender_region_never_suffers_regional_loss(self, rng):
        hierarchy = chain([3, 3])
        outcome = RegionCorrelatedOutcome(hierarchy, region_loss=1.0, sender=0)
        for seq in range(10):
            holders = outcome.holders(seq, hierarchy.nodes, rng)
            assert set(hierarchy.regions[0].members) <= holders

    def test_sender_always_holds(self, rng):
        hierarchy = chain([3, 3])
        outcome = RegionCorrelatedOutcome(hierarchy, receiver_loss=1.0, sender=0)
        holders = outcome.holders(1, hierarchy.nodes, rng)
        assert holders == {0}

    def test_receiver_loss_within_surviving_region(self, rng):
        hierarchy = chain([100, 2])
        outcome = RegionCorrelatedOutcome(hierarchy, receiver_loss=0.5, sender=0)
        holders = outcome.holders(1, hierarchy.regions[0].members, rng)
        assert 20 < len(holders) < 80
