"""Unit tests for latency models."""

import pytest

from repro.net.latency import (
    ConstantLatency,
    HierarchicalLatency,
    JitteredLatency,
    PairwiseLatency,
)
from repro.net.topology import chain, single_region
from repro.sim import RandomStreams


class TestConstantLatency:
    def test_one_way_and_rtt(self):
        model = ConstantLatency(5.0)
        assert model.one_way(0, 1) == 5.0
        assert model.rtt(0, 1) == 10.0  # paper's 10 ms intra-region RTT

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestHierarchicalLatency:
    def test_intra_region_default_matches_paper(self):
        hierarchy = single_region(4)
        model = HierarchicalLatency(hierarchy)
        assert model.rtt(0, 1) == pytest.approx(10.0)

    def test_inter_region_scales_with_hops(self):
        hierarchy = chain([2, 2, 2])
        model = HierarchicalLatency(hierarchy, intra_one_way=5.0, inter_one_way=40.0)
        assert model.one_way(0, 2) == pytest.approx(40.0)   # one hop
        assert model.one_way(0, 4) == pytest.approx(80.0)   # two hops
        assert model.one_way(4, 0) == pytest.approx(80.0)   # symmetric

    def test_inter_region_exceeds_intra(self):
        """§3.2: 'inter-region latency can be much larger than intra'."""
        hierarchy = chain([2, 2])
        model = HierarchicalLatency(hierarchy)
        assert model.one_way(0, 2) > model.one_way(0, 1)


class TestJitteredLatency:
    def test_jitter_stays_in_band(self):
        streams = RandomStreams(3)
        model = JitteredLatency(ConstantLatency(10.0), jitter=0.2,
                                rng=streams.stream("jitter"))
        values = [model.one_way(0, 1) for _ in range(200)]
        assert all(8.0 <= value <= 12.0 for value in values)
        assert len(set(values)) > 1  # actually random

    def test_rtt_reports_base_estimate(self):
        streams = RandomStreams(3)
        model = JitteredLatency(ConstantLatency(10.0), jitter=0.5,
                                rng=streams.stream("jitter"))
        assert model.rtt(0, 1) == pytest.approx(20.0)

    def test_invalid_jitter_rejected(self):
        streams = RandomStreams(3)
        with pytest.raises(ValueError):
            JitteredLatency(ConstantLatency(10.0), jitter=1.0,
                            rng=streams.stream("jitter"))


class TestPairwiseLatency:
    def test_default_applies_to_unknown_pairs(self):
        model = PairwiseLatency(default_one_way=5.0)
        assert model.one_way(1, 2) == 5.0

    def test_set_pair_symmetric(self):
        model = PairwiseLatency()
        model.set_pair(1, 2, 50.0)
        assert model.one_way(1, 2) == 50.0
        assert model.one_way(2, 1) == 50.0

    def test_set_pair_asymmetric(self):
        model = PairwiseLatency()
        model.set_pair(1, 2, 50.0, symmetric=False)
        assert model.one_way(1, 2) == 50.0
        assert model.one_way(2, 1) == model.default_one_way
