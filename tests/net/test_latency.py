"""Unit tests for latency models."""

import pytest

from repro.net.latency import (
    ConstantLatency,
    HierarchicalLatency,
    JitteredLatency,
    PairwiseLatency,
)
from repro.net.topology import chain, single_region
from repro.sim import RandomStreams


class TestConstantLatency:
    def test_one_way_and_rtt(self):
        model = ConstantLatency(5.0)
        assert model.one_way(0, 1) == 5.0
        assert model.rtt(0, 1) == 10.0  # paper's 10 ms intra-region RTT

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestHierarchicalLatency:
    def test_intra_region_default_matches_paper(self):
        hierarchy = single_region(4)
        model = HierarchicalLatency(hierarchy)
        assert model.rtt(0, 1) == pytest.approx(10.0)

    def test_inter_region_scales_with_hops(self):
        hierarchy = chain([2, 2, 2])
        model = HierarchicalLatency(hierarchy, intra_one_way=5.0, inter_one_way=40.0)
        assert model.one_way(0, 2) == pytest.approx(40.0)   # one hop
        assert model.one_way(0, 4) == pytest.approx(80.0)   # two hops
        assert model.one_way(4, 0) == pytest.approx(80.0)   # symmetric

    def test_inter_region_exceeds_intra(self):
        """§3.2: 'inter-region latency can be much larger than intra'."""
        hierarchy = chain([2, 2])
        model = HierarchicalLatency(hierarchy)
        assert model.one_way(0, 2) > model.one_way(0, 1)


class TestHierarchicalLatencyAsymmetric:
    def test_symmetric_defaults_use_the_original_formula(self):
        """Both directional fields None: byte-identical to the historical
        ``inter_one_way * hops`` product (golden digests depend on it)."""
        hierarchy = chain([2, 2, 2])
        plain = HierarchicalLatency(hierarchy, inter_one_way=40.0)
        explicit = HierarchicalLatency(hierarchy, inter_one_way=40.0,
                                       inter_up_one_way=None,
                                       inter_down_one_way=None)
        assert not plain.asymmetric
        assert not explicit.asymmetric
        for src, dst in ((0, 2), (0, 4), (4, 0), (2, 3)):
            assert explicit.one_way(src, dst) == plain.one_way(src, dst)

    def test_up_and_down_hops_priced_separately(self):
        # chain([2, 2]): nodes 2,3 sit one region *below* nodes 0,1.
        hierarchy = chain([2, 2])
        model = HierarchicalLatency(hierarchy, inter_up_one_way=10.0,
                                    inter_down_one_way=30.0)
        assert model.asymmetric
        assert model.one_way(2, 0) == pytest.approx(10.0)   # up
        assert model.one_way(0, 2) == pytest.approx(30.0)   # down
        assert model.rtt(0, 2) == pytest.approx(40.0)       # up + down

    def test_multi_hop_split(self):
        hierarchy = chain([2, 2, 2])
        model = HierarchicalLatency(hierarchy, inter_up_one_way=10.0,
                                    inter_down_one_way=30.0)
        assert model.one_way(4, 0) == pytest.approx(20.0)   # two up hops
        assert model.one_way(0, 4) == pytest.approx(60.0)   # two down hops

    def test_sibling_regions_cross_the_common_ancestor(self):
        # star: regions 1 and 2 are siblings under 0 -> one up, one down.
        from repro.net.topology import star
        hierarchy = star(2, [2, 2])
        model = HierarchicalLatency(hierarchy, inter_up_one_way=10.0,
                                    inter_down_one_way=30.0)
        assert model.one_way(2, 4) == pytest.approx(40.0)
        assert model.one_way(4, 2) == pytest.approx(40.0)

    def test_single_direction_falls_back_to_symmetric(self):
        hierarchy = chain([2, 2])
        model = HierarchicalLatency(hierarchy, inter_one_way=40.0,
                                    inter_up_one_way=15.0)
        assert model.asymmetric
        assert model.one_way(2, 0) == pytest.approx(15.0)   # explicit up
        assert model.one_way(0, 2) == pytest.approx(40.0)   # fallback down

    def test_intra_region_ignores_asymmetry(self):
        hierarchy = chain([2, 2])
        model = HierarchicalLatency(hierarchy, intra_one_way=5.0,
                                    inter_up_one_way=10.0,
                                    inter_down_one_way=30.0)
        assert model.one_way(0, 1) == 5.0

    def test_negative_directional_delay_rejected(self):
        hierarchy = chain([2, 2])
        with pytest.raises(ValueError):
            HierarchicalLatency(hierarchy, inter_up_one_way=-1.0)
        with pytest.raises(ValueError):
            HierarchicalLatency(hierarchy, inter_down_one_way=-1.0)


class TestJitteredLatency:
    def test_jitter_stays_in_band(self):
        streams = RandomStreams(3)
        model = JitteredLatency(ConstantLatency(10.0), jitter=0.2,
                                rng=streams.stream("jitter"))
        values = [model.one_way(0, 1) for _ in range(200)]
        assert all(8.0 <= value <= 12.0 for value in values)
        assert len(set(values)) > 1  # actually random

    def test_rtt_reports_base_estimate(self):
        streams = RandomStreams(3)
        model = JitteredLatency(ConstantLatency(10.0), jitter=0.5,
                                rng=streams.stream("jitter"))
        assert model.rtt(0, 1) == pytest.approx(20.0)

    def test_invalid_jitter_rejected(self):
        streams = RandomStreams(3)
        with pytest.raises(ValueError):
            JitteredLatency(ConstantLatency(10.0), jitter=1.0,
                            rng=streams.stream("jitter"))


class TestPairwiseLatency:
    def test_default_applies_to_unknown_pairs(self):
        model = PairwiseLatency(default_one_way=5.0)
        assert model.one_way(1, 2) == 5.0

    def test_set_pair_symmetric(self):
        model = PairwiseLatency()
        model.set_pair(1, 2, 50.0)
        assert model.one_way(1, 2) == 50.0
        assert model.one_way(2, 1) == 50.0

    def test_set_pair_asymmetric(self):
        model = PairwiseLatency()
        model.set_pair(1, 2, 50.0, symmetric=False)
        assert model.one_way(1, 2) == 50.0
        assert model.one_way(2, 1) == model.default_one_way
