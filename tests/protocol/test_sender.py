"""Unit tests for the RRMP sender."""


from repro.net.ipmulticast import FixedHolderCount, FixedHolders, PerfectOutcome
from repro.net.latency import ConstantLatency
from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation


def build(n=10, seed=0, outcome=None, session_interval=None):
    return RrmpSimulation(
        single_region(n),
        config=RrmpConfig(session_interval=session_interval),
        seed=seed,
        latency=ConstantLatency(5.0),
        outcome=outcome if outcome is not None else PerfectOutcome(),
    )


class TestMulticast:
    def test_sequence_numbers_are_dense_from_one(self):
        simulation = build()
        first = simulation.sender.multicast()
        second = simulation.sender.multicast()
        assert (first.seq, second.seq) == (1, 2)
        assert simulation.sender.max_seq == 2

    def test_sender_always_holds_its_own_message(self):
        simulation = build(outcome=FixedHolders(set()))
        simulation.sender.multicast()
        assert simulation.members[simulation.sender.node_id].has_received(1)

    def test_perfect_outcome_reaches_everyone(self):
        simulation = build()
        simulation.sender.multicast()
        simulation.run(duration=50.0)
        assert simulation.received_count(1) == 10

    def test_fixed_holder_count_outcome(self):
        simulation = build(outcome=FixedHolderCount(3), seed=5)
        simulation.sender.multicast()
        simulation.run(duration=50.0)
        # 3 holders drawn from the group; the sender adds itself if
        # not drawn, so 3 or 4 members hold the message.
        assert simulation.received_count(1) in (3, 4)

    def test_trace_message_sent(self):
        simulation = build()
        simulation.sender.multicast()
        record = simulation.trace.first("message_sent")
        assert record["seq"] == 1
        assert record["group"] == 10

    def test_burst_helper(self):
        simulation = build()
        sent = simulation.sender.multicast_burst(5)
        assert [d.seq for d in sent] == [1, 2, 3, 4, 5]


class TestSessionMessages:
    def test_sessions_emitted_periodically(self):
        simulation = build(session_interval=50.0)
        simulation.sender.multicast()
        simulation.run(duration=240.0)
        sessions = simulation.network.stats.sent_by_type.get("SessionMessage", 0)
        # 4 ticks x 9 receivers.
        assert sessions == 36

    def test_no_sessions_before_first_message(self):
        simulation = build(session_interval=50.0)
        simulation.run(duration=500.0)
        assert simulation.network.stats.sent_by_type.get("SessionMessage", 0) == 0

    def test_stop_halts_sessions(self):
        simulation = build(session_interval=50.0)
        simulation.sender.multicast()
        simulation.run(duration=120.0)
        simulation.sender.stop()
        before = simulation.network.stats.sent_by_type.get("SessionMessage", 0)
        simulation.run(duration=500.0)
        after = simulation.network.stats.sent_by_type.get("SessionMessage", 0)
        assert before == after

    def test_drain_stops_sessions_automatically(self):
        simulation = build(session_interval=50.0)
        simulation.sender.multicast()
        final = simulation.drain()
        assert final < float("inf")
