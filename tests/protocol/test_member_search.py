"""Member state-machine tests: the search for bufferers (§3.3),
including a deterministic reproduction of the paper's Figure 5 walk."""

import pytest

from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage, SearchRequest
from repro.protocol.rrmp import RrmpSimulation
from repro.workloads.scenarios import run_search


class TestSearchBasics:
    def test_request_at_bufferer_serves_instantly(self):
        """Footnote 5: search time is 0 if the request hits a bufferer."""
        found = False
        for seed in range(30):
            result = run_search(10, bufferers=9, seed=seed)
            assert result.search_time is not None
            if result.search_time == 0.0:
                assert result.served_via == "buffer"
                found = True
                break
        assert found, "with 9/10 bufferers some run must hit one directly"

    def test_search_finds_single_bufferer(self):
        result = run_search(20, bufferers=1, seed=3)
        assert result.search_time is not None
        assert result.served_via in ("search", "buffer")

    def test_requester_eventually_receives_repair(self):
        result = run_search(20, bufferers=2, seed=5)
        member = result.simulation.members[result.requester]
        assert member.has_received(1)

    def test_have_reply_announcements_are_bounded(self):
        result = run_search(30, bufferers=3, seed=2)
        have_replies = result.simulation.network.stats.sent_by_type.get("HaveReply", 0)
        # Each announcement is one regional multicast = n-1 unicasts.
        # Distinct bufferers contacted concurrently may each announce
        # once (a benign race), but announcements never exceed the
        # bufferer count and are never re-multicast per straggler.
        assert have_replies % 29 == 0
        assert have_replies <= 3 * 29

    def test_search_messages_stop_after_serve(self):
        result = run_search(30, bufferers=3, seed=2, horizon=5_000.0)
        serve_time = result.served_at
        assert serve_time is not None
        late = [
            record for record in result.simulation.trace.of_kind("search_forwarded")
            if record.time > serve_time + 50.0
        ]
        assert late == []

    def test_more_bufferers_search_faster_on_average(self):
        def mean_time(b):
            times = []
            for seed in range(25):
                result = run_search(50, b, seed=seed)
                times.append(result.search_time)
            return sum(times) / len(times)

        assert mean_time(10) < mean_time(1)


class TestFigure5Walkthrough:
    """Reproduce the paper's Figure 5: 4 members, 5 ms pairwise latency,
    p1 gets the remote request at t=0, p4 is the only bufferer.

    The paper's walk: p1 -> p2 (5 ms), p2 -> p3 (10 ms), p1 times out at
    10 ms and asks p4, which receives the request at 15 ms, serves the
    remote member and multicasts "I have the message" at 15 ms.
    """

    def build(self):
        hierarchy = chain([4, 1])
        config = RrmpConfig(session_interval=None)
        latency = HierarchicalLatency(hierarchy, intra_one_way=5.0,
                                      inter_one_way=500.0)
        simulation = RrmpSimulation(hierarchy, config=config, seed=0,
                                    latency=latency)
        members = hierarchy.regions[0].members  # p1..p4 = nodes 0..3
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        for node in members[:3]:
            simulation.members[node].force_received(data)  # discarded
        simulation.members[members[3]].install_long_term(data)  # p4 buffers
        return simulation, members, data

    def deliver_request(self, simulation, target):
        remote = simulation.hierarchy.regions[1].members[0]
        request = SearchRequest(seq=1, waiters=(remote,), forwarder=remote)
        simulation.members[target].on_packet(
            type("FakePacket", (), {"payload": request})()
        )

    def test_walkthrough_terminates_at_bufferer(self):
        simulation, members, _data = self.build()
        p1, p4 = members[0], members[3]
        # Deliver the remote search request directly to p1 at t=0.
        self.deliver_request(simulation, p1)
        simulation.run(duration=200.0)
        served = simulation.trace.first("search_served")
        assert served is not None
        assert served["node"] == p4
        # Timing: each hop is 5 ms and each timeout is one 10 ms RTT,
        # so the serve lands on a 5 ms grid within a few rounds.
        assert served.time == pytest.approx(served.time // 5 * 5.0)
        assert served.time <= 60.0

    def test_have_reply_ends_all_searches(self):
        simulation, members, _data = self.build()
        self.deliver_request(simulation, members[0])
        simulation.run(duration=500.0)
        for node in members[:3]:
            assert simulation.members[node].search.active_seqs() == []

    def test_searchers_join_over_time(self):
        """'As time goes by, more and more members will join the search.'"""
        simulation, members, _data = self.build()
        self.deliver_request(simulation, members[0])
        simulation.run(duration=500.0)
        joined = {record["node"] for record in simulation.trace.of_kind("search_joined")}
        assert members[0] in joined
        assert len(joined) >= 2


class TestOwnerHints:
    def test_redirect_after_have_reply(self):
        """In-flight stragglers are redirected, not re-seeded (§3.3)."""
        result = run_search(40, bufferers=2, seed=7, horizon=3_000.0)
        simulation = result.simulation
        # Inject a second remote request after the search completed:
        requester = result.requester
        hierarchy = simulation.hierarchy
        target = [n for n in hierarchy.regions[0].members
                  if not simulation.members[n].is_buffering(1)][0]
        from repro.protocol.messages import RemoteRequest
        simulation.members[target].on_packet(
            type("FakePacket", (), {
                "payload": RemoteRequest(seq=1, requester=requester)
            })()
        )
        before = simulation.trace.count("search_forwarded")
        simulation.run(duration=500.0)
        after = simulation.trace.count("search_forwarded")
        # The hint short-circuits: no new search rounds needed.
        assert after == before
        assert simulation.trace.count("search_redirected") >= 1

    def test_redirect_hop_limit_breaks_stale_chains(self):
        result = run_search(10, bufferers=1, seed=1)
        simulation = result.simulation
        member = simulation.members[simulation.hierarchy.regions[0].members[0]]
        # Poison the hint to point at a member that has discarded.
        victim = simulation.hierarchy.regions[0].members[1]
        member._search_owner_hint[1] = victim
        simulation.members[victim]._search_owner_hint[1] = member.node_id
        request = SearchRequest(seq=1, waiters=(99,), forwarder=99,
                                hops=member._MAX_REDIRECT_HOPS)
        member.on_packet(type("FakePacket", (), {"payload": request})())
        # At the hop limit the member must fall back to searching.
        assert member.search.is_searching(1) or member.is_buffering(1)
