"""End-to-end integration tests of the full RRMP stack."""


from repro.core.policies import FixedTimePolicy
from repro.net.ipmulticast import BernoulliOutcome, RegionCorrelatedOutcome
from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain, single_region, star
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation


class TestStreamDelivery:
    def test_lossy_stream_fully_delivered(self):
        simulation = RrmpSimulation(
            single_region(30),
            config=RrmpConfig(session_interval=25.0),
            seed=11,
            outcome=BernoulliOutcome(0.2),
        )
        for _ in range(10):
            simulation.sender.multicast()
        simulation.run(duration=3_000.0)
        for seq in range(1, 11):
            assert simulation.all_received(seq), f"message {seq} missing somewhere"

    def test_regional_loss_stream_recovers_over_wan(self):
        hierarchy = chain([8, 8, 8])
        simulation = RrmpSimulation(
            hierarchy,
            config=RrmpConfig(session_interval=25.0),
            seed=13,
            latency=HierarchicalLatency(hierarchy, inter_one_way=40.0),
            outcome=RegionCorrelatedOutcome(hierarchy, region_loss=0.4, sender=0),
        )
        for _ in range(5):
            simulation.sender.multicast()
        simulation.run(duration=10_000.0)
        for seq in range(1, 6):
            assert simulation.all_received(seq)

    def test_star_topology_recovers(self):
        hierarchy = star(5, [5, 5, 5])
        simulation = RrmpSimulation(
            hierarchy,
            config=RrmpConfig(session_interval=25.0),
            seed=17,
            latency=HierarchicalLatency(hierarchy),
            outcome=RegionCorrelatedOutcome(hierarchy, region_loss=0.5, sender=0),
        )
        for _ in range(3):
            simulation.sender.multicast()
        simulation.run(duration=10_000.0)
        for seq in range(1, 4):
            assert simulation.all_received(seq)


class TestBufferLifecycle:
    def test_expected_long_term_population(self):
        """Across many messages the long-term census per message ≈ C."""
        simulation = RrmpSimulation(
            single_region(50),
            config=RrmpConfig(session_interval=25.0, long_term_c=5.0),
            seed=19,
        )
        messages = 20
        for _ in range(messages):
            simulation.sender.multicast()
        simulation.run(duration=3_000.0)
        counts = [simulation.buffering_count(seq) for seq in range(1, messages + 1)]
        average = sum(counts) / len(counts)
        assert 3.0 < average < 7.5

    def test_long_term_load_is_spread_across_members(self):
        """Conclusion claim: buffering load is balanced, not hot-spotted."""
        simulation = RrmpSimulation(
            single_region(40),
            config=RrmpConfig(session_interval=25.0, long_term_c=8.0),
            seed=23,
        )
        for _ in range(30):
            simulation.sender.multicast()
        simulation.run(duration=5_000.0)
        per_node = simulation.occupancy_by_node()
        total = sum(per_node.values())
        assert total > 0
        peak = max(per_node.values())
        # A repair server would hold all 30; spread keeps peaks small.
        assert peak < 30 * 0.6

    def test_ttl_drains_all_buffers_eventually(self):
        simulation = RrmpSimulation(
            single_region(20),
            config=RrmpConfig(session_interval=25.0, long_term_c=4.0,
                              long_term_ttl=500.0),
            seed=29,
        )
        for _ in range(5):
            simulation.sender.multicast()
        simulation.run(duration=10_000.0)
        assert simulation.buffer_occupancy() == 0


class TestPolicyFactorySwap:
    def test_custom_policy_factory_is_used(self):
        simulation = RrmpSimulation(
            single_region(10),
            config=RrmpConfig(session_interval=None),
            seed=1,
            policy_factory=lambda _node: FixedTimePolicy(100.0),
        )
        assert isinstance(simulation.members[0].policy, FixedTimePolicy)

    def test_default_factory_builds_two_phase(self):
        from repro.core.manager import TwoPhaseBufferPolicy
        simulation = RrmpSimulation(single_region(5))
        assert isinstance(simulation.members[0].policy, TwoPhaseBufferPolicy)


class TestMembershipChanges:
    def test_graceful_leave_hands_off_long_term_buffers(self):
        simulation = RrmpSimulation(
            single_region(10),
            config=RrmpConfig(session_interval=None, long_term_c=10.0),
            seed=31,
        )
        simulation.sender.multicast()
        simulation.run(duration=100.0)  # everyone long-term-buffers (P=1)
        leaver = simulation.members[5]
        assert leaver.is_buffering(1)
        leaver.leave()
        simulation.run(duration=100.0)
        assert not leaver.alive
        assert simulation.hierarchy.size == 9
        assert simulation.trace.count("handoff_sent") == 1
        # The copy moved somewhere rather than vanishing.
        assert simulation.buffering_count(1) == 9

    def test_crash_loses_buffered_state(self):
        simulation = RrmpSimulation(
            single_region(10),
            config=RrmpConfig(session_interval=None, long_term_c=10.0),
            seed=31,
        )
        simulation.sender.multicast()
        simulation.run(duration=100.0)
        simulation.members[5].crash()
        simulation.run(duration=100.0)
        assert simulation.trace.count("handoff_sent") == 0
        # The crashed member's copy is simply gone: the nine survivors
        # hold nine copies, where a graceful leave would have moved the
        # tenth copy onto one of them.
        assert simulation.buffering_count(1) == 9
        assert sum(simulation.occupancy_by_node().values()) == 9

    def test_join_mid_session_recovers_history_via_sessions(self):
        simulation = RrmpSimulation(
            single_region(10),
            config=RrmpConfig(session_interval=25.0),
            seed=37,
        )
        simulation.sender.multicast()
        simulation.run(duration=100.0)
        newcomer = simulation.add_member(0)
        simulation.run(duration=2_000.0)
        assert newcomer.has_received(1)

    def test_leave_then_messages_still_deliver(self):
        simulation = RrmpSimulation(
            single_region(10),
            config=RrmpConfig(session_interval=25.0),
            seed=41,
            outcome=BernoulliOutcome(0.3),
        )
        simulation.sender.multicast()
        simulation.run(duration=200.0)
        simulation.members[7].leave()
        simulation.sender.multicast()
        simulation.run(duration=3_000.0)
        assert simulation.all_received(2)


class TestTrafficAccounting:
    def test_control_and_data_split(self):
        simulation = RrmpSimulation(
            single_region(20),
            config=RrmpConfig(session_interval=25.0),
            seed=43,
            outcome=BernoulliOutcome(0.3),
        )
        simulation.sender.multicast()
        simulation.run(duration=2_000.0)
        assert simulation.data_message_count() > 0
        assert simulation.control_message_count() > 0
        stats = simulation.network.stats
        assert stats.sent == stats.control_messages() + stats.data_messages()
