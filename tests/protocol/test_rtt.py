"""Tests for adaptive RTT estimation."""

import pytest

from repro.net.latency import JitteredLatency, ConstantLatency
from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation
from repro.protocol.rtt import RttEstimator, attach_rtt_estimation
from repro.sim import RandomStreams


class TestRttEstimator:
    def test_unknown_peer_uses_prior(self):
        estimator = RttEstimator(initial_rtt=10.0)
        assert estimator.rtt(5) == 10.0
        assert estimator.timeout(5) == 10.0

    def test_first_sample_becomes_estimate(self):
        estimator = RttEstimator()
        estimator.record_sample(1, 20.0)
        assert estimator.rtt(1) == 20.0
        # RFC 6298 prior: rttvar = sample/2 -> rto = 20 + 4*10 = 60.
        assert estimator.timeout(1) == pytest.approx(60.0)

    def test_converges_to_stable_rtt(self):
        estimator = RttEstimator(initial_rtt=100.0)
        for _ in range(100):
            estimator.record_sample(1, 10.0)
        assert estimator.rtt(1) == pytest.approx(10.0, abs=0.5)
        # Variance collapses, so the timeout approaches the RTT.
        assert estimator.timeout(1) == pytest.approx(10.0, abs=2.0)

    def test_variance_inflates_timeout(self):
        steady = RttEstimator()
        jittery = RttEstimator()
        for index in range(50):
            steady.record_sample(1, 10.0)
            jittery.record_sample(1, 5.0 if index % 2 == 0 else 15.0)
        assert jittery.timeout(1) > steady.timeout(1)
        assert jittery.rtt(1) == pytest.approx(10.0, abs=2.0)

    def test_estimates_are_per_peer(self):
        estimator = RttEstimator()
        estimator.record_sample(1, 10.0)
        estimator.record_sample(2, 80.0)
        assert estimator.rtt(1) < estimator.rtt(2)
        assert estimator.known_peers() == 2

    def test_min_timeout_clamp(self):
        estimator = RttEstimator(min_timeout=5.0)
        for _ in range(100):
            estimator.record_sample(1, 0.1)
        assert estimator.timeout(1) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(initial_rtt=0.0)
        with pytest.raises(ValueError):
            RttEstimator(alpha=1.0)
        estimator = RttEstimator()
        with pytest.raises(ValueError):
            estimator.record_sample(1, -1.0)

    def test_sample_count(self):
        estimator = RttEstimator()
        assert estimator.sample_count(1) == 0
        estimator.record_sample(1, 10.0)
        estimator.record_sample(1, 12.0)
        assert estimator.sample_count(1) == 2


class TestMeasuringRttProvider:
    def build(self, jitter=0.0, seed=0):
        streams = RandomStreams(seed)
        latency = ConstantLatency(5.0)
        if jitter:
            latency = JitteredLatency(latency, jitter=jitter,
                                      rng=streams.stream("jitter"))
        simulation = RrmpSimulation(
            single_region(20),
            config=RrmpConfig(session_interval=None),
            seed=seed,
            latency=latency,
        )
        return simulation

    def inject_loss(self, simulation):
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        nodes = simulation.hierarchy.nodes
        simulation.members[nodes[0]].inject_receive(data)
        for node in nodes[1:]:
            simulation.members[node].inject_loss_detection(1)

    def test_estimator_learns_from_repairs(self):
        simulation = self.build()
        member = simulation.members[5]
        provider = attach_rtt_estimation(member, initial_rtt=50.0)
        self.inject_loss(simulation)
        simulation.run(duration=1_000.0)
        assert member.has_received(1)
        # The member's request was answered: at least one sample, and
        # the estimate moved from the 50 ms prior toward the true 10 ms.
        assert provider.estimator.known_peers() >= 1
        peers = [n for n in simulation.hierarchy.nodes if n != member.node_id]
        learned = [provider.estimator.rtt(p) for p in peers
                   if provider.estimator.sample_count(p) > 0]
        assert learned and all(abs(value - 10.0) < 1.0 for value in learned)

    def test_recovery_still_converges_with_estimated_timers(self):
        simulation = self.build(jitter=0.3, seed=4)
        for node in simulation.hierarchy.nodes:
            attach_rtt_estimation(simulation.members[node], initial_rtt=10.0)
        self.inject_loss(simulation)
        simulation.run(duration=2_000.0)
        assert simulation.all_received(1)

    def test_bad_prior_self_corrects_over_a_stream(self):
        """With a 1 ms prior the first rounds over-fire; samples pull
        the timeout back up so later recoveries stop double-requesting."""
        simulation = RrmpSimulation(
            single_region(20),
            config=RrmpConfig(session_interval=25.0),  # tail-loss detection
            seed=6,
            latency=ConstantLatency(5.0),
        )
        providers = {
            node: attach_rtt_estimation(simulation.members[node], initial_rtt=1.0)
            for node in simulation.hierarchy.nodes
        }
        sender = simulation.sender
        from repro.net.ipmulticast import FixedHolderCount
        sender.outcome = FixedHolderCount(5)
        for _ in range(10):
            sender.multicast()
            simulation.run(duration=300.0)
        assert all(simulation.all_received(seq) for seq in range(1, 11))
        sampled = [p for p in providers.values() if p.estimator.known_peers()]
        assert sampled
        for provider in sampled:
            peers_with_samples = [
                peer for peer in simulation.hierarchy.nodes
                if provider.estimator.sample_count(peer) > 0
            ]
            for peer in peers_with_samples:
                assert provider.estimator.timeout(peer) > 5.0
