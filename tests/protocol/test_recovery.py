"""Unit tests for the local/remote recovery processes (§2.2)."""

import pytest

from repro.protocol.config import RrmpConfig
from repro.protocol.recovery import RecoveryProcess
from repro.sim import RandomStreams


class FakeRecoveryHost:
    def __init__(self, sim, trace, config=None, neighbors=(), parents=(),
                 region_size=None, rtt=10.0, seed=11, has_parent=None):
        self.node_id = 0
        self.sim = sim
        self.trace = trace
        self.config = config if config is not None else RrmpConfig(session_interval=None)
        self.neighbors = list(neighbors)
        self.parents = list(parents)
        #: Structural parent-region existence; defaults to "has one
        #: iff any parent members were given" (the common case).
        self.has_parent = bool(parents) if has_parent is None else has_parent
        self._region_size = (
            region_size if region_size is not None else len(self.neighbors) + 1
        )
        self.rtt = rtt
        self.sent_local = []   # (time, dst, seq)
        self.sent_remote = []  # (time, dst, seq)
        self._streams = RandomStreams(seed)

    def neighbor_ids(self):
        return list(self.neighbors)

    def parent_member_ids(self):
        return list(self.parents)

    def has_parent_region(self):
        return self.has_parent

    def region_size(self):
        return self._region_size

    def send_local_request(self, dst, request):
        self.sent_local.append((self.sim.now, dst, request.seq))

    def send_remote_request(self, dst, request):
        self.sent_remote.append((self.sim.now, dst, request.seq))

    def rtt_to(self, dst):
        return self.rtt

    def recovery_rng(self):
        return self._streams.stream("recovery")


class TestLocalPhase:
    def test_first_request_sent_immediately(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1, 2, 3])
        process = RecoveryProcess(host, seq=7, detected_at=0.0)
        process.start()
        assert len(host.sent_local) == 1
        time, dst, seq = host.sent_local[0]
        assert time == 0.0 and seq == 7 and dst in (1, 2, 3)

    def test_retry_every_rtt(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1, 2, 3])
        RecoveryProcess(host, 7, 0.0).start()
        sim.run(until=35.0)
        assert [t for t, _, _ in host.sent_local] == [0.0, 10.0, 20.0, 30.0]

    def test_targets_are_random_neighbors(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=list(range(1, 20)))
        RecoveryProcess(host, 7, 0.0).start()
        sim.run(until=200.0)
        targets = {dst for _, dst, _ in host.sent_local}
        assert len(targets) > 3

    def test_no_neighbors_no_local_requests(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[])
        RecoveryProcess(host, 7, 0.0).start()
        sim.run(until=100.0)
        assert host.sent_local == []

    def test_local_phase_resumes_when_churn_adds_neighbors(self, sim, trace):
        """A member alone in its region re-probes instead of going
        silent: when churn adds a neighbour, local recovery resumes."""
        host = FakeRecoveryHost(sim, trace, neighbors=[])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        sim.run(until=100.0)
        assert host.sent_local == []
        host.neighbors = [5]  # a peer joins the region
        sim.run(until=300.0)
        assert host.sent_local  # the idle probe picked the newcomer up
        assert all(dst == 5 for _, dst, _ in host.sent_local)
        # Probe cadence: first request lands on the next idle-threshold
        # boundary (T=40 by default) after the join.
        assert host.sent_local[0][0] == pytest.approx(120.0)

    def test_idle_probe_stops_on_completion(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        sim.run(until=50.0)
        process.complete(sim.now)
        assert sim.pending_events == 0  # no orphaned probe timers
        host.neighbors = [5]
        sim.run(until=500.0)
        assert host.sent_local == []

    def test_timer_factor_stretches_rounds(self, sim, trace):
        config = RrmpConfig(session_interval=None, timer_factor=2.0)
        host = FakeRecoveryHost(sim, trace, config=config, neighbors=[1, 2])
        RecoveryProcess(host, 7, 0.0).start()
        sim.run(until=25.0)
        assert [t for t, _, _ in host.sent_local] == [0.0, 20.0]


class TestRemotePhase:
    def test_no_parent_region_does_nothing(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1], parents=[])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        sim.run(until=100.0)
        assert host.sent_remote == []
        # Structurally parentless (root region): the phase stays silent
        # — no idle probe keeps the event queue alive forever.
        assert not process._remote_timer.armed

    def test_remote_phase_resumes_when_parent_region_refills(self, sim, trace):
        """An emptied parent region refilling under churn revives the
        remote phase (single-member region: every round sends)."""
        host = FakeRecoveryHost(sim, trace, neighbors=[], parents=[],
                                region_size=1, has_parent=True)
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        sim.run(until=100.0)
        assert host.sent_remote == []
        host.parents = [9]
        sim.run(until=300.0)
        assert host.sent_remote
        assert all(dst == 9 for _, dst, _ in host.sent_remote)
        assert process.remote_rounds >= 1

    def test_probability_is_lambda_over_n(self, sim, trace):
        """§2.2: region-wide expected remote requests per round is λ."""
        config = RrmpConfig(session_interval=None, remote_lambda=1.0)
        sent = 0
        for seed in range(120):
            local_sim = type(sim)()
            host = FakeRecoveryHost(local_sim, trace, config=config,
                                    neighbors=list(range(1, 50)),
                                    parents=[100, 101], region_size=50, seed=seed)
            RecoveryProcess(host, 7, 0.0).start()
            local_sim.run(until=95.0)  # 10 rounds of RTT=10
            sent += len(host.sent_remote)
        # Per-member per-round probability 1/50; 1200 rounds -> ~24 sends.
        assert 8 <= sent <= 50

    def test_single_member_region_always_sends(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[], parents=[9],
                                region_size=1)
        RecoveryProcess(host, 7, 0.0).start()
        assert len(host.sent_remote) == 1

    def test_remote_timer_runs_even_without_send(self, sim, trace):
        """The remote phase keeps cycling whether or not it sent (§2.2)."""
        config = RrmpConfig(session_interval=None, remote_lambda=0.0)
        host = FakeRecoveryHost(sim, trace, config=config, neighbors=[],
                                parents=[9], region_size=10)
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        sim.run(until=55.0)
        assert host.sent_remote == []
        assert process.remote_rounds >= 5


class TestCompletion:
    def test_complete_stops_retries_and_traces_latency(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1, 2])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        sim.at(25.0, process.complete, 25.0)
        sim.run(until=100.0)
        assert [t for t, _, _ in host.sent_local] == [0.0, 10.0, 20.0]
        record = trace.first("recovery_completed")
        assert record["latency"] == pytest.approx(25.0)
        assert record["seq"] == 7
        assert record["local_rounds"] == 3

    def test_complete_is_idempotent(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        process.complete(5.0)
        process.complete(6.0)
        assert trace.count("recovery_completed") == 1

    def test_cancel_is_silent(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        process.cancel()
        sim.run(until=100.0)
        assert trace.count("recovery_completed") == 0
        assert len(host.sent_local) == 1  # only the initial round

    def test_cancel_is_distinct_from_completion(self, sim, trace):
        """Shutdown-cancelled recoveries must not look like successes
        to metrics: ``cancelled`` is set, ``completed`` is not."""
        host = FakeRecoveryHost(sim, trace, neighbors=[1])
        process = RecoveryProcess(host, 7, 0.0)
        process.start()
        process.cancel()
        assert process.cancelled
        assert not process.completed
        assert not process.failed
        assert not process.active
        # A late arrival cannot resurrect a cancelled recovery.
        process.complete(50.0)
        assert not process.completed
        assert trace.count("recovery_completed") == 0


class TestGiveUp:
    def test_deadline_records_violation(self, sim, trace):
        config = RrmpConfig(session_interval=None, max_recovery_time=50.0)
        host = FakeRecoveryHost(sim, trace, config=config, neighbors=[1, 2])
        RecoveryProcess(host, 7, 0.0).start()
        sim.run(until=200.0)
        assert trace.count("reliability_violation") == 1
        # No requests after the deadline.
        assert all(t <= 50.0 for t, _, _ in host.sent_local)

    def test_no_deadline_retries_forever(self, sim, trace):
        host = FakeRecoveryHost(sim, trace, neighbors=[1, 2])
        RecoveryProcess(host, 7, 0.0).start()
        sim.run(until=1_000.0)
        assert trace.count("reliability_violation") == 0
        assert len(host.sent_local) == 101
