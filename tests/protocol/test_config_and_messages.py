"""Edge-case tests for protocol configuration and wire messages."""

import pytest

from repro.net.topology import Hierarchy, single_region
from repro.protocol.config import PAPER_SECTION4_CONFIG, RrmpConfig
from repro.protocol.messages import (
    CONTROL_WIRE_SIZE,
    DATA_WIRE_SIZE,
    REPAIR_LOCAL,
    DataMessage,
    HandoffMessage,
    HaveReply,
    LocalRequest,
    RemoteRequest,
    Repair,
    SearchRequest,
    SessionMessage,
)
from repro.protocol.rrmp import RrmpSimulation


class TestRrmpConfig:
    def test_defaults_match_paper_values(self):
        config = RrmpConfig()
        assert config.idle_threshold == 40.0   # 4 x max RTT (§4)
        assert config.long_term_c == 6.0       # §3.2's example value
        assert config.remote_lambda == 1.0     # §2.2's example value

    def test_paper_section4_config(self):
        assert PAPER_SECTION4_CONFIG.long_term_c == 0.0
        assert PAPER_SECTION4_CONFIG.session_interval is None
        assert PAPER_SECTION4_CONFIG.idle_threshold == 40.0

    def test_with_overrides_returns_new_frozen_copy(self):
        base = RrmpConfig()
        other = base.with_overrides(long_term_c=3.0)
        assert other.long_term_c == 3.0
        assert base.long_term_c == 6.0
        with pytest.raises(Exception):
            other.long_term_c = 1.0  # type: ignore[misc]

    @pytest.mark.parametrize("field, value", [
        ("remote_lambda", -1.0),
        ("long_term_c", -0.5),
        ("idle_threshold", 0.0),
        ("timer_factor", 0.0),
        ("session_interval", 0.0),
        ("long_term_ttl", -5.0),
        ("regional_backoff_max", -1.0),
        ("max_recovery_time", 0.0),
        ("max_search_rounds", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            RrmpConfig(**{field: value})


class TestMessages:
    def test_data_is_data_kind(self):
        data = DataMessage(seq=1, sender=0)
        assert data.kind == "data"
        assert data.wire_size == DATA_WIRE_SIZE

    def test_requests_are_control_kind(self):
        for message in (
            LocalRequest(seq=1, requester=0),
            RemoteRequest(seq=1, requester=0),
            SessionMessage(sender=0, max_seq=5),
            SearchRequest(seq=1, waiters=(9,), forwarder=0),
            HaveReply(seq=1, owner=0),
        ):
            assert message.kind == "control"
            assert message.wire_size == CONTROL_WIRE_SIZE

    def test_repairs_carry_data_and_seq(self):
        data = DataMessage(seq=7, sender=0, payload=b"x")
        repair = Repair(data=data, responder=3, scope=REPAIR_LOCAL)
        assert repair.kind == "data"
        assert repair.seq == 7
        assert repair.data.payload == b"x"

    def test_handoff_carries_data_and_seq(self):
        data = DataMessage(seq=9, sender=0)
        handoff = HandoffMessage(data=data, from_member=4)
        assert handoff.kind == "data"
        assert handoff.seq == 9

    def test_messages_are_immutable(self):
        data = DataMessage(seq=1, sender=0)
        with pytest.raises(Exception):
            data.seq = 2  # type: ignore[misc]

    def test_search_request_default_hops(self):
        request = SearchRequest(seq=1, waiters=(9,), forwarder=0)
        assert request.hops == 0


class TestFacadeEdgeCases:
    def test_empty_hierarchy_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_region(0)
        with pytest.raises(ValueError):
            RrmpSimulation(hierarchy)

    def test_explicit_sender_node(self):
        simulation = RrmpSimulation(single_region(5), sender_node=3)
        assert simulation.sender.node_id == 3

    def test_invalid_hierarchy_rejected_on_construction(self):
        hierarchy = single_region(3)
        hierarchy.regions[0].members.append(0)  # duplicate placement
        with pytest.raises(Exception):
            RrmpSimulation(hierarchy)

    def test_member_lookup(self):
        simulation = RrmpSimulation(single_region(4))
        assert simulation.member(2).node_id == 2
        with pytest.raises(KeyError):
            simulation.member(99)

    def test_occupancy_by_node_covers_alive_members(self):
        simulation = RrmpSimulation(single_region(4))
        assert set(simulation.occupancy_by_node()) == {0, 1, 2, 3}
        simulation.members[1].crash()
        assert set(simulation.occupancy_by_node()) == {0, 2, 3}

    def test_trace_disabled_mode(self):
        simulation = RrmpSimulation(single_region(4), keep_trace=False)
        simulation.sender.multicast()
        simulation.run(duration=100.0)
        assert simulation.trace.records == []
        assert simulation.all_received(1)  # protocol unaffected
