"""Unit tests for sequence-gap loss detection (§2.1)."""

from repro.protocol.loss_detection import GapTracker


class TestOnReceive:
    def test_in_order_arrival_detects_nothing(self):
        tracker = GapTracker()
        for seq in (1, 2, 3):
            assert tracker.on_receive(seq) == []
        assert tracker.missing() == []

    def test_gap_reveals_missing(self):
        tracker = GapTracker()
        tracker.on_receive(1)
        assert tracker.on_receive(4) == [2, 3]
        assert tracker.missing() == [2, 3]

    def test_each_loss_reported_once(self):
        tracker = GapTracker()
        tracker.on_receive(3)  # reports 1, 2
        assert tracker.on_receive(5) == [4]  # not 1, 2 again

    def test_recovered_message_leaves_missing_set(self):
        tracker = GapTracker()
        tracker.on_receive(3)
        tracker.on_receive(1)
        assert tracker.missing() == [2]

    def test_first_message_at_seq_one_is_clean(self):
        tracker = GapTracker()
        assert tracker.on_receive(1) == []

    def test_first_message_beyond_one_reports_prefix(self):
        tracker = GapTracker()
        assert tracker.on_receive(3) == [1, 2]

    def test_duplicate_receive_is_harmless(self):
        tracker = GapTracker()
        tracker.on_receive(2)
        assert tracker.on_receive(2) == []
        assert tracker.received_count == 1


class TestOnAdvertise:
    def test_session_message_reveals_tail_loss(self):
        """§2.1: session messages catch the lost last message of a burst."""
        tracker = GapTracker()
        tracker.on_receive(1)
        assert tracker.on_advertise(3) == [2, 3]

    def test_advertise_below_highest_is_noop(self):
        tracker = GapTracker()
        tracker.on_receive(5)
        assert tracker.on_advertise(3) == []

    def test_advertise_is_idempotent(self):
        tracker = GapTracker()
        tracker.on_advertise(2)
        assert tracker.on_advertise(2) == []

    def test_advertise_then_receive(self):
        tracker = GapTracker()
        assert tracker.on_advertise(2) == [1, 2]
        tracker.on_receive(1)
        tracker.on_receive(2)
        assert tracker.missing() == []


class TestContiguousPrefix:
    def test_empty_tracker(self):
        assert GapTracker().contiguous_prefix() == 0

    def test_prefix_advances_with_in_order_receipt(self):
        tracker = GapTracker()
        tracker.on_receive(1)
        tracker.on_receive(2)
        assert tracker.contiguous_prefix() == 2

    def test_prefix_stalls_at_gap(self):
        tracker = GapTracker()
        tracker.on_receive(1)
        tracker.on_receive(3)
        assert tracker.contiguous_prefix() == 1

    def test_prefix_jumps_when_gap_fills(self):
        tracker = GapTracker()
        tracker.on_receive(1)
        tracker.on_receive(3)
        tracker.on_receive(4)
        tracker.on_receive(2)
        assert tracker.contiguous_prefix() == 4

    def test_custom_first_seq(self):
        tracker = GapTracker(first_seq=10)
        assert tracker.contiguous_prefix() == 9
        assert tracker.on_receive(11) == [10]


class TestQueries:
    def test_is_received(self):
        tracker = GapTracker()
        tracker.on_receive(2)
        assert tracker.is_received(2)
        assert not tracker.is_received(1)

    def test_received_count(self):
        tracker = GapTracker()
        for seq in (1, 5, 9):
            tracker.on_receive(seq)
        assert tracker.received_count == 3
