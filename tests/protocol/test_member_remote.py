"""Member state-machine tests: remote recovery across regions (§2.2)."""


from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


def build_wan(sizes=(5, 5), seed=0, inter=40.0, **overrides):
    hierarchy = chain(list(sizes))
    defaults = dict(session_interval=None)
    defaults.update(overrides)
    return RrmpSimulation(
        hierarchy,
        config=RrmpConfig(**defaults),
        seed=seed,
        latency=HierarchicalLatency(hierarchy, inter_one_way=inter),
    )


def regional_loss(simulation, seq=1):
    """Parent region holds the message; the whole child region misses it."""
    data = DataMessage(seq=seq, sender=simulation.sender.node_id)
    hierarchy = simulation.hierarchy
    for node in hierarchy.regions[0].members:
        simulation.members[node].inject_receive(data)
    for node in hierarchy.regions[1].members:
        simulation.members[node].inject_loss_detection(seq)
    return data


class TestRegionalLossRecovery:
    def test_entire_child_region_recovers(self):
        simulation = build_wan()
        regional_loss(simulation)
        simulation.run(duration=3_000.0)
        assert simulation.all_received(1)

    def test_remote_requests_go_to_parent_region(self):
        simulation = build_wan(seed=2)
        regional_loss(simulation)
        simulation.run(duration=3_000.0)
        parents = set(simulation.hierarchy.regions[0].members)
        for record in simulation.trace.of_kind("remote_request_received"):
            assert record["node"] in parents

    def test_repair_is_remulticast_in_child_region(self):
        """§2.2: the member receiving a remote repair multicasts it locally."""
        simulation = build_wan(seed=2)
        regional_loss(simulation)
        simulation.run(duration=3_000.0)
        multicasters = {
            record["node"] for record in simulation.trace.of_kind("regional_multicast")
        }
        children = set(simulation.hierarchy.regions[1].members)
        assert multicasters and multicasters <= children

    def test_remote_request_volume_scales_with_lambda(self):
        def remote_requests(lam):
            total = 0
            for seed in range(5):
                simulation = build_wan(sizes=(20, 20), seed=seed, remote_lambda=lam)
                regional_loss(simulation)
                simulation.run(duration=1_000.0)
                total += simulation.network.stats.sent_by_type.get("RemoteRequest", 0)
            return total

        assert remote_requests(8.0) > remote_requests(0.5)

    def test_root_region_never_sends_remote_requests(self):
        simulation = build_wan()
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        # Only one member of the ROOT region holds the message.
        root = simulation.hierarchy.regions[0].members
        simulation.members[root[0]].inject_receive(data)
        for node in root[1:]:
            simulation.members[node].inject_loss_detection(1)
        simulation.run(duration=1_000.0)
        assert simulation.network.stats.sent_by_type.get("RemoteRequest", 0) == 0
        # Recovered purely locally (§2.2: members in the sender's
        # region recover any loss through local recovery).
        for node in root:
            assert simulation.members[node].has_received(1)


class TestRelayRule:
    def test_parent_member_missing_message_records_and_relays(self):
        """§2.2 case 2: r records 'p is waiting' and relays on receipt."""
        simulation = build_wan(sizes=(3, 1), seed=4, remote_lambda=3.0)
        hierarchy = simulation.hierarchy
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        parent_members = hierarchy.regions[0].members
        child = hierarchy.regions[1].members[0]
        # Nobody in the parent region has the message yet; the child
        # detects the loss and asks upstream (lambda/n = 1 for n=1).
        simulation.members[child].inject_loss_detection(1)
        simulation.run(duration=300.0)
        assert simulation.trace.count("remote_request_recorded") >= 1
        # Now the parent region obtains the message.
        simulation.members[parent_members[0]].inject_receive(data)
        simulation.run(duration=3_000.0)
        assert simulation.members[child].has_received(1)
        relays = [
            record for record in simulation.trace.of_kind("remote_request_served")
            if record["via"] == "relay"
        ]
        assert relays, "the waiting child must be served by a relay"

    def test_duplicate_remote_repair_not_remulticast(self):
        """§2.2: p checks whether the remote repair is a duplicate."""
        simulation = build_wan(sizes=(4, 4), seed=5, remote_lambda=16.0)
        regional_loss(simulation)
        simulation.run(duration=3_000.0)
        # With very aggressive lambda several children may receive
        # remote repairs; each distinct receiver multicasts once, and
        # duplicates (via regional multicast) never cascade.
        multicasts = simulation.trace.count("regional_multicast")
        assert 1 <= multicasts <= 4

    def test_suppression_backoff_reduces_duplicate_multicasts(self):
        with_backoff = []
        without_backoff = []
        for seed in range(6):
            simulation = build_wan(sizes=(6, 6), seed=seed, remote_lambda=18.0,
                                   regional_backoff_max=None)
            regional_loss(simulation)
            simulation.run(duration=3_000.0)
            without_backoff.append(simulation.trace.count("regional_multicast"))

            simulation = build_wan(sizes=(6, 6), seed=seed, remote_lambda=18.0,
                                   regional_backoff_max=20.0)
            regional_loss(simulation)
            simulation.run(duration=3_000.0)
            with_backoff.append(simulation.trace.count("regional_multicast"))
            assert simulation.all_received(1)
        assert sum(with_backoff) <= sum(without_backoff)


class TestHierarchyDepth:
    def test_three_level_chain_recovers_end_to_end(self):
        simulation = build_wan(sizes=(4, 4, 4), seed=7)
        hierarchy = simulation.hierarchy
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        for node in hierarchy.regions[0].members:
            simulation.members[node].inject_receive(data)
        for region_id in (1, 2):
            for node in hierarchy.regions[region_id].members:
                simulation.members[node].inject_loss_detection(1)
        simulation.run(duration=10_000.0)
        assert simulation.all_received(1)

    def test_latency_grows_with_depth(self):
        simulation = build_wan(sizes=(4, 4, 4), seed=8)
        hierarchy = simulation.hierarchy
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        for node in hierarchy.regions[0].members:
            simulation.members[node].inject_receive(data)
        for region_id in (1, 2):
            for node in hierarchy.regions[region_id].members:
                simulation.members[node].inject_loss_detection(1)
        simulation.run(duration=10_000.0)
        by_region = {1: [], 2: []}
        for record in simulation.trace.of_kind("recovery_completed"):
            region = hierarchy.region_id_of(record["node"])
            if region in by_region:
                by_region[region].append(record["latency"])
        assert min(by_region[2]) > min(by_region[1])
