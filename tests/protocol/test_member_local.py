"""Member state-machine tests: local recovery and buffering behaviour."""


from repro.net.latency import ConstantLatency
from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


def build(n=10, seed=0, **config_overrides):
    defaults = dict(session_interval=None)
    defaults.update(config_overrides)
    return RrmpSimulation(
        single_region(n),
        config=RrmpConfig(**defaults),
        seed=seed,
        latency=ConstantLatency(5.0),
    )


def inject(simulation, holders, seq=1):
    data = DataMessage(seq=seq, sender=simulation.sender.node_id)
    for node in simulation.hierarchy.nodes:
        member = simulation.members[node]
        if node in holders:
            member.inject_receive(data)
        else:
            member.inject_loss_detection(seq)
    return data


class TestLocalRecovery:
    def test_single_holder_spreads_to_all(self):
        simulation = build(n=10)
        inject(simulation, holders={0})
        simulation.run(duration=500.0)
        assert simulation.all_received(1)

    def test_recovery_latency_traced_per_member(self):
        simulation = build(n=10)
        inject(simulation, holders={0})
        simulation.run(duration=500.0)
        assert len(simulation.recovery_latencies()) == 9

    def test_requests_ignored_by_non_holders(self):
        """§2.2: a member without the message ignores the request —
        the requester recovers via its own retry, so everyone still
        converges even though early requests may hit empty members."""
        simulation = build(n=10, seed=3)
        inject(simulation, holders={0})
        simulation.run(duration=500.0)
        stats = simulation.network.stats
        assert stats.sent_by_type["LocalRequest"] > 9  # some retries happened
        assert simulation.all_received(1)

    def test_repairs_are_unicast_to_requester(self):
        simulation = build(n=4)
        inject(simulation, holders={0})
        simulation.run(duration=500.0)
        assert simulation.network.stats.sent_by_type.get("Repair", 0) >= 3

    def test_determinism_same_seed(self):
        def run_once():
            simulation = build(n=20, seed=9)
            inject(simulation, holders={0, 1})
            simulation.run(duration=500.0)
            return sorted(
                (record["node"], record["latency"])
                for record in simulation.trace.of_kind("recovery_completed")
            )

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_once(seed):
            simulation = build(n=20, seed=seed)
            inject(simulation, holders={0})
            simulation.run(duration=500.0)
            return sorted(
                (record["node"], record["latency"])
                for record in simulation.trace.of_kind("recovery_completed")
            )

        assert run_once(1) != run_once(2)


class TestBufferingIntegration:
    def test_holders_buffer_until_idle(self):
        simulation = build(n=10, long_term_c=0.0)
        inject(simulation, holders={0})
        simulation.run(duration=2_000.0)
        assert simulation.buffering_count(1) == 0
        member = simulation.members[0]
        assert member.policy.buffer.records, "holder should have a discard record"

    def test_recovered_members_buffer_too(self):
        """Every member that receives the message buffers it (§3.1)."""
        simulation = build(n=10, long_term_c=0.0)
        inject(simulation, holders={0})
        simulation.run(duration=60.0)  # recovery done, idle not everywhere yet
        assert simulation.trace.count("buffer_add") == 10

    def test_long_term_bufferers_remain(self):
        simulation = build(n=10, long_term_c=10.0)  # P = 1: everyone keeps
        inject(simulation, holders={0})
        simulation.run(duration=2_000.0)
        assert simulation.buffering_count(1) == 10

    def test_gap_detection_starts_recovery(self):
        simulation = build(n=5)
        data1 = DataMessage(seq=1, sender=simulation.sender.node_id)
        data2 = DataMessage(seq=2, sender=simulation.sender.node_id)
        member = simulation.members[3]
        member.inject_receive(data2)  # gap: seq 1 missing
        assert 1 in member.recoveries
        for node in (0, 1, 2, 4):
            simulation.members[node].inject_receive(data1)
            simulation.members[node].inject_receive(data2)
        simulation.run(duration=500.0)
        assert member.has_received(1)

    def test_duplicates_are_counted_not_redelivered(self):
        simulation = build(n=5)
        data = DataMessage(seq=1, sender=simulation.sender.node_id)
        member = simulation.members[2]
        member.inject_receive(data)
        member.inject_receive(data)
        assert simulation.trace.count("duplicate_received") == 1
        assert simulation.trace.count("member_received") == 1


class TestSessionMessages:
    def test_session_reveals_tail_loss(self):
        simulation = RrmpSimulation(
            single_region(6),
            config=RrmpConfig(session_interval=25.0),
            seed=1,
            latency=ConstantLatency(5.0),
        )
        # Sender multicasts one message that reaches nobody (holders
        # only itself): the others must learn about it from sessions.
        from repro.net.ipmulticast import FixedHolders
        simulation.sender.outcome = FixedHolders(set())
        simulation.sender.multicast()
        simulation.run(duration=500.0)
        assert simulation.all_received(1)
        assert simulation.network.stats.sent_by_type.get("SessionMessage", 0) > 0
