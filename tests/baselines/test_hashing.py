"""Tests for deterministic hash-based bufferer selection (ref [11])."""

import pytest

from repro.hashing.deterministic import (
    HashBuffererPolicy,
    bufferers_for,
    hash_evaluations,
    hash_unit,
    is_selected,
    reset_hash_counter,
)
from repro.protocol.messages import DataMessage


def msg(seq: int) -> DataMessage:
    return DataMessage(seq=seq, sender=0)


class TestHashFunction:
    def test_deterministic(self):
        assert hash_unit(5, 17) == hash_unit(5, 17)

    def test_uniform_range(self):
        values = [hash_unit(member, 1) for member in range(2_000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert 0.45 < sum(values) / len(values) < 0.55

    def test_member_and_seq_both_matter(self):
        assert hash_unit(1, 1) != hash_unit(2, 1)
        assert hash_unit(1, 1) != hash_unit(1, 2)

    def test_counter_tracks_evaluations(self):
        reset_hash_counter()
        hash_unit(1, 1)
        hash_unit(2, 1)
        assert hash_evaluations() == 2
        reset_hash_counter()
        assert hash_evaluations() == 0


class TestSelection:
    def test_requester_and_bufferer_agree(self):
        """The crucial property: selection computable by anyone."""
        members = list(range(100))
        selected = bufferers_for(7, members, expected_bufferers=6.0)
        for member in members:
            assert (member in selected) == is_selected(member, 7, 6.0, 100)

    def test_expected_count_near_c(self):
        members = list(range(100))
        counts = [len(bufferers_for(seq, members, 6.0)) for seq in range(200)]
        average = sum(counts) / len(counts)
        assert 4.5 < average < 7.5

    def test_different_messages_select_different_members(self):
        members = list(range(100))
        sets = {frozenset(bufferers_for(seq, members, 6.0)) for seq in range(20)}
        assert len(sets) > 15  # load spreads across the region

    def test_order_is_by_hash_so_requesters_coalesce(self):
        members = list(range(50))
        order_a = bufferers_for(3, members, 10.0)
        order_b = bufferers_for(3, list(reversed(members)), 10.0)
        assert order_a == order_b

    def test_empty_region(self):
        assert bufferers_for(1, [], 6.0) == []

    def test_zero_c_selects_nobody(self):
        assert bufferers_for(1, list(range(50)), 0.0) == []


class TestHashBuffererPolicy:
    def test_buffers_iff_selected(self, sim, buffer_host):
        policy = HashBuffererPolicy(expected_bufferers=6.0)
        policy.bind(buffer_host)
        for seq in range(1, 200):
            policy.on_receive(msg(seq))
        expected = sum(
            1 for seq in range(1, 200)
            if is_selected(buffer_host.node_id, seq, 6.0, buffer_host.region_size())
        )
        assert policy.occupancy == expected

    def test_selected_entries_never_expire(self, sim, buffer_host):
        policy = HashBuffererPolicy(expected_bufferers=100.0)  # select all
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        sim.run(until=1_000_000.0)
        assert policy.has(1)

    def test_locate_bufferers_excluding_none(self, sim, buffer_host):
        policy = HashBuffererPolicy(expected_bufferers=6.0)
        policy.bind(buffer_host)
        located = policy.locate_bufferers(1, list(range(100)))
        assert located == bufferers_for(1, list(range(100)), 6.0)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            HashBuffererPolicy(expected_bufferers=-1.0)


class TestEndToEnd:
    def test_hash_policy_serves_late_remote_request(self):
        """A region running the hash policy answers a late request via
        direct lookup instead of the randomized search."""
        from repro.experiments.ablation_hash import _one_run
        result = _one_run(use_hash=True, n=50, c=6.0, seed=0,
                          request_at=200.0, horizon=1_500.0)
        assert result["unserved"] == 0.0
        assert result["locate time (ms)"] <= 20.0
        assert result["hash evaluations"] >= 50  # the computation cost
