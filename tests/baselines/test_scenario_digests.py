"""Golden trace-digest baselines for every registered scenario.

Each registry scenario is run at its default seed and the SHA-256 of
its full trace stream (see :func:`repro.sim.trace_digest`) is compared
against ``tests/baselines/scenario_trace_digests.json``.  The
simulator is deterministic, so *any* drift in the digest means the
scenario's event stream changed — a new trace kind, a reordered
emission, a behavioural change in the protocol.  That is sometimes
intended (a feature added a trace record); then the baseline must be
updated *deliberately*:

    RRMP_UPDATE_BASELINES=1 PYTHONPATH=src python -m pytest tests/baselines/test_scenario_digests.py

and the refreshed JSON committed alongside the change that explains
it.  An unexplained drift is a silent behaviour change — exactly what
this differential test exists to catch.

``rrmp-experiments validate digest <scenario>`` prints one scenario's
digest for manual comparison.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.scenario.registry import get_scenario, scenario_names
from repro.sim import trace_digest

BASELINE_PATH = Path(__file__).parent / "scenario_trace_digests.json"
UPDATE_ENV = "RRMP_UPDATE_BASELINES"


def _run_digest(name: str) -> dict:
    built = get_scenario(name).build().run()
    records = built.simulation.trace.records
    return {
        "digest": trace_digest(records),
        "records": len(records),
        "events_fired": built.simulation.sim.events_fired,
    }


def _load_baselines() -> dict:
    if not BASELINE_PATH.exists():
        return {}
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_trace_digest_matches_baseline(name: str) -> None:
    fresh = _run_digest(name)
    if os.environ.get(UPDATE_ENV):
        baselines = _load_baselines()
        baselines[name] = fresh
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(dict(sorted(baselines.items())), handle, indent=2)
            handle.write("\n")
        pytest.skip(f"baseline for {name!r} updated ({UPDATE_ENV} set)")
    baselines = _load_baselines()
    assert name in baselines, (
        f"no golden baseline for scenario {name!r}; run with {UPDATE_ENV}=1 "
        "to record one and commit tests/baselines/scenario_trace_digests.json"
    )
    expected = baselines[name]
    assert fresh == expected, (
        f"scenario {name!r} event stream drifted from its golden baseline "
        f"(fresh {fresh} != baseline {expected}).  If the change is "
        f"intentional, re-bless with {UPDATE_ENV}=1 and commit the JSON; "
        "otherwise a protocol behaviour change slipped in."
    )


def test_baseline_file_covers_exactly_the_registry() -> None:
    """Stale baselines (renamed/removed scenarios) must not linger."""
    if os.environ.get(UPDATE_ENV):
        pytest.skip("baseline update mode")
    baselines = _load_baselines()
    assert sorted(baselines) == sorted(scenario_names())
