"""Tests for the tree-based repair-server baseline (ref [12])."""


from repro.net.ipmulticast import BernoulliOutcome, FixedHolders
from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.tree.rmtp import TreeSimulation


def build(sizes=(5, 5), seed=0, outcome=None, session_interval=25.0):
    hierarchy = chain(list(sizes))
    return TreeSimulation(
        hierarchy,
        seed=seed,
        latency=HierarchicalLatency(hierarchy, inter_one_way=40.0),
        outcome=outcome,
        session_interval=session_interval,
    )


class TestServerDesignation:
    def test_one_server_per_region(self):
        simulation = build(sizes=(4, 4, 4))
        servers = [m for m in simulation.members.values() if m.is_server]
        assert len(servers) == 3

    def test_root_server_is_sender(self):
        simulation = build()
        assert simulation.servers[0] == simulation.sender_node
        assert simulation.members[simulation.sender_node].is_server

    def test_receivers_point_at_their_region_server(self):
        simulation = build(sizes=(4, 4))
        child_server = simulation.servers[1]
        for node in simulation.hierarchy.regions[1].members:
            member = simulation.members[node]
            if node != child_server:
                assert member.repair_target == child_server

    def test_child_server_points_upstream(self):
        simulation = build(sizes=(4, 4))
        child_server = simulation.members[simulation.servers[1]]
        assert child_server.repair_target == simulation.servers[0]

    def test_root_server_has_no_upstream(self):
        simulation = build()
        assert simulation.members[simulation.sender_node].repair_target is None


class TestRecovery:
    def test_local_loss_repaired_by_region_server(self):
        simulation = build(seed=1, outcome=BernoulliOutcome(0.4))
        simulation.multicast()
        simulation.run(duration=2_000.0)
        assert simulation.all_received(1)

    def test_regional_loss_repaired_through_upstream_server(self):
        # Whole child region misses the message.
        simulation = build(seed=2)
        holders = set(simulation.hierarchy.regions[0].members)
        simulation.outcome = FixedHolders(holders)
        simulation.multicast()
        simulation.run(duration=5_000.0)
        assert simulation.all_received(1)

    def test_recovery_latency_traced(self):
        simulation = build(seed=3, outcome=BernoulliOutcome(0.5))
        simulation.multicast()
        simulation.run(duration=2_000.0)
        latencies = simulation.recovery_latencies()
        assert latencies and all(latency > 0 for latency in latencies)

    def test_stream_delivery(self):
        simulation = build(sizes=(6, 6), seed=4, outcome=BernoulliOutcome(0.2))
        for index in range(5):
            simulation.sim.at(index * 20.0, simulation.multicast)
        simulation.run(duration=5_000.0)
        for seq in range(1, 6):
            assert simulation.all_received(seq)


class TestBufferConcentration:
    def test_only_servers_buffer(self):
        """The defining RMTP behaviour: receivers buffer nothing."""
        simulation = build(sizes=(5, 5), seed=5)
        for _ in range(4):
            simulation.multicast()
        simulation.run(duration=2_000.0)
        for member in simulation.members.values():
            if member.is_server:
                assert member.buffered_count == 4
            else:
                assert member.buffered_count == 0

    def test_occupancy_hotspot(self):
        simulation = build(sizes=(10, 10), seed=6)
        for _ in range(8):
            simulation.multicast()
        simulation.run(duration=2_000.0)
        per_node = simulation.occupancy_by_node()
        values = sorted(per_node.values(), reverse=True)
        # Two servers hold everything; everyone else zero.
        assert values[0] == values[1] == 8
        assert all(v == 0 for v in values[2:])

    def test_server_buffers_grow_without_bound(self):
        """§1: 'the amount of buffering could become impractically large'."""
        simulation = build(sizes=(4, 4), seed=7)
        for index in range(30):
            simulation.sim.at(index * 10.0, simulation.multicast)
        simulation.run(duration=2_000.0)
        server = simulation.members[simulation.servers[1]]
        assert server.buffered_count == 30
