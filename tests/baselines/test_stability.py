"""Tests for the stability-detection baseline (ref [8])."""


from repro.net.ipmulticast import BernoulliOutcome
from repro.net.latency import ConstantLatency
from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation
from repro.stability.detector import StabilityBufferPolicy, attach_stability
from repro.stability.digest import WatermarkTable


class TestWatermarkTable:
    def test_update_keeps_maximum(self):
        table = WatermarkTable()
        assert table.update(1, 5)
        assert not table.update(1, 3)  # stale information ignored
        assert table.get(1) == 5

    def test_merge_reports_advancement(self):
        table = WatermarkTable()
        table.update(1, 5)
        assert table.merge([(1, 4), (2, 7)])      # node 2 is new
        assert not table.merge([(1, 5), (2, 7)])  # nothing new

    def test_frontier_is_group_minimum(self):
        table = WatermarkTable()
        table.update(1, 5)
        table.update(2, 3)
        table.update(3, 9)
        assert table.stability_frontier([1, 2, 3]) == 3

    def test_unknown_member_pins_frontier_at_zero(self):
        """Without full membership info nothing can be declared stable —
        the §1 critique of stability protocols, enforced conservatively."""
        table = WatermarkTable()
        table.update(1, 5)
        assert table.stability_frontier([1, 2]) == 0

    def test_empty_group_frontier(self):
        assert WatermarkTable().stability_frontier([]) == 0

    def test_as_pairs_sorted(self):
        table = WatermarkTable()
        table.update(3, 1)
        table.update(1, 2)
        assert table.as_pairs() == ((1, 2), (3, 1))


def build_stability_sim(n=10, seed=0, loss=0.0, gossip_interval=20.0):
    simulation = RrmpSimulation(
        single_region(n),
        config=RrmpConfig(session_interval=25.0),
        seed=seed,
        latency=ConstantLatency(5.0),
        outcome=BernoulliOutcome(loss),
        policy_factory=lambda _node: StabilityBufferPolicy(),
    )
    agents = attach_stability(list(simulation.members.values()),
                              gossip_interval=gossip_interval)
    return simulation, agents


class TestStabilityProtocol:
    def test_nothing_discarded_before_stability(self):
        simulation, _agents = build_stability_sim(n=10)
        simulation.sender.multicast()
        simulation.run(duration=10.0)  # before any gossip round
        assert simulation.buffering_count(1) == 10

    def test_stable_message_discarded_everywhere(self):
        simulation, agents = build_stability_sim(n=10)
        simulation.sender.multicast()
        simulation.run(duration=3_000.0)
        assert simulation.all_received(1)
        assert simulation.buffering_count(1) == 0
        for agent in agents:
            assert agent.stable_frontier >= 1

    def test_discard_reason_is_stable(self):
        simulation, _agents = build_stability_sim(n=6)
        simulation.sender.multicast()
        simulation.run(duration=3_000.0)
        reasons = {record["reason"]
                   for record in simulation.trace.of_kind("buffer_discard")}
        assert reasons == {"stable"}

    def test_slow_member_gates_global_stability(self):
        """A member that misses the message delays everyone's discard."""
        from repro.net.ipmulticast import FixedHolders
        simulation = RrmpSimulation(
            single_region(6),
            config=RrmpConfig(session_interval=None),  # loss never detected
            seed=3,
            latency=ConstantLatency(5.0),
            outcome=FixedHolders({0, 1, 2, 3, 4}),  # node 5 misses seq 1
            policy_factory=lambda _node: StabilityBufferPolicy(),
        )
        attach_stability(list(simulation.members.values()))
        simulation.sender.multicast()
        simulation.run(duration=3_000.0)
        # Node 5 never learns of the message, so its watermark stays 0
        # and nobody may discard: the safety property under the cost
        # the paper criticises.
        assert simulation.buffering_count(1) == 5

    def test_stability_generates_control_traffic(self):
        simulation, _agents = build_stability_sim(n=10)
        simulation.sender.multicast()
        simulation.run(duration=1_000.0)
        digests = simulation.network.stats.sent_by_type.get("WatermarkDigest", 0)
        assert digests > 50  # periodic cost even with zero loss

    def test_stability_with_real_loss_still_converges(self):
        simulation, _agents = build_stability_sim(n=12, seed=5, loss=0.25)
        for _ in range(4):
            simulation.sender.multicast()
        simulation.run(duration=5_000.0)
        for seq in range(1, 5):
            assert simulation.all_received(seq)
        assert simulation.buffer_occupancy() == 0

    def test_agents_stop_cleanly(self):
        simulation, agents = build_stability_sim(n=5)
        simulation.sender.multicast()
        simulation.run(duration=100.0)
        for agent in agents:
            agent.stop()
        simulation.run(duration=100.0)
        # No gossip events regenerate after stop.
        digests_before = simulation.network.stats.sent_by_type.get("WatermarkDigest", 0)
        simulation.run(duration=500.0)
        digests_after = simulation.network.stats.sent_by_type.get("WatermarkDigest", 0)
        assert digests_before == digests_after
