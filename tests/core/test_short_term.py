"""Unit tests for feedback-based short-term buffering (§3.1)."""

import pytest

from repro.core.short_term import FeedbackIdleTracker


@pytest.fixture
def idle_log():
    return []


@pytest.fixture
def tracker(sim, idle_log):
    return FeedbackIdleTracker(sim, idle_threshold=40.0,
                               on_idle=lambda seq: idle_log.append((sim.now, seq)))


class TestIdleDetection:
    def test_idle_fires_after_threshold(self, sim, tracker, idle_log):
        tracker.track(1)
        sim.run()
        assert idle_log == [(pytest.approx(40.0), 1)]

    def test_refresh_pushes_idle_back(self, sim, tracker, idle_log):
        """Each request resets the countdown to now + T (the paper's rule)."""
        tracker.track(1)
        for t in (10.0, 20.0, 30.0, 60.0):
            sim.at(t, tracker.refresh, 1)
        sim.run()
        assert idle_log == [(pytest.approx(100.0), 1)]  # 60 + 40

    def test_refresh_unknown_seq_returns_false(self, tracker):
        assert tracker.refresh(99) is False

    def test_refresh_known_seq_returns_true(self, tracker):
        tracker.track(1)
        assert tracker.refresh(1) is True

    def test_untrack_cancels_idle(self, sim, tracker, idle_log):
        tracker.track(1)
        sim.at(10.0, tracker.untrack, 1)
        sim.run()
        assert idle_log == []

    def test_track_is_idempotent(self, sim, tracker, idle_log):
        tracker.track(1)
        sim.at(20.0, tracker.track, 1)  # must NOT reset the deadline
        sim.run()
        assert idle_log == [(pytest.approx(40.0), 1)]

    def test_independent_messages(self, sim, tracker, idle_log):
        tracker.track(1)
        sim.at(10.0, tracker.track, 2)
        sim.at(30.0, tracker.refresh, 1)
        sim.run()
        assert idle_log == [(pytest.approx(50.0), 2), (pytest.approx(70.0), 1)]

    def test_tracking_state(self, sim, tracker):
        tracker.track(1)
        assert tracker.is_tracking(1)
        assert tracker.tracked_count == 1
        assert tracker.idle_deadline(1) == pytest.approx(40.0)
        sim.run()
        assert not tracker.is_tracking(1)
        assert tracker.tracked_count == 0

    def test_idle_deadline_unknown_raises(self, tracker):
        with pytest.raises(KeyError):
            tracker.idle_deadline(99)

    def test_close_cancels_everything(self, sim, tracker, idle_log):
        tracker.track(1)
        tracker.track(2)
        tracker.close()
        sim.run()
        assert idle_log == []
        assert tracker.tracked_count == 0

    def test_invalid_threshold_rejected(self, sim):
        with pytest.raises(ValueError):
            FeedbackIdleTracker(sim, idle_threshold=0.0, on_idle=lambda seq: None)

    def test_retrack_after_idle(self, sim, tracker, idle_log):
        """A message received again after idling gets a fresh countdown."""
        tracker.track(1)
        sim.run()
        assert len(idle_log) == 1
        tracker.track(1)
        sim.run()
        assert idle_log[1] == (pytest.approx(80.0), 1)
