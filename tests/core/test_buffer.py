"""Unit tests for the message buffer store."""

import pytest

from repro.core.buffer import DISCARD_IDLE, DISCARD_TTL, MessageBuffer
from repro.protocol.messages import DataMessage


def msg(seq: int) -> DataMessage:
    return DataMessage(seq=seq, sender=0)


class TestStorage:
    def test_add_and_query(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=10.0)
        assert 1 in buffer
        assert buffer.occupancy == 1
        assert buffer.data(1).seq == 1
        assert buffer.get(1).receive_time == 10.0

    def test_add_is_idempotent(self):
        buffer = MessageBuffer()
        first = buffer.add(msg(1), now=10.0)
        second = buffer.add(msg(1), now=99.0)
        assert first is second
        assert buffer.get(1).receive_time == 10.0

    def test_missing_queries_return_none(self):
        buffer = MessageBuffer()
        assert buffer.get(1) is None
        assert buffer.data(1) is None
        assert 1 not in buffer

    def test_seqs_preserve_insertion_order(self):
        buffer = MessageBuffer()
        for seq in (3, 1, 2):
            buffer.add(msg(seq), now=0.0)
        assert list(buffer.seqs()) == [3, 1, 2]

    def test_long_term_seqs(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=0.0)
        entry = buffer.add(msg(2), now=0.0, long_term=True)
        assert entry.long_term
        assert list(buffer.long_term_seqs()) == [2]

    def test_last_use_defaults_to_receive_time(self):
        buffer = MessageBuffer()
        entry = buffer.add(msg(1), now=25.0)
        assert entry.last_use_time == 25.0


class TestDiscard:
    def test_discard_records_episode(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=10.0)
        entry = buffer.discard(1, now=50.0, reason=DISCARD_IDLE)
        assert entry is not None
        assert 1 not in buffer
        record = buffer.records[0]
        assert record.duration == pytest.approx(40.0)
        assert record.reason == DISCARD_IDLE
        assert not record.was_long_term

    def test_discard_missing_returns_none(self):
        buffer = MessageBuffer()
        assert buffer.discard(1, now=0.0, reason=DISCARD_IDLE) is None
        assert buffer.records == []

    def test_discard_all(self):
        buffer = MessageBuffer()
        for seq in range(5):
            buffer.add(msg(seq), now=0.0)
        removed = buffer.discard_all(now=100.0)
        assert len(removed) == 5
        assert buffer.occupancy == 0
        assert len(buffer.records) == 5

    def test_long_term_flag_recorded(self):
        buffer = MessageBuffer()
        entry = buffer.add(msg(1), now=0.0)
        entry.long_term = True
        buffer.discard(1, now=10.0, reason=DISCARD_TTL)
        assert buffer.records[0].was_long_term

    def test_durations_filter_by_reason(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=0.0)
        buffer.add(msg(2), now=0.0)
        buffer.discard(1, now=40.0, reason=DISCARD_IDLE)
        buffer.discard(2, now=100.0, reason=DISCARD_TTL)
        assert buffer.durations(reason=DISCARD_IDLE) == [pytest.approx(40.0)]
        assert sorted(buffer.durations()) == [pytest.approx(40.0), pytest.approx(100.0)]


class TestLongTermIndex:
    """The lazily-maintained long-term set must track every mutation."""

    def _consistent(self, buffer: MessageBuffer) -> None:
        scanned = [entry.seq for entry in buffer.entries() if entry.long_term]
        assert sorted(buffer.long_term_seqs()) == sorted(scanned)
        assert buffer.long_term_count == len(scanned)
        for entry in buffer.entries():
            assert buffer.is_long_term(entry.seq) == entry.long_term

    def test_promote_and_demote(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=0.0)
        buffer.add(msg(2), now=0.0)
        assert buffer.promote(1).long_term
        self._consistent(buffer)
        assert buffer.is_long_term(1)
        assert not buffer.is_long_term(2)
        buffer.demote(1)
        self._consistent(buffer)
        assert buffer.long_term_count == 0

    def test_promote_missing_returns_none(self):
        buffer = MessageBuffer()
        assert buffer.promote(7) is None
        assert buffer.demote(7) is None
        assert buffer.long_term_count == 0

    def test_discard_clears_index(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=0.0, long_term=True)
        buffer.discard(1, now=5.0, reason=DISCARD_TTL)
        self._consistent(buffer)
        assert not buffer.is_long_term(1)
        assert buffer.long_term_count == 0

    def test_long_term_seqs_ordered_by_insertion(self):
        buffer = MessageBuffer()
        for seq in (5, 2, 9):
            buffer.add(msg(seq), now=0.0)
        # Promote in a different order than insertion.
        buffer.promote(9)
        buffer.promote(5)
        assert list(buffer.long_term_seqs()) == [5, 9]

    def test_discard_promote_readd_round_trip(self):
        buffer = MessageBuffer()
        buffer.add(msg(1), now=0.0)
        buffer.promote(1)
        buffer.discard(1, now=10.0, reason=DISCARD_IDLE)
        self._consistent(buffer)
        # Re-admission starts over as short-term.
        entry = buffer.add(msg(1), now=20.0)
        assert not entry.long_term
        self._consistent(buffer)
        buffer.promote(1)
        self._consistent(buffer)
        assert list(buffer.long_term_seqs()) == [1]

    def test_discard_all_clears_index(self):
        buffer = MessageBuffer()
        for seq in (1, 2, 3):
            buffer.add(msg(seq), now=0.0, long_term=seq != 2)
        buffer.discard_all(now=9.0)
        self._consistent(buffer)
        assert buffer.long_term_count == 0
