"""Unit tests for the policy interface and simple baseline policies."""

import pytest

from repro.core.policies import (
    BufferPolicy,
    FixedTimePolicy,
    NeverDiscardPolicy,
    NoBufferPolicy,
)
from repro.protocol.messages import DataMessage


def msg(seq: int) -> DataMessage:
    return DataMessage(seq=seq, sender=0)


class TestNoBufferPolicy:
    def test_never_buffers(self, sim, buffer_host):
        policy = NoBufferPolicy()
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        assert not policy.has(1)
        assert policy.get(1) is None
        assert policy.occupancy == 0


class TestNeverDiscardPolicy:
    def test_keeps_everything(self, sim, buffer_host):
        policy = NeverDiscardPolicy()
        policy.bind(buffer_host)
        for seq in range(10):
            policy.on_receive(msg(seq))
        sim.run(until=1_000_000.0)
        assert policy.occupancy == 10

    def test_drain_for_handoff_default_empty(self, sim, buffer_host):
        policy = NeverDiscardPolicy()
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        assert policy.drain_for_handoff() == []


class TestFixedTimePolicy:
    def test_discards_after_hold_time(self, sim, buffer_host):
        policy = FixedTimePolicy(hold_time=200.0)
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        sim.run(until=199.0)
        assert policy.has(1)
        sim.run(until=201.0)
        assert not policy.has(1)

    def test_requests_do_not_extend_hold(self, sim, buffer_host):
        """The contrast with the feedback scheme: fixed time is blind."""
        policy = FixedTimePolicy(hold_time=100.0)
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        sim.at(90.0, policy.on_request, 1)
        sim.run()
        assert policy.buffer.records[0].discard_time == pytest.approx(100.0)

    def test_discard_record_and_trace(self, sim, buffer_host, trace):
        policy = FixedTimePolicy(hold_time=50.0)
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        sim.run()
        assert policy.buffer.records[0].reason == "fixed-timeout"
        assert trace.count("buffer_discard") == 1

    def test_duplicate_receive_single_expiry(self, sim, buffer_host):
        policy = FixedTimePolicy(hold_time=50.0)
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        policy.on_receive(msg(1))
        sim.run()
        assert len(policy.buffer.records) == 1

    def test_close_cancels_expiries(self, sim, buffer_host):
        policy = FixedTimePolicy(hold_time=50.0)
        policy.bind(buffer_host)
        policy.on_receive(msg(1))
        policy.close()
        sim.run()
        # Entry was dropped by close(), not by the (cancelled) expiry.
        assert policy.buffer.records[0].reason == "close"

    def test_invalid_hold_time(self):
        with pytest.raises(ValueError):
            FixedTimePolicy(hold_time=0.0)


class TestPolicyBase:
    def test_host_access_before_bind_raises(self):
        policy = NeverDiscardPolicy()
        with pytest.raises(RuntimeError):
            _ = policy.host

    def test_abstract_interface(self):
        with pytest.raises(TypeError):
            BufferPolicy()  # type: ignore[abstract]
