"""Unit tests for the search coordinator (against a fake host)."""


from repro.core.search import SearchCoordinator


class TestRounds:
    def test_begin_forwards_to_a_random_member(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        assert len(search_host.sent) == 1
        dst, request = search_host.sent[0]
        assert dst != search_host.node_id
        assert dst in search_host.members
        assert request.seq == 1
        assert request.waiters == (42,)
        assert request.forwarder == search_host.node_id

    def test_timeout_triggers_next_round(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        sim.run(until=search_host.rtt + 1.0)
        assert len(search_host.sent) == 2

    def test_rounds_keep_repeating_until_stopped(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        sim.run(until=55.0)  # RTT=10 -> rounds at 0,10,20,30,40,50
        assert len(search_host.sent) == 6

    def test_timer_scales_with_timer_factor(self, sim, search_host):
        coordinator = SearchCoordinator(search_host, timer_factor=2.0)
        coordinator.begin(1, [42])
        sim.run(until=15.0)  # 2*RTT = 20ms per round: no retry yet
        assert len(search_host.sent) == 1

    def test_max_rounds_abandons(self, sim, search_host, trace):
        coordinator = SearchCoordinator(search_host, max_rounds=3)
        coordinator.begin(1, [42])
        sim.run(until=500.0)
        assert len(search_host.sent) == 3
        assert trace.count("search_abandoned") == 1
        assert not coordinator.is_searching(1)

    def test_single_member_region_idles(self, sim, trace):
        from tests.conftest import FakeSearchHost
        host = FakeSearchHost(sim, trace, node_id=0, members=[0])
        coordinator = SearchCoordinator(host)
        coordinator.begin(1, [42])
        sim.run()
        assert host.sent == []


class TestTermination:
    def test_have_reply_stops_search(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        sim.at(5.0, coordinator.on_have_reply, 1)
        sim.run(until=100.0)
        assert len(search_host.sent) == 1  # no retries after the reply
        assert not coordinator.is_searching(1)

    def test_resolve_returns_waiters(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42, 17])
        waiters = coordinator.resolve(1)
        assert waiters == (17, 42)
        assert not coordinator.is_searching(1)

    def test_resolve_unknown_seq_returns_empty(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        assert coordinator.resolve(99) == ()

    def test_close_stops_everything(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        coordinator.begin(2, [43])
        coordinator.close()
        sim.run(until=100.0)
        assert len(search_host.sent) == 2  # only the initial forwards
        assert coordinator.active_seqs() == []


class TestWaiterMerging:
    def test_begin_merges_waiters_without_new_round(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        coordinator.begin(1, [43])
        assert len(search_host.sent) == 1  # no duplicate immediate round
        assert coordinator.waiters_for(1) == {42, 43}

    def test_later_rounds_carry_merged_waiters(self, sim, search_host):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        coordinator.begin(1, [43])
        sim.run(until=11.0)
        _dst, request = search_host.sent[-1]
        assert request.waiters == (42, 43)

    def test_trace_search_joined(self, sim, search_host, trace):
        coordinator = SearchCoordinator(search_host)
        coordinator.begin(1, [42])
        assert trace.count("search_joined") == 1
        coordinator.begin(1, [43])  # merge, not a new join
        assert trace.count("search_joined") == 1
