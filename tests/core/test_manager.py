"""Unit tests for the two-phase buffer policy (§3, the contribution)."""

import pytest

from repro.core.manager import TwoPhaseBufferPolicy
from repro.protocol.messages import DataMessage
from tests.conftest import FakeBufferHost


def msg(seq: int) -> DataMessage:
    return DataMessage(seq=seq, sender=0)


def make_policy(host, c=6.0, t=40.0, ttl=None):
    policy = TwoPhaseBufferPolicy(idle_threshold=t, long_term_c=c, long_term_ttl=ttl)
    policy.bind(host)
    return policy


class TestShortTermPhase:
    def test_receive_buffers_and_arms_idle(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(1))
        assert policy.has(1)
        sim.run()
        assert not policy.has(1)  # idle at T=40, C=0 -> discarded

    def test_requests_extend_buffering(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(1))
        for t in (30.0, 60.0, 90.0):
            sim.at(t, policy.on_request, 1)
        sim.run()
        records = policy.buffer.records
        assert len(records) == 1
        assert records[0].discard_time == pytest.approx(130.0)  # 90 + 40

    def test_request_for_unbuffered_seq_ignored(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_request(99)  # no crash, no state
        assert policy.occupancy == 0

    def test_duplicate_receive_keeps_original_entry(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(1))
        sim.run(until=10.0)
        policy.on_receive(msg(1))
        sim.run()
        assert policy.buffer.records[0].receive_time == 0.0

    def test_trace_records_emitted(self, sim, buffer_host, trace):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(1))
        sim.run()
        assert trace.count("buffer_add") == 1
        assert trace.count("buffer_idle") == 1
        assert trace.count("buffer_discard") == 1
        discard = trace.first("buffer_discard")
        assert discard["reason"] == "idle"
        assert discard["duration"] == pytest.approx(40.0)


class TestLongTermPhase:
    def test_c_equal_region_size_always_promotes(self, sim, buffer_host):
        buffer_host.set_region_size(5)
        policy = make_policy(buffer_host, c=10.0)  # P = min(1, 10/5) = 1
        policy.on_receive(msg(1))
        sim.run()
        assert policy.has(1)
        assert policy.buffer.get(1).long_term

    def test_promotion_probability_is_c_over_n(self, sim, buffer_host):
        buffer_host.set_region_size(100)
        policy = make_policy(buffer_host, c=50.0)  # P = 0.5
        total = 400
        for seq in range(total):
            policy.on_receive(msg(seq))
        sim.run()
        kept = policy.occupancy
        assert 140 < kept < 260  # ~Binomial(400, 0.5)

    def test_long_term_entry_survives_idle(self, sim, buffer_host):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0)
        policy.on_receive(msg(1))
        sim.run()
        assert policy.has(1)

    def test_ttl_discards_unused_long_term_entry(self, sim, buffer_host):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0, ttl=200.0)
        policy.on_receive(msg(1))
        sim.run()
        assert not policy.has(1)
        record = policy.buffer.records[0]
        assert record.reason == "long-term-ttl"
        assert record.was_long_term
        # idle at 40, TTL 200 after promotion -> discard at 240
        assert record.discard_time == pytest.approx(240.0)

    def test_serving_touches_ttl(self, sim, buffer_host, trace):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0, ttl=200.0)
        policy.on_receive(msg(1))
        sim.at(100.0, policy.on_request, 1)  # promoted at 40; used at 100
        sim.run()
        record = policy.buffer.records[0]
        assert record.discard_time == pytest.approx(300.0)  # 100 + 200

    def test_long_term_selected_trace(self, sim, buffer_host, trace):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0)
        policy.on_receive(msg(1))
        sim.run()
        assert trace.count("long_term_selected") == 1


class TestHandoff:
    def test_drain_returns_only_long_term_entries(self, sim, buffer_host):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0)
        policy.on_receive(msg(1))
        sim.run()  # promoted
        policy.on_receive(msg(2))  # still short-term
        drained = policy.drain_for_handoff()
        assert [d.seq for d in drained] == [1]
        assert not policy.has(1)
        assert policy.has(2)

    def test_accept_handoff_installs_long_term(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.accept_handoff(msg(5))
        assert policy.has(5)
        assert policy.buffer.get(5).long_term
        sim.run()  # no idle timer should discard it
        assert policy.has(5)

    def test_accept_handoff_promotes_existing_short_term_entry(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(5))
        policy.accept_handoff(msg(5))
        sim.run()
        assert policy.has(5)  # idle timer was cancelled by promotion

    def test_handoff_records_reason(self, sim, buffer_host):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0)
        policy.on_receive(msg(1))
        sim.run()
        policy.drain_for_handoff()
        assert policy.buffer.records[0].reason == "handoff"


class TestLongTermHandoffPath:
    """Satellite coverage for drain_for_handoff / accept_handoff:
    promotion of buffered entries, TTL re-arming, trace shapes."""

    def test_accept_handoff_arms_ttl(self, sim, buffer_host):
        """A handed-off entry is not immortal: the long-term TTL is
        armed from the moment of acceptance."""
        policy = make_policy(buffer_host, c=0.0, ttl=200.0)
        sim.run(until=50.0)
        policy.accept_handoff(msg(5))
        sim.run()
        assert not policy.has(5)
        [record] = policy.buffer.records
        assert record.reason == "long-term-ttl"
        assert record.was_long_term
        assert record.discard_time == pytest.approx(250.0)  # 50 + TTL

    def test_promoting_handoff_rearms_ttl_from_acceptance(self, sim, buffer_host):
        """Promotion of an already-buffered short-term entry restarts
        the use clock: the TTL counts from the handoff, not from the
        original receipt."""
        policy = make_policy(buffer_host, c=0.0, ttl=200.0)
        policy.on_receive(msg(5))          # received at t=0, idle at 40
        sim.run(until=30.0)
        policy.accept_handoff(msg(5))      # promoted at t=30
        sim.run()
        [record] = policy.buffer.records
        assert record.reason == "long-term-ttl"
        assert record.receive_time == 0.0  # the original entry survived
        assert record.discard_time == pytest.approx(230.0)  # 30 + TTL

    def test_requests_rearm_ttl_of_handed_off_entry(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0, ttl=200.0)
        policy.accept_handoff(msg(5))
        sim.at(150.0, policy.on_request, 5)
        sim.run()
        [record] = policy.buffer.records
        assert record.discard_time == pytest.approx(350.0)  # 150 + TTL

    def test_drain_disarms_ttl_and_empties_long_term(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0, ttl=200.0)
        policy.accept_handoff(msg(5))
        policy.accept_handoff(msg(6))
        drained = policy.drain_for_handoff()
        assert sorted(d.seq for d in drained) == [5, 6]
        assert policy.occupancy == 0
        sim.run()  # no TTL timer may fire after the drain
        reasons = {record.reason for record in policy.buffer.records}
        assert reasons == {"handoff"}

    def test_drain_trace_event_shape(self, sim, buffer_host, trace):
        buffer_host.set_region_size(1)
        policy = make_policy(buffer_host, c=1.0)
        policy.on_receive(msg(1))
        sim.run()  # idle at 40, promoted (C/n = 1)
        sim.run(until=100.0)
        policy.drain_for_handoff()
        [discard] = list(trace.of_kind("buffer_discard"))
        assert discard["node"] == buffer_host.node_id
        assert discard["seq"] == 1
        assert discard["reason"] == "handoff"
        assert discard["was_long_term"] is True
        assert discard["duration"] == pytest.approx(100.0)

    def test_accept_handoff_trace_event_shape(self, sim, buffer_host, trace):
        policy = make_policy(buffer_host, c=0.0)
        policy.accept_handoff(msg(5))
        added = trace.first("buffer_add")
        assert added is not None and added["seq"] == 5
        selected = trace.first("long_term_selected")
        assert selected["node"] == buffer_host.node_id
        assert selected["seq"] == 5
        assert selected["via"] == "handoff"

    def test_promotion_emits_handoff_trace_without_new_add(self, sim, buffer_host, trace):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(5))
        policy.accept_handoff(msg(5))
        assert trace.count("buffer_add") == 1  # promotion, not re-add
        selected = trace.first("long_term_selected")
        assert selected["via"] == "handoff"


class TestLifecycle:
    def test_bind_required(self):
        policy = TwoPhaseBufferPolicy()
        with pytest.raises(RuntimeError):
            policy.on_receive(msg(1))

    def test_close_cancels_timers_and_drops_state(self, sim, buffer_host):
        policy = make_policy(buffer_host, c=0.0)
        policy.on_receive(msg(1))
        policy.close()
        sim.run()
        assert policy.occupancy == 0
        # No idle trace: the timer was cancelled, not fired.
        assert buffer_host.trace.count("buffer_idle") == 0


class TestHandoffIndexConsistency:
    """Index integrity across drain_for_handoff / accept_handoff trips."""

    def _build(self, sim, trace, seed=99):
        host = FakeBufferHost(sim, trace, seed=seed)
        policy = TwoPhaseBufferPolicy(idle_threshold=40.0, long_term_c=200.0)
        policy.bind(host)
        return policy

    def test_handoff_round_trip_keeps_index_in_sync(self, sim, trace):
        leaver = self._build(sim, trace, seed=1)
        receiver = self._build(sim, trace, seed=2)
        for seq in (1, 2, 3):
            leaver.on_receive(DataMessage(seq=seq, sender=0))
        sim.run()  # C=200 over n=100: every idle entry promotes
        assert leaver.buffer.long_term_count == 3
        transferred = leaver.drain_for_handoff()
        assert {data.seq for data in transferred} == {1, 2, 3}
        assert leaver.buffer.long_term_count == 0
        assert leaver.buffer.occupancy == 0
        assert list(leaver.buffer.long_term_seqs()) == []
        for data in transferred:
            receiver.accept_handoff(data)
        assert receiver.buffer.long_term_count == 3
        assert sorted(receiver.buffer.long_term_seqs()) == [1, 2, 3]
        for seq in (1, 2, 3):
            assert receiver.buffer.is_long_term(seq)

    def test_accept_handoff_promotes_existing_short_term_entry(self, sim, trace):
        policy = self._build(sim, trace)
        data = DataMessage(seq=4, sender=0)
        policy.on_receive(data)
        assert not policy.buffer.is_long_term(4)
        policy.accept_handoff(data)
        assert policy.buffer.is_long_term(4)
        assert policy.buffer.long_term_count == 1
        assert not policy.short_term.is_tracking(4)
