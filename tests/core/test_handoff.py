"""Unit tests for leave-time handoff planning (§3.2)."""

import random

from repro.core.handoff import handoff_load, plan_handoff
from repro.protocol.messages import DataMessage


def msgs(count):
    return [DataMessage(seq=i, sender=0) for i in range(1, count + 1)]


class TestPlanHandoff:
    def test_every_message_gets_a_target(self):
        plan = plan_handoff(0, msgs(5), [0, 1, 2, 3], random.Random(1))
        assert len(plan) == 5
        for target, handoff in plan:
            assert target != 0
            assert target in (1, 2, 3)
            assert handoff.from_member == 0

    def test_last_member_cannot_hand_off(self):
        assert plan_handoff(0, msgs(3), [0], random.Random(1)) == []

    def test_empty_buffer_empty_plan(self):
        assert plan_handoff(0, [], [0, 1], random.Random(1)) == []

    def test_targets_are_randomized_per_message(self):
        plan = plan_handoff(0, msgs(50), list(range(10)), random.Random(3))
        targets = {target for target, _ in plan}
        assert len(targets) > 3  # spread, not dumped on one member

    def test_deterministic_given_rng(self):
        plan_a = plan_handoff(0, msgs(10), [0, 1, 2], random.Random(5))
        plan_b = plan_handoff(0, msgs(10), [0, 1, 2], random.Random(5))
        assert [(t, h.seq) for t, h in plan_a] == [(t, h.seq) for t, h in plan_b]

    def test_handoff_message_carries_data(self):
        data = DataMessage(seq=9, sender=0, payload="body")
        [(_target, handoff)] = plan_handoff(0, [data], [0, 1], random.Random(1))
        assert handoff.data is data
        assert handoff.seq == 9


class TestHandoffLoad:
    def test_histogram(self):
        plan = plan_handoff(0, msgs(100), [0, 1, 2], random.Random(2))
        load = handoff_load(plan)
        assert sum(load.values()) == 100
        assert set(load) <= {1, 2}
        # Roughly even split between the two candidates.
        assert abs(load[1] - load[2]) < 40
