"""Unit tests for randomized long-term buffering (§3.2)."""

import pytest

from repro.core.long_term import RandomizedLongTermSelector, long_term_probability
from repro.sim import RandomStreams


class TestProbability:
    def test_basic_ratio(self):
        assert long_term_probability(6.0, 100) == pytest.approx(0.06)

    def test_clamped_to_one_for_small_regions(self):
        assert long_term_probability(6.0, 3) == 1.0

    def test_zero_c_means_never(self):
        assert long_term_probability(0.0, 100) == 0.0

    def test_empty_region(self):
        assert long_term_probability(6.0, 0) == 0.0

    def test_negative_c_rejected(self):
        with pytest.raises(ValueError):
            long_term_probability(-1.0, 100)


class TestDecide:
    def make(self, sim, c, ttl=None, on_expire=None, seed=5):
        streams = RandomStreams(seed)
        return RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=c,
            ttl=ttl, on_expire=on_expire,
        )

    def test_expected_count_matches_c(self, sim):
        """Mean of Binomial(n, C/n) is C — the §3.2 guarantee."""
        selector = self.make(sim, c=6.0)
        n, trials = 100, 3_000
        total = sum(
            sum(1 for _member in range(n) if selector.decide(n))
            for _trial in range(trials)
        )
        assert total / trials == pytest.approx(6.0, abs=0.25)

    def test_no_bufferer_probability_matches_e_minus_c(self, sim):
        selector = self.make(sim, c=2.0)
        n, trials = 100, 4_000
        empty = sum(
            1 for _ in range(trials)
            if not any(selector.decide(n) for _member in range(n))
        )
        # (1 - 2/100)^100 ~= 0.1326
        assert empty / trials == pytest.approx(0.1326, abs=0.03)

    def test_c_zero_never_keeps(self, sim):
        selector = self.make(sim, c=0.0)
        assert not any(selector.decide(100) for _ in range(100))

    def test_small_region_always_keeps(self, sim):
        selector = self.make(sim, c=6.0)
        assert all(selector.decide(3) for _ in range(50))

    def test_empty_region_never_keeps(self, sim):
        selector = self.make(sim, c=6.0)
        assert not selector.decide(0)


class TestTtl:
    def test_ttl_fires_on_expiry(self, sim):
        expired = []
        streams = RandomStreams(1)
        selector = RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=6.0,
            ttl=100.0, on_expire=lambda seq: expired.append((sim.now, seq)),
        )
        selector.arm_ttl(1)
        sim.run()
        assert expired == [(pytest.approx(100.0), 1)]

    def test_touch_extends_ttl(self, sim):
        expired = []
        streams = RandomStreams(1)
        selector = RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=6.0,
            ttl=100.0, on_expire=lambda seq: expired.append(sim.now),
        )
        selector.arm_ttl(1)
        sim.at(50.0, selector.touch, 1)
        sim.run()
        assert expired == [pytest.approx(150.0)]

    def test_touch_without_arm_is_noop(self, sim):
        streams = RandomStreams(1)
        selector = RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=6.0, ttl=100.0,
        )
        selector.touch(1)  # never armed
        assert sim.pending_events == 0

    def test_disarm_cancels(self, sim):
        expired = []
        streams = RandomStreams(1)
        selector = RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=6.0,
            ttl=100.0, on_expire=lambda seq: expired.append(seq),
        )
        selector.arm_ttl(1)
        selector.disarm(1)
        sim.run()
        assert expired == []

    def test_no_ttl_means_keep_forever(self, sim):
        streams = RandomStreams(1)
        selector = RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=6.0, ttl=None,
        )
        selector.arm_ttl(1)
        assert sim.pending_events == 0

    def test_close_cancels_all_ttls(self, sim):
        expired = []
        streams = RandomStreams(1)
        selector = RandomizedLongTermSelector(
            sim, streams.stream("coins"), expected_bufferers=6.0,
            ttl=100.0, on_expire=lambda seq: expired.append(seq),
        )
        selector.arm_ttl(1)
        selector.arm_ttl(2)
        selector.close()
        sim.run()
        assert expired == []

    def test_invalid_ttl_rejected(self, sim):
        streams = RandomStreams(1)
        with pytest.raises(ValueError):
            RandomizedLongTermSelector(
                sim, streams.stream("coins"), expected_bufferers=6.0, ttl=0.0,
            )
