"""Tests for the SeriesTable JSON round trip and digest."""

import math

from repro.metrics.report import SeriesTable


def sample_table():
    table = SeriesTable(
        title="Figure X — demo", x_label="k", xs=[1, 2, 3],
    )
    table.add_series("mixed cells", [1, 2.5, "label"])
    table.add_series("floats", [0.1, float("nan"), 110.0])
    table.notes.append("paper: a note with unicode — §3.2")
    return table


class TestJsonRoundTrip:
    def test_lossless_for_plain_cells(self):
        table = sample_table()
        clone = SeriesTable.from_json(table.to_json())
        assert clone.title == table.title
        assert clone.x_label == table.x_label
        assert clone.xs == table.xs
        assert clone.notes == table.notes
        assert list(clone.series) == list(table.series)  # order preserved
        assert clone.series["mixed cells"] == table.series["mixed cells"]

    def test_int_float_distinction_survives(self):
        table = SeriesTable(title="t", x_label="x", xs=[1])
        table.add_series("s", [2])
        clone = SeriesTable.from_json(table.to_json())
        assert isinstance(clone.xs[0], int)
        assert isinstance(clone.series["s"][0], int)

    def test_nan_survives(self):
        clone = SeriesTable.from_json(sample_table().to_json())
        assert math.isnan(clone.series["floats"][1])

    def test_rendered_text_identical_after_roundtrip(self):
        table = sample_table()
        assert SeriesTable.from_json(table.to_json()).to_text() == table.to_text()


class TestDigest:
    def test_stable_across_equal_tables(self):
        assert sample_table().digest() == sample_table().digest()

    def test_sensitive_to_values(self):
        table = sample_table()
        other = sample_table()
        other.series["mixed cells"][0] = 99
        assert table.digest() != other.digest()

    def test_sensitive_to_series_order(self):
        first = SeriesTable(title="t", x_label="x", xs=[1])
        first.add_series("a", [1])
        first.add_series("b", [2])
        second = SeriesTable(title="t", x_label="x", xs=[1])
        second.add_series("b", [2])
        second.add_series("a", [1])
        assert first.digest() != second.digest()
