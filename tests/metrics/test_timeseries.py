"""Tests for step time series and trace counters."""

import pytest

from repro.metrics.timeseries import StepSeries, TraceCounter
from repro.sim import TraceLog


class TestStepSeries:
    def test_value_before_first_step_is_initial(self):
        series = StepSeries(initial=5.0)
        assert series.value_at(0.0) == 5.0

    def test_right_continuous_steps(self):
        series = StepSeries()
        series.record(10.0, 3.0)
        assert series.value_at(9.999) == 0.0
        assert series.value_at(10.0) == 3.0
        assert series.value_at(11.0) == 3.0

    def test_step_applies_delta(self):
        series = StepSeries()
        series.step(1.0, +2)
        series.step(2.0, +3)
        series.step(3.0, -1)
        assert series.value_at(3.5) == 4.0

    def test_same_time_overwrites(self):
        series = StepSeries()
        series.record(1.0, 1.0)
        series.record(1.0, 2.0)
        assert series.value_at(1.0) == 2.0
        assert len(series) == 1

    def test_out_of_order_rejected(self):
        series = StepSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 2.0)

    def test_sample_grid(self):
        series = StepSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        points = series.sample(0.0, 20.0, 5.0)
        assert points == [(0.0, 1.0), (5.0, 1.0), (10.0, 2.0), (15.0, 2.0), (20.0, 2.0)]

    def test_sample_requires_positive_dt(self):
        with pytest.raises(ValueError):
            StepSeries().sample(0.0, 1.0, 0.0)

    def test_final_value_and_last_time(self):
        series = StepSeries()
        assert series.final_value == 0.0
        assert series.last_time is None
        series.record(3.0, 7.0)
        assert series.final_value == 7.0
        assert series.last_time == 3.0


class TestTraceCounter:
    def test_counts_up_and_down(self):
        trace = TraceLog()
        counter = TraceCounter(trace, up="add", down="remove")
        trace.emit(1.0, "add")
        trace.emit(2.0, "add")
        trace.emit(3.0, "remove")
        assert counter.series.value_at(2.5) == 2.0
        assert counter.series.value_at(3.5) == 1.0

    def test_predicate_filters(self):
        trace = TraceLog()
        counter = TraceCounter(trace, up="add",
                               predicate=lambda record: record["seq"] == 1)
        trace.emit(1.0, "add", seq=1)
        trace.emit(2.0, "add", seq=2)
        assert counter.series.final_value == 1.0

    def test_figure7_style_counts(self):
        """The fig7 usage pattern: received counts vs buffer census."""
        trace = TraceLog()
        received = TraceCounter(trace, up="member_received")
        buffered = TraceCounter(trace, up="buffer_add", down="buffer_discard")
        trace.emit(0.0, "member_received", node=1)
        trace.emit(0.0, "buffer_add", node=1)
        trace.emit(10.0, "member_received", node=2)
        trace.emit(10.0, "buffer_add", node=2)
        trace.emit(50.0, "buffer_discard", node=1)
        assert received.series.value_at(60.0) == 2.0
        assert buffered.series.value_at(60.0) == 1.0
