"""Unified RunReport tests: the one summary shape all CLIs print."""

import json

import pytest

from repro.metrics import RunReport


def _report(**overrides):
    defaults = dict(kind="scenario", scenario="search", seed=3,
                    metrics={"delivered_fraction": 1.0, "messages": 30})
    defaults.update(overrides)
    return RunReport(**defaults)


class TestPayload:
    def test_metrics_are_the_payload(self):
        report = _report()
        assert report.payload() == {"delivered_fraction": 1.0, "messages": 30}

    def test_oracle_nests_when_present(self):
        report = _report(oracle={"violation_count": 0})
        assert report.payload()["oracle"] == {"violation_count": 0}

    def test_payload_is_a_copy(self):
        report = _report()
        report.payload()["messages"] = 99
        assert report.payload()["messages"] == 30


class TestJson:
    def test_to_json_round_trips(self):
        report = _report()
        assert json.loads(report.to_json()) == report.payload()

    def test_indent_changes_text_not_value(self):
        report = _report()
        assert json.loads(report.to_json(indent=2)) == json.loads(report.to_json())


class TestDigest:
    def test_stable_for_equal_payloads(self):
        assert _report().digest() == _report().digest()

    def test_key_order_does_not_matter(self):
        a = RunReport(kind="live", scenario="s", seed=1,
                      metrics={"x": 1, "y": 2})
        b = RunReport(kind="live", scenario="s", seed=1,
                      metrics={"y": 2, "x": 1})
        assert a.digest() == b.digest()

    def test_any_metric_change_moves_the_digest(self):
        assert _report().digest() != _report(
            metrics={"delivered_fraction": 0.5, "messages": 30}).digest()


class TestExitCode:
    def test_success_is_zero(self):
        assert _report().exit_code == 0

    def test_failure_is_one(self):
        assert _report(failed=True).exit_code == 1


class TestText:
    def test_default_title_names_kind_scenario_seed(self):
        text = _report().to_text()
        assert text.splitlines()[0] == "== scenario search (seed 3) =="

    def test_explicit_title_wins(self):
        text = _report().to_text("== custom ==")
        assert text.splitlines()[0] == "== custom =="

    def test_keys_aligned_and_floats_compact(self):
        text = _report(metrics={"a": 1, "delivered_fraction": 0.98765432}).to_text()
        lines = text.splitlines()[1:]
        assert any("0.9877" in line for line in lines)  # %.4g float form
        padded = [line.split()[0] for line in lines]
        assert "a" in padded and "delivered_fraction" in padded


class TestDefaults:
    def test_minimal_construction(self):
        report = RunReport(kind="validate", scenario="d", seed=0)
        assert report.payload() == {}
        assert report.exit_code == 0
        assert not report.failed

    def test_failed_flag_does_not_leak_into_payload(self):
        report = _report(failed=True)
        assert "failed" not in report.payload()


class TestDigestMatchesCanonicalJson:
    def test_digest_is_sha256_of_sorted_compact_json(self):
        import hashlib

        report = _report()
        canonical = json.dumps(report.payload(), sort_keys=True,
                               separators=(",", ":"), default=str)
        expected = hashlib.sha256(canonical.encode()).hexdigest()
        assert report.digest() == expected


@pytest.mark.parametrize("kind", ["scenario", "live", "validate"])
def test_all_cli_kinds_construct(kind):
    assert RunReport(kind=kind, scenario="x", seed=0).payload() == {}
