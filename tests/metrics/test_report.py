"""Tests for text-table rendering."""

import pytest

from repro.metrics.report import SeriesTable, format_cell, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_int_unchanged(self):
        assert format_cell(42) == "42"

    def test_string_unchanged(self):
        assert format_cell("abc") == "abc"

    def test_bool_is_not_treated_as_float(self):
        assert format_cell(True) == "True"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["x", "value"], [[1, 10.5], [100, 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_contains_all_cells(self):
        text = render_table(["a"], [[123]])
        assert "a" in text and "123" in text


class TestSeriesTable:
    def test_rows_align_series(self):
        table = SeriesTable(title="t", x_label="x", xs=[1, 2])
        table.add_series("y", [10, 20])
        table.add_series("z", [30, 40])
        assert table.rows() == [[1, 10, 30], [2, 20, 40]]

    def test_mismatched_series_rejected(self):
        table = SeriesTable(title="t", x_label="x", xs=[1, 2])
        with pytest.raises(ValueError):
            table.add_series("y", [10])

    def test_to_text_includes_title_and_notes(self):
        table = SeriesTable(title="My Figure", x_label="x", xs=[1])
        table.add_series("y", [2])
        table.notes.append("shape matches")
        text = table.to_text()
        assert "My Figure" in text
        assert "note: shape matches" in text
        assert "x" in text and "y" in text
