"""Unit tests for the makespan tracker (repro.metrics.makespan)."""

import pytest

from repro.metrics.makespan import MakespanTracker


def deliver(trace, time, seq, node=0):
    trace.emit(time, "member_received", node=node, seq=seq, via="multicast")


class TestEmpty:
    def test_session_makespan_is_zero(self):
        assert MakespanTracker().session_makespan() == 0.0

    def test_summary_is_all_zeros(self):
        summary = MakespanTracker().summary()
        assert set(summary) == {
            "makespan_session_ms", "makespan_seq_mean_ms",
            "makespan_seq_p50_ms", "makespan_seq_p90_ms",
            "makespan_seq_max_ms",
        }
        assert all(value == 0.0 for value in summary.values())

    def test_queries_report_nothing(self):
        tracker = MakespanTracker()
        assert tracker.per_seq() == {}
        assert tracker.seq_makespan(1) is None
        assert tracker.last_delivery_time() is None
        assert tracker.delivery_count == 0


class TestTracking:
    def test_per_seq_span_is_first_to_last(self, trace):
        tracker = MakespanTracker().attach(trace)
        deliver(trace, 10.0, seq=1, node=0)
        deliver(trace, 25.0, seq=1, node=1)
        deliver(trace, 18.0, seq=1, node=2)
        assert tracker.seq_makespan(1) == pytest.approx(15.0)
        assert tracker.delivery_count == 3

    def test_single_delivery_has_zero_makespan(self, trace):
        tracker = MakespanTracker().attach(trace)
        deliver(trace, 42.0, seq=1)
        assert tracker.seq_makespan(1) == 0.0
        assert tracker.session_makespan() == 0.0

    def test_session_spans_across_seqs(self, trace):
        tracker = MakespanTracker().attach(trace)
        deliver(trace, 10.0, seq=1)
        deliver(trace, 30.0, seq=1)
        deliver(trace, 50.0, seq=2)
        deliver(trace, 90.0, seq=2)
        assert tracker.session_makespan() == pytest.approx(80.0)
        assert tracker.last_delivery_time() == 90.0
        assert tracker.per_seq() == {1: 20.0, 2: 40.0}

    def test_out_of_order_records_are_folded_in(self, trace):
        """Subscribers see records in emit order, which for a sharded
        or merged trace may not be time order."""
        tracker = MakespanTracker().attach(trace)
        deliver(trace, 50.0, seq=1)
        deliver(trace, 5.0, seq=1)
        assert tracker.seq_makespan(1) == pytest.approx(45.0)

    def test_other_record_kinds_are_ignored(self, trace):
        tracker = MakespanTracker().attach(trace)
        trace.emit(10.0, "repair_sent", node=0, seq=1, to=2, scope="local")
        assert tracker.delivery_count == 0

    def test_summary_percentiles(self, trace):
        tracker = MakespanTracker().attach(trace)
        for seq, span in enumerate((10.0, 20.0, 30.0, 40.0), start=1):
            deliver(trace, 100.0, seq=seq)
            deliver(trace, 100.0 + span, seq=seq)
        summary = tracker.summary()
        assert summary["makespan_seq_mean_ms"] == pytest.approx(25.0)
        assert summary["makespan_seq_p50_ms"] == pytest.approx(25.0)
        assert summary["makespan_seq_max_ms"] == 40.0
        assert summary["makespan_session_ms"] == pytest.approx(40.0)
