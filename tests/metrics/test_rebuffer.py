"""Tests for the playout/rebuffer model (repro.metrics.rebuffer)."""

from __future__ import annotations

import pytest

from repro.metrics.rebuffer import PlayoutClock, RebufferTracker, replay_rebuffer
from repro.sim.tracing import TraceLog


class TestPlayoutClock:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            PlayoutClock(0.0, 100.0)
        with pytest.raises(ValueError, match="startup_delay"):
            PlayoutClock(25.0, -1.0)

    def test_on_time_stream_never_stalls(self):
        clock = PlayoutClock(interval=25.0, startup_delay=100.0)
        for index in range(10):
            clock.on_arrival(index + 1, 10.0 + index * 25.0)
        assert clock.stall_events == 0
        assert clock.stall_time == 0.0
        assert clock.frames_played == 10

    def test_late_frame_stalls_once_and_pauses_playback(self):
        clock = PlayoutClock(interval=25.0, startup_delay=0.0)
        clock.on_arrival(1, 0.0)    # deadline for seq 2 is now 25.0
        clock.on_arrival(2, 100.0)  # 75 ms late: one stall
        assert clock.stall_events == 1
        assert clock.stall_time == 75.0
        # Playback paused: seq 3's deadline moved to 100 + 25 = 125.
        clock.on_arrival(3, 125.0)
        assert clock.stall_events == 1

    def test_one_long_gap_counts_one_stall(self):
        """Frames 2..4 all arrive together after a long gap: the stall
        bill is charged once (deadline resets to the late arrival)."""
        clock = PlayoutClock(interval=25.0, startup_delay=0.0)
        clock.on_arrival(1, 0.0)
        for seq in (2, 3, 4):
            clock.on_arrival(seq, 500.0)
        assert clock.stall_events == 1
        assert clock.stall_time == 500.0 - 25.0
        assert clock.frames_played == 4

    def test_out_of_order_arrivals_play_in_order(self):
        clock = PlayoutClock(interval=25.0, startup_delay=100.0)
        clock.on_arrival(1, 0.0)
        clock.on_arrival(3, 10.0)   # buffered, not played
        assert clock.frames_played == 1
        clock.on_arrival(2, 20.0)   # releases 2 and 3
        assert clock.frames_played == 3

    def test_frames_below_the_tune_in_point_are_skipped(self):
        clock = PlayoutClock(interval=25.0, startup_delay=100.0)
        clock.on_arrival(5, 0.0)
        clock.on_arrival(3, 10.0)
        assert clock.skipped == 1
        assert clock.frames_played == 1

    def test_startup_delay_absorbs_early_jitter(self):
        clock = PlayoutClock(interval=25.0, startup_delay=200.0)
        clock.on_arrival(1, 0.0)
        clock.on_arrival(2, 150.0)  # late vs cadence, inside the cushion
        assert clock.stall_events == 0


class TestReplayRebuffer:
    def test_batch_twin_matches_streaming(self):
        arrivals = [(1, 0.0), (3, 10.0), (2, 80.0), (4, 300.0)]
        clock = PlayoutClock(25.0, 50.0)
        for seq, time in arrivals:
            clock.on_arrival(seq, time)
        replayed = replay_rebuffer(arrivals, 25.0, 50.0)
        assert (replayed.stall_events, replayed.stall_time,
                replayed.frames_played, replayed.skipped) == (
            clock.stall_events, clock.stall_time,
            clock.frames_played, clock.skipped,
        )


class TestRebufferTracker:
    def test_tracks_per_receiver_clocks_from_the_trace(self):
        trace = TraceLog()
        tracker = RebufferTracker(interval=25.0, startup_delay=0.0).attach(trace)
        trace.emit(0.0, "member_received", node=1, seq=1, via="multicast")
        trace.emit(100.0, "member_received", node=1, seq=2, via="repair")
        trace.emit(0.0, "member_received", node=2, seq=1, via="multicast")
        trace.emit(5.0, "buffer_add", node=1, seq=1)  # other kinds ignored
        assert tracker.receiver_count == 2
        assert tracker.total_stall_events() == 1
        assert tracker.total_stall_time() == 75.0
        assert tracker.total_frames_played() == 3

    def test_summary_is_flat_floats(self):
        trace = TraceLog()
        tracker = RebufferTracker().attach(trace)
        trace.emit(0.0, "member_received", node=1, seq=1, via="multicast")
        summary = tracker.summary()
        assert summary["playout_receivers"] == 1.0
        assert summary["frames_played"] == 1.0
        assert summary["rebuffer_events"] == 0.0
        assert all(isinstance(value, float) for value in summary.values())

    def test_tracker_works_on_streaming_traces(self):
        """keep_records=False traces still fan out to subscribers."""
        trace = TraceLog(keep_records=False)
        tracker = RebufferTracker().attach(trace)
        trace.emit(0.0, "member_received", node=1, seq=1, via="multicast")
        assert tracker.receiver_count == 1
        assert trace.records == []
