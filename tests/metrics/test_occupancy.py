"""Tests for buffer-occupancy probes and balance metrics."""

import pytest

from repro.metrics.occupancy import OccupancyProbe, occupancy_balance, occupancy_summary


class TestOccupancyProbe:
    def test_samples_on_schedule(self, sim):
        value = [0.0]
        probe = OccupancyProbe(sim, lambda: value[0], period=10.0)
        sim.at(15.0, lambda: value.__setitem__(0, 5.0))
        sim.run(until=40.0)
        probe.stop()
        series = probe.series
        assert series.value_at(10.0) == 0.0
        assert series.value_at(20.0) == 5.0

    def test_average(self, sim):
        value = [2.0]
        probe = OccupancyProbe(sim, lambda: value[0], period=10.0)
        sim.run(until=100.0)
        probe.stop()
        assert probe.average() == pytest.approx(2.0)

    def test_stop_halts_sampling(self, sim):
        count = [0]

        def sample():
            count[0] += 1
            return 0.0

        probe = OccupancyProbe(sim, sample, period=10.0)
        sim.at(35.0, probe.stop)
        sim.run(until=200.0)
        assert count[0] == 4  # t = 0, 10, 20, 30


class TestBalance:
    def test_mean_and_max(self):
        mean_value, max_value = occupancy_balance({1: 2, 2: 4, 3: 6})
        assert mean_value == pytest.approx(4.0)
        assert max_value == 6.0

    def test_empty(self):
        assert occupancy_balance({}) == (0.0, 0.0)

    def test_hotspot_detection(self):
        """A repair-server profile: one node holds everything."""
        spread = occupancy_balance({i: 3 for i in range(10)})
        hotspot = occupancy_balance({0: 30, **{i: 0 for i in range(1, 10)}})
        assert spread[0] == hotspot[0]  # same mean
        assert hotspot[1] == 10 * spread[1] / 3 * 3  # far larger peak

    def test_summary(self):
        summary = occupancy_summary({1: 1, 2: 2, 3: 3})
        assert summary.count == 3
        assert summary.maximum == 3.0
