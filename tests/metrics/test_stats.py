"""Tests for descriptive statistics."""

import pytest

from repro.metrics.stats import Summary, mean, percentile, stdev


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == pytest.approx(2.0)

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestStdev:
    def test_known_value(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=0.001
        )

    def test_constant_sample(self):
        assert stdev([3.0, 3.0, 3.0]) == 0.0

    def test_single_value_is_zero(self):
        assert stdev([3.0]) == 0.0


class TestSummary:
    def test_from_values(self):
        summary = Summary.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == pytest.approx(3.0)

    def test_accepts_generators(self):
        summary = Summary.from_values(float(i) for i in range(10))
        assert summary.count == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.from_values([])

    def test_str_is_readable(self):
        text = str(Summary.from_values([1.0, 2.0]))
        assert "mean=" in text and "p95=" in text
