"""Tests for periodic metrics snapshots (daemon-mode health samples)."""

from __future__ import annotations

import json

from repro.metrics.snapshot import (
    DeliveryCounter,
    MetricsSnapshot,
    long_term_buffered,
    take_snapshot,
)
from repro.scenario.registry import get_scenario
from repro.sim import TraceLog


def built_group():
    """A finished sim run of a small registry scenario."""
    built = get_scenario("initial_holders").build()
    built.run()
    return built.simulation


class TestDeliveryCounter:
    def test_counts_member_received_without_retaining_records(self):
        trace = TraceLog(keep_records=False)
        counter = DeliveryCounter(trace)
        trace.emit(1.0, "member_received", node=1, seq=1)
        trace.emit(2.0, "buffer_add", node=1, seq=1)
        trace.emit(3.0, "member_received", node=2, seq=1)
        assert counter.count == 2
        assert trace.records == []


class TestTakeSnapshot:
    def test_snapshot_of_a_finished_sim_run(self):
        group = built_group()
        snapshot = take_snapshot(group)
        assert snapshot.alive_members == 100
        assert snapshot.delivered_total == 100
        assert snapshot.recoveries_completed == 90
        assert snapshot.reliability_violations == 0
        assert snapshot.mean_recovery_latency_ms > 0
        assert snapshot.send_dropped == 0
        assert snapshot.goodput_msgs_per_s > 0

    def test_chained_snapshots_compute_interval_goodput(self):
        group = built_group()
        first = take_snapshot(group)
        second = take_snapshot(group, previous=first)
        # Nothing moved between the two samples: the interval rate is 0
        # (or the whole interval is zero-length, which also reads as 0).
        assert second.goodput_msgs_per_s == 0.0
        assert second.delivered_total == first.delivered_total

    def test_makespan_read_from_groups_that_carry_a_tracker(self):
        """Live sessions expose ``.makespan``; plain simulations don't.
        The snapshot must report the span for the former and a quiet
        0.0 for the latter."""
        from repro.metrics.makespan import MakespanTracker

        group = built_group()
        assert take_snapshot(group).session_makespan_ms == 0.0
        tracker = MakespanTracker()
        for record in group.trace.records:
            if record.kind == "member_received":
                tracker._on_received(record)
        group.makespan = tracker
        assert take_snapshot(group).session_makespan_ms == (
            tracker.session_makespan()
        )
        assert take_snapshot(group).session_makespan_ms > 0.0

    def test_to_dict_is_json_ready(self):
        snapshot = take_snapshot(built_group())
        payload = json.loads(json.dumps(snapshot.to_dict()))
        assert payload["alive_members"] == 100
        assert set(payload) == {
            field for field in MetricsSnapshot.__dataclass_fields__
        }

    def test_long_term_buffered_counts_only_long_term(self):
        group = built_group()
        # Run is drained: every buffer is empty again.
        assert long_term_buffered(group) == 0
