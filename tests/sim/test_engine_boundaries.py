"""Boundary semantics of Simulator.run(max_events=...) and EventQueue
cancellation, including under the process-pool backend (engine state
must never leak across trials that share a worker process)."""

from repro.runner import ProcessPoolBackend, SerialBackend, SweepSpec
from repro.runner._testing import trial_engine_exercise
from repro.sim import EventQueue, Simulator
from repro.sim.engine import total_events_fired


class TestMaxEventsBoundaries:
    def test_zero_fires_nothing(self):
        sim = Simulator()
        fired = []
        sim.after(1.0, fired.append, "a")
        end = sim.run(max_events=0)
        assert fired == []
        assert end == 0.0
        assert sim.pending_events == 1

    def test_exact_queue_size_drains(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.after(float(i + 1), fired.append, i)
        sim.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.pending_events == 0

    def test_stops_one_short_and_resumes(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.after(float(i + 1), fired.append, i)
        end = sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert end == 4.0  # clock stops at the last fired event
        sim.run(max_events=1)
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_do_not_count_against_budget(self):
        sim = Simulator()
        fired = []
        keep = [sim.after(float(i + 10), fired.append, i) for i in range(3)]
        doomed = [sim.after(float(i + 1), fired.append, 100 + i) for i in range(3)]
        for event in doomed:
            event.cancel()
        sim.run(max_events=3)
        assert fired == [0, 1, 2]
        assert all(not event.pending for event in keep)

    def test_max_events_combines_with_until(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.after(float(i + 1), fired.append, i)
        # until would allow 5 events, max_events only 3: max_events wins.
        sim.run(until=5.0, max_events=3)
        assert fired == [0, 1, 2]
        # max_events would allow 5 more, until stops after 2: until wins,
        # and the clock advances exactly to the boundary.
        end = sim.run(until=5.0, max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert end == 5.0

    def test_rescheduling_callback_obeys_budget(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.after(1.0, tick)

        sim.after(1.0, tick)
        sim.run(max_events=7)
        assert count[0] == 7
        assert sim.pending_events == 1  # the next tick remains queued


class TestEventQueueCancellation:
    def test_pop_skips_cancelled_runs(self):
        queue = EventQueue()
        sim = Simulator()
        events = [sim.at(float(i), lambda: None) for i in range(6)]
        for event in events:
            queue.push(event)
        for event in events[:3]:
            event.cancel()
        assert queue.pop() is events[3]
        assert queue.live_count() == 2

    def test_peek_time_prunes_dead_prefix(self):
        queue = EventQueue()
        sim = Simulator()
        early = sim.at(1.0, lambda: None)
        late = sim.at(2.0, lambda: None)
        queue.push(early)
        queue.push(late)
        early.cancel()
        assert queue.peek_time() == 2.0
        assert len(queue) == 1  # the dead entry was dropped during peek

    def test_cancel_all_empties(self):
        queue = EventQueue()
        sim = Simulator()
        events = [sim.at(float(i), lambda: None) for i in range(4)]
        for event in events:
            queue.push(event)
            event.cancel()
        assert queue.pop() is None
        assert queue.peek_time() is None


def _engine_sweep(seeds):
    # max_events stops each trial mid-queue, so every trial *leaves*
    # pending events behind — exactly the state that must not leak into
    # the next trial sharing the worker process.
    return SweepSpec(
        "engine-isolation", trial_engine_exercise,
        [{"events": 40, "cancel_stride": 4, "max_events": 20}],
        list(seeds),
    )


class TestEngineUnderProcessPool:
    def test_trials_see_fresh_engine_state(self):
        outcomes = ProcessPoolBackend(2).run(_engine_sweep(range(8)).trials())
        for outcome in outcomes:
            run = outcome.value
            assert run["clean_clock"] is True
            assert run["live_before"] == 30  # 40 scheduled - 10 cancelled
            assert run["fired"] == 20
            assert run["instance_events"] == 20
            # The process-wide counter delta matches this trial alone:
            # no other trial's events are attributed to it.
            assert run["global_delta"] == 20
            assert run["pending_after"] == 10
            assert outcome.events_fired == 20

    def test_pool_results_identical_to_serial(self):
        serial = [o.value for o in SerialBackend().run(_engine_sweep(range(6)).trials())]
        pooled = [o.value for o in ProcessPoolBackend(3).run(_engine_sweep(range(6)).trials())]
        assert pooled == serial

    def test_parent_engine_counter_untouched_by_workers(self):
        before = total_events_fired()
        ProcessPoolBackend(2).run(_engine_sweep(range(4)).trials())
        assert total_events_fired() == before
