"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_after_fires_at_correct_time(self, sim):
        times = []
        sim.after(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(5.0)]

    def test_at_fires_at_absolute_time(self, sim):
        times = []
        sim.at(7.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(7.5)]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.after(3.0, order.append, "c")
        sim.after(1.0, order.append, "a")
        sim.after(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self, sim):
        order = []
        sim.after(1.0, order.append, "first")
        sim.after(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_scheduling_in_past_raises(self, sim):
        sim.after(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_scheduling_at_now_is_allowed(self, sim):
        fired = []
        sim.at(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_callbacks_can_schedule_more_events(self, sim):
        order = []

        def chain(n):
            order.append(n)
            if n < 3:
                sim.after(1.0, chain, n + 1)

        sim.after(1.0, chain, 0)
        sim.run()
        assert order == [0, 1, 2, 3]
        assert sim.now == pytest.approx(4.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.after(1.0, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_from_another_callback(self, sim):
        fired = []
        victim = sim.after(2.0, fired.append, "victim")
        sim.after(1.0, victim.cancel)
        sim.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.after(1.0, fired.append, 1)
        sim.after(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == pytest.approx(5.0)

    def test_run_until_advances_clock_even_when_idle(self, sim):
        sim.run(until=100.0)
        assert sim.now == pytest.approx(100.0)

    def test_event_after_until_still_pending(self, sim):
        fired = []
        sim.after(10.0, fired.append, 1)
        sim.run(until=5.0)
        sim.run()
        assert fired == [1]

    def test_run_for_is_relative(self, sim):
        sim.run(until=10.0)
        sim.run_for(5.0)
        assert sim.now == pytest.approx(15.0)

    def test_run_returns_final_time(self, sim):
        sim.after(3.0, lambda: None)
        assert sim.run() == pytest.approx(3.0)

    def test_max_events_bounds_execution(self, sim):
        count = [0]

        def loop():
            count[0] += 1
            sim.after(1.0, loop)

        sim.after(1.0, loop)
        sim.run(max_events=10)
        assert count[0] == 10

    def test_run_is_not_reentrant(self, sim):
        error = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                error.append(exc)

        sim.after(1.0, reenter)
        sim.run()
        assert len(error) == 1

    def test_drain_raises_on_runaway(self, sim):
        def loop():
            sim.after(1.0, loop)

        sim.after(1.0, loop)
        with pytest.raises(SimulationError):
            sim.drain(max_events=50)

    def test_drain_error_reports_live_events_and_next_deadline(self, sim):
        def loop():
            sim.after(1.0, loop)

        sim.after(1.0, loop)
        with pytest.raises(SimulationError) as excinfo:
            sim.drain(max_events=50)
        message = str(excinfo.value)
        # One self-rescheduling event remains, due at t=51.
        assert "max_events=50" in message
        assert "1 live events still queued" in message
        assert "next pending at t=51.000000" in message

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_counters(self, sim):
        sim.after(1.0, lambda: None)
        sim.after(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.events_fired == 2
        assert sim.pending_events == 0


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            simulator = Simulator()
            log = []
            for i in range(20):
                simulator.after((i * 7) % 5 + 0.5, log.append, i)
            simulator.run()
            return log

        assert build_and_run() == build_and_run()
