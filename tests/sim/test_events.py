"""Unit tests for the event primitives."""

import pytest

from repro.sim.events import Event, EventQueue


def make_event(time: float, seq: int, sink=None):
    sink = sink if sink is not None else []
    return Event(time, seq, sink.append, (seq,)), sink


class TestEvent:
    def test_new_event_is_pending(self):
        event, _ = make_event(1.0, 1)
        assert event.pending
        assert not event.cancelled

    def test_cancel_marks_event(self):
        event, _ = make_event(1.0, 1)
        event.cancel()
        assert event.cancelled
        assert not event.pending

    def test_cancel_is_idempotent(self):
        event, _ = make_event(1.0, 1)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancel_releases_callback_references(self):
        event, _ = make_event(1.0, 1)
        event.cancel()
        assert event.callback is None
        assert event.args == ()

    def test_fire_invokes_callback_with_args(self):
        event, sink = make_event(1.0, 42)
        event._fire()
        assert sink == [42]

    def test_fire_after_cancel_does_nothing(self):
        event, sink = make_event(1.0, 42)
        event.cancel()
        event._fire()
        assert sink == []

    def test_fire_is_one_shot(self):
        event, sink = make_event(1.0, 42)
        event._fire()
        event._fire()
        assert sink == [42]

    def test_ordering_by_time_then_seq(self):
        early, _ = make_event(1.0, 2)
        late, _ = make_event(2.0, 1)
        tie_a, _ = make_event(1.0, 1)
        assert tie_a < early < late


class TestEventQueue:
    def test_pop_empty_returns_none(self):
        queue = EventQueue()
        assert queue.pop() is None

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        a, _ = make_event(5.0, 1)
        b, _ = make_event(3.0, 2)
        queue.push(a)
        queue.push(b)
        assert queue.pop() is b
        assert queue.pop() is a

    def test_same_time_pops_in_schedule_order(self):
        queue = EventQueue()
        first, _ = make_event(1.0, 1)
        second, _ = make_event(1.0, 2)
        queue.push(second)
        queue.push(first)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_skips_cancelled(self):
        queue = EventQueue()
        a, _ = make_event(1.0, 1)
        b, _ = make_event(2.0, 2)
        queue.push(a)
        queue.push(b)
        a.cancel()
        assert queue.pop() is b

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        a, _ = make_event(1.0, 1)
        b, _ = make_event(2.0, 2)
        queue.push(a)
        queue.push(b)
        a.cancel()
        assert queue.peek_time() == pytest.approx(2.0)

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_live_count_excludes_cancelled(self):
        queue = EventQueue()
        events = [make_event(float(i), i)[0] for i in range(5)]
        for event in events:
            queue.push(event)
        events[0].cancel()
        events[3].cancel()
        assert queue.live_count() == 3
        assert len(queue) == 5  # cancelled entries still occupy the heap

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(make_event(1.0, 1)[0])
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestCompaction:
    """Batched removal of cancelled events from the heap."""

    def _fill(self, queue, count):
        events = []
        for seq in range(1, count + 1):
            event = Event(float(seq), seq, lambda: None)
            queue.push(event)
            events.append(event)
        return events

    def test_cancel_updates_dead_and_live_counts(self):
        queue = EventQueue()
        events = self._fill(queue, 10)
        for event in events[:4]:
            event.cancel()
        assert queue.dead_count == 4
        assert queue.live_count() == 6
        assert len(queue) == 10

    def test_push_compacts_when_half_dead(self):
        queue = EventQueue()
        events = self._fill(queue, 200)
        for event in events[:150]:  # 75% cancelled, well past the trigger
            event.cancel()
        assert len(queue) == 200
        queue.push(Event(999.0, 999, lambda: None))
        # The triggering push lands on an already-compacted heap.
        assert len(queue) == 51
        assert queue.dead_count == 0
        assert queue.live_count() == 51

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        events = self._fill(queue, 120)
        for event in events[::2]:  # cancel every other event
            event.cancel()
        queue.compact()
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.seq)
        assert popped == [event.seq for event in events[1::2]]

    def test_small_queues_never_compact(self):
        queue = EventQueue()
        events = self._fill(queue, 10)
        for event in events:
            event.cancel()
        queue.push(Event(99.0, 99, lambda: None))
        # Below COMPACT_MIN_DEAD the corpses stay until popped over.
        assert len(queue) == 11
        assert queue.live_count() == 1

    def test_cancel_after_pop_does_not_corrupt_accounting(self):
        queue = EventQueue()
        self._fill(queue, 5)
        event = queue.pop()
        event.cancel()  # already out of the heap
        assert queue.dead_count == 0
        assert queue.live_count() == 4

    def test_explicit_compact_is_idempotent(self):
        queue = EventQueue()
        events = self._fill(queue, 8)
        events[0].cancel()
        queue.compact()
        queue.compact()
        assert queue.dead_count == 0
        assert queue.live_count() == 7
