"""Unit tests for deterministic named RNG streams."""

from repro.sim import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, ("a", 2)) == derive_seed(1, ("a", 2))

    def test_different_names_differ(self):
        assert derive_seed(1, ("a",)) != derive_seed(1, ("b",))

    def test_different_master_seeds_differ(self):
        assert derive_seed(1, ("a",)) != derive_seed(2, ("a",))

    def test_name_parts_are_not_concatenated(self):
        # ("ab",) must differ from ("a", "b")
        assert derive_seed(1, ("ab",)) != derive_seed(1, ("a", "b"))

    def test_int_and_str_parts_distinguished(self):
        assert derive_seed(1, (1,)) != derive_seed(1, ("1",))


class TestRandomStreams:
    def test_same_name_returns_same_instance(self):
        streams = RandomStreams(42)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_reproducible_across_factories(self):
        a = RandomStreams(42).stream("member", 3).random()
        b = RandomStreams(42).stream("member", 3).random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RandomStreams(42)
        a = [streams.stream("a").random() for _ in range(10)]
        b = [streams.stream("b").random() for _ in range(10)]
        assert a != b

    def test_consuming_one_stream_does_not_affect_another(self):
        reference = RandomStreams(7)
        baseline = [reference.stream("target").random() for _ in range(3)]
        streams = RandomStreams(7)
        for _ in range(1000):
            streams.stream("noise").random()
        observed = [streams.stream("target").random() for _ in range(3)]
        assert observed == baseline

    def test_spawn_creates_disjoint_namespace(self):
        parent = RandomStreams(42)
        child = parent.spawn("rep", 1)
        assert child.master_seed != parent.master_seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_spawn_is_deterministic(self):
        a = RandomStreams(42).spawn("rep", 1).stream("x").random()
        b = RandomStreams(42).spawn("rep", 1).stream("x").random()
        assert a == b

    def test_streams_cover_unit_interval(self):
        stream = RandomStreams(0).stream("uniform")
        values = [stream.random() for _ in range(2000)]
        assert 0.4 < sum(values) / len(values) < 0.6
        assert min(values) >= 0.0
        assert max(values) < 1.0
