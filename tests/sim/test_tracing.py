"""Unit tests for the trace log."""

import pytest

from repro.sim import NullTraceLog, StreamingTraceDigest, TraceLog, trace_digest
from repro.sim.tracing import record_line


class TestTraceLog:
    def test_emit_retains_records(self, trace):
        trace.emit(1.0, "alpha", node=1)
        trace.emit(2.0, "beta", node=2)
        assert len(trace.records) == 2
        assert trace.records[0].kind == "alpha"
        assert trace.records[0]["node"] == 1

    def test_of_kind_filters(self, trace):
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        trace.emit(3.0, "a")
        assert [record.time for record in trace.of_kind("a")] == [1.0, 3.0]

    def test_first_and_count(self, trace):
        assert trace.first("missing") is None
        trace.emit(1.0, "x", value=10)
        trace.emit(2.0, "x", value=20)
        assert trace.first("x")["value"] == 10
        assert trace.count("x") == 2

    def test_record_get_with_default(self, trace):
        trace.emit(1.0, "x", a=1)
        record = trace.first("x")
        assert record.get("a") == 1
        assert record.get("zzz", "fallback") == "fallback"

    def test_global_subscriber_sees_everything(self, trace):
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        assert [record.kind for record in seen] == ["a", "b"]

    def test_kind_subscriber_is_filtered(self, trace):
        seen = []
        trace.subscribe(seen.append, kind="a")
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        assert [record.kind for record in seen] == ["a"]

    def test_streaming_mode_drops_records_but_notifies(self):
        log = TraceLog(keep_records=False)
        seen = []
        log.subscribe(seen.append)
        log.emit(1.0, "a")
        assert log.records == []
        assert len(seen) == 1

    def test_clear_keeps_subscribers(self, trace):
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a")
        trace.clear()
        trace.emit(2.0, "b")
        assert trace.records[0].kind == "b"
        assert len(seen) == 2


class TestNullTraceLog:
    def test_emit_is_a_noop(self):
        log = NullTraceLog()
        log.emit(1.0, "a")
        assert log.records == []

    def test_subscribe_refuses_dead_registrations(self):
        """A NullTraceLog never emits, so accepting a subscriber would
        silently guarantee it never fires — refuse instead."""
        log = NullTraceLog()
        with pytest.raises(RuntimeError, match="NullTraceLog"):
            log.subscribe(lambda record: None)
        with pytest.raises(RuntimeError, match="never fire"):
            log.subscribe(lambda record: None, kind="a")


class TestTraceDigest:
    def test_equal_streams_share_a_digest(self, trace):
        other = TraceLog()
        for log in (trace, other):
            log.emit(1.0, "a", node=1, via="multicast")
            log.emit(2.5, "b", waiters=(3, 4))
        assert trace_digest(trace.records) == trace_digest(other.records)

    def test_digest_is_order_sensitive(self):
        a, b = TraceLog(), TraceLog()
        a.emit(1.0, "x")
        a.emit(2.0, "y")
        b.emit(2.0, "y")
        b.emit(1.0, "x")
        assert trace_digest(a.records) != trace_digest(b.records)

    def test_digest_sees_field_values(self, trace):
        trace.emit(1.0, "a", node=1)
        one = trace_digest(trace.records)
        trace.clear()
        trace.emit(1.0, "a", node=2)
        assert trace_digest(trace.records) != one

    def test_empty_stream_digest_is_stable(self):
        assert trace_digest([]) == trace_digest([])


class TestEnabledFlag:
    """The hot-path guard: emitters may skip record construction
    entirely when ``trace.enabled`` is False."""

    def test_retaining_log_is_enabled(self):
        assert TraceLog().enabled
        assert not TraceLog(keep_records=False).enabled

    def test_subscribing_enables_a_streaming_log(self):
        log = TraceLog(keep_records=False)
        log.subscribe(lambda record: None)
        assert log.enabled

    def test_null_log_is_never_enabled(self):
        assert not NullTraceLog().enabled


class TestStreamingTraceDigest:
    def _fill(self, log):
        log.emit(1.0, "a", node=1, via="multicast")
        log.emit(2.5, "b", waiters=(3, 4))
        log.emit(3.0, "c")

    def test_matches_batch_digest_exactly(self):
        retained = TraceLog()
        streamed = TraceLog(keep_records=False)
        digest = StreamingTraceDigest().attach(streamed)
        self._fill(retained)
        self._fill(streamed)
        assert digest.hexdigest() == trace_digest(retained.records)
        assert digest.count == len(retained.records)

    def test_update_line_equals_update(self):
        log = TraceLog()
        self._fill(log)
        by_record, by_line = StreamingTraceDigest(), StreamingTraceDigest()
        for record in log.records:
            by_record.update(record)
            by_line.update_line(record_line(record))
        assert by_record.hexdigest() == by_line.hexdigest()

    def test_hexdigest_is_non_destructive(self):
        log = TraceLog()
        digest = StreamingTraceDigest().attach(log)
        log.emit(1.0, "a")
        mid = digest.hexdigest()
        assert digest.hexdigest() == mid
        log.emit(2.0, "b")
        assert digest.hexdigest() != mid
