"""Unit tests for the trace log."""

from repro.sim import NullTraceLog, TraceLog


class TestTraceLog:
    def test_emit_retains_records(self, trace):
        trace.emit(1.0, "alpha", node=1)
        trace.emit(2.0, "beta", node=2)
        assert len(trace.records) == 2
        assert trace.records[0].kind == "alpha"
        assert trace.records[0]["node"] == 1

    def test_of_kind_filters(self, trace):
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        trace.emit(3.0, "a")
        assert [record.time for record in trace.of_kind("a")] == [1.0, 3.0]

    def test_first_and_count(self, trace):
        assert trace.first("missing") is None
        trace.emit(1.0, "x", value=10)
        trace.emit(2.0, "x", value=20)
        assert trace.first("x")["value"] == 10
        assert trace.count("x") == 2

    def test_record_get_with_default(self, trace):
        trace.emit(1.0, "x", a=1)
        record = trace.first("x")
        assert record.get("a") == 1
        assert record.get("zzz", "fallback") == "fallback"

    def test_global_subscriber_sees_everything(self, trace):
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        assert [record.kind for record in seen] == ["a", "b"]

    def test_kind_subscriber_is_filtered(self, trace):
        seen = []
        trace.subscribe(seen.append, kind="a")
        trace.emit(1.0, "a")
        trace.emit(2.0, "b")
        assert [record.kind for record in seen] == ["a"]

    def test_streaming_mode_drops_records_but_notifies(self):
        log = TraceLog(keep_records=False)
        seen = []
        log.subscribe(seen.append)
        log.emit(1.0, "a")
        assert log.records == []
        assert len(seen) == 1

    def test_clear_keeps_subscribers(self, trace):
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a")
        trace.clear()
        trace.emit(2.0, "b")
        assert trace.records[0].kind == "b"
        assert len(seen) == 2


class TestNullTraceLog:
    def test_emit_is_a_noop(self):
        log = NullTraceLog()
        seen = []
        log.subscribe(seen.append)
        log.emit(1.0, "a")
        assert log.records == []
        assert seen == []
