"""Unit tests for Timer and PeriodicTask."""

import pytest

from repro.sim import PeriodicTask, Timer, call_repeatedly


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.run()
        assert fired == [pytest.approx(10.0)]

    def test_restart_pushes_deadline_back(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.after(5.0, timer.start, 10.0)  # restart at t=5 -> fires at 15
        sim.run()
        assert fired == [pytest.approx(15.0)]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(10.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.armed

    def test_armed_and_deadline(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.deadline is None
        timer.start(4.0)
        assert timer.armed
        assert timer.deadline == pytest.approx(4.0)
        sim.run()
        assert not timer.armed

    def test_timer_can_be_restarted_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_idle_threshold_semantics(self, sim):
        """Repeated refreshes model the paper's idle-timer behaviour."""
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(40.0)
        for t in (10.0, 20.0, 30.0, 55.0):
            sim.at(t, timer.start, 40.0)
        sim.run()
        # Last refresh at t=55 -> idle at 95.
        assert fired == [pytest.approx(95.0)]


class TestPeriodicTask:
    def test_ticks_at_interval(self, sim):
        ticks = []
        task = PeriodicTask(sim, 10.0, lambda: ticks.append(sim.now))
        task.start()
        sim.run(until=35.0)
        assert ticks == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0)]

    def test_phase_controls_first_tick(self, sim):
        ticks = []
        task = PeriodicTask(sim, 10.0, lambda: ticks.append(sim.now))
        task.start(phase=3.0)
        sim.run(until=25.0)
        assert ticks == [pytest.approx(3.0), pytest.approx(13.0), pytest.approx(23.0)]

    def test_stop_halts_ticking(self, sim):
        ticks = []
        task = PeriodicTask(sim, 10.0, lambda: ticks.append(sim.now))
        task.start()
        sim.at(25.0, task.stop)
        sim.run(until=100.0)
        assert len(ticks) == 2

    def test_callback_may_stop_the_task(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 5.0, tick)
        task.start()
        sim.run(until=100.0)
        assert len(ticks) == 2

    def test_invalid_interval_raises(self, sim):
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_running_property(self, sim):
        task = PeriodicTask(sim, 5.0, lambda: None)
        assert not task.running
        task.start()
        assert task.running
        task.stop()
        assert not task.running

    def test_call_repeatedly_passes_args(self, sim):
        seen = []
        call_repeatedly(sim, 5.0, seen.append, "x")
        sim.run(until=12.0)
        assert seen == ["x", "x"]
