"""Unit tests for Timer and PeriodicTask."""

import pytest

from repro.sim import PeriodicTask, Timer, call_repeatedly


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.run()
        assert fired == [pytest.approx(10.0)]

    def test_restart_pushes_deadline_back(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.after(5.0, timer.start, 10.0)  # restart at t=5 -> fires at 15
        sim.run()
        assert fired == [pytest.approx(15.0)]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(10.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.armed

    def test_armed_and_deadline(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.deadline is None
        timer.start(4.0)
        assert timer.armed
        assert timer.deadline == pytest.approx(4.0)
        sim.run()
        assert not timer.armed

    def test_timer_can_be_restarted_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_idle_threshold_semantics(self, sim):
        """Repeated refreshes model the paper's idle-timer behaviour."""
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(40.0)
        for t in (10.0, 20.0, 30.0, 55.0):
            sim.at(t, timer.start, 40.0)
        sim.run()
        # Last refresh at t=55 -> idle at 95.
        assert fired == [pytest.approx(95.0)]


class TestPeriodicTask:
    def test_ticks_at_interval(self, sim):
        ticks = []
        task = PeriodicTask(sim, 10.0, lambda: ticks.append(sim.now))
        task.start()
        sim.run(until=35.0)
        assert ticks == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0)]

    def test_phase_controls_first_tick(self, sim):
        ticks = []
        task = PeriodicTask(sim, 10.0, lambda: ticks.append(sim.now))
        task.start(phase=3.0)
        sim.run(until=25.0)
        assert ticks == [pytest.approx(3.0), pytest.approx(13.0), pytest.approx(23.0)]

    def test_stop_halts_ticking(self, sim):
        ticks = []
        task = PeriodicTask(sim, 10.0, lambda: ticks.append(sim.now))
        task.start()
        sim.at(25.0, task.stop)
        sim.run(until=100.0)
        assert len(ticks) == 2

    def test_callback_may_stop_the_task(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 5.0, tick)
        task.start()
        sim.run(until=100.0)
        assert len(ticks) == 2

    def test_invalid_interval_raises(self, sim):
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_running_property(self, sim):
        task = PeriodicTask(sim, 5.0, lambda: None)
        assert not task.running
        task.start()
        assert task.running
        task.stop()
        assert not task.running

    def test_call_repeatedly_passes_args(self, sim):
        seen = []
        call_repeatedly(sim, 5.0, seen.append, "x")
        sim.run(until=12.0)
        assert seen == ["x", "x"]


class TestTimerInPlaceRearm:
    """The push-back optimization: later deadlines re-arm in place."""

    def test_later_rearm_keeps_underlying_event(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(10.0)
        original = timer._event
        sim.after(3.0, timer.start, 10.0)  # deadline 13 > 10: in place
        sim.run(until=5.0)
        assert timer._event is original
        assert timer.armed
        assert timer.deadline == pytest.approx(13.0)

    def test_stale_event_triggers_single_catchup_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.after(3.0, timer.start, 10.0)
        sim.run()
        assert fired == [pytest.approx(13.0)]

    def test_many_pushbacks_one_callback(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        for t in range(1, 50):
            sim.at(float(t), timer.start, 10.0)
        sim.run()
        assert fired == [pytest.approx(59.0)]

    def test_earlier_rearm_falls_back_to_reschedule(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        original = timer._event
        timer.start(3.0)  # earlier: must cancel + reschedule
        assert timer._event is not original
        assert original.cancelled
        sim.run()
        assert fired == [pytest.approx(3.0)]

    def test_equal_deadline_rearm_reschedules(self, sim):
        # An equal deadline must not keep the old event: the replacement
        # event's (later) seq decides same-time ordering.
        timer = Timer(sim, lambda: None)
        timer.start(10.0)
        original = timer._event
        timer.start(10.0)
        assert timer._event is not original

    def test_pushback_preserves_same_time_ordering(self, sim):
        # The catch-up event must fire in the order a cancel+reschedule
        # at refresh time would have produced.  The timer is refreshed
        # at t=3 (deadline 11); a plain event lands at t=11 but is only
        # scheduled at t=5.  Refresh-time seq < plain seq, so the timer
        # fires first — even though its catch-up is physically scheduled
        # at t=10 when the stale event fires.
        order = []
        timer = Timer(sim, lambda: order.append("timer"))
        timer.start(10.0)
        sim.at(3.0, timer.start, 8.0)   # push back to 11, in place
        sim.at(5.0, lambda: sim.at(11.0, order.append, "plain"))
        sim.run()
        assert order == ["timer", "plain"]

    def test_cancel_after_pushback(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.at(3.0, timer.start, 10.0)
        sim.at(5.0, timer.cancel)
        sim.run()
        assert fired == []
        assert not timer.armed
