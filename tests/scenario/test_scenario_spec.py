"""Serialization tests for the scenario spec tree.

The tentpole guarantees: JSON round-trip equality for every spec
(including all registered named scenarios), digest stability across
process restarts, and pickle round trips (the process-pool backend
ships specs to workers by pickle).
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.scenario.registry import get_scenario, scenario_names
from repro.scenario.spec import (
    AdaptSpec,
    ChurnSpec,
    FecSpec,
    LossSpec,
    MeasurementSpec,
    MobilitySpec,
    PlayoutSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)


def _custom_spec() -> ScenarioSpec:
    """A spec exercising every sub-spec with non-default values."""
    return ScenarioSpec(
        name="custom",
        seed=17,
        description="kitchen sink",
        topology=TopologySpec(kind="chain", sizes=(40, 10, 5),
                              intra_one_way=2.5, inter_one_way=120.0,
                              inter_up_one_way=60.0,
                              inter_down_one_way=180.0),
        traffic=TrafficSpec(kind="burst", bursts=((10.0, 3), (50.0, 2))),
        loss=LossSpec(kind="gilbert_elliott", p_good_to_bad=0.02,
                      p_bad_to_good=0.4, p_bad=0.9),
        churn=ChurnSpec(kind="random", leave_rate=0.01, join_rate=0.02,
                        duration=300.0),
        policy=PolicySpec(kind="fixed_time", hold_time=500.0,
                          session_interval=None, max_recovery_time=1_000.0),
        fec=FecSpec(mode="proactive", block_size=4, parity=2),
        adapt=AdaptSpec(mode="passive", update_interval=150.0,
                        hysteresis=0.2, max_reparents=4, ewma_alpha=0.3),
        mobility=MobilitySpec(kind="waypoint", speed=3.0, epoch=40.0,
                              area=800.0, distance_loss=0.2,
                              protect_sender=False),
        playout=PlayoutSpec(kind="cbr", interval=20.0, startup_delay=80.0),
        measurement=MeasurementSpec(horizon=2_000.0, probe_period=25.0),
    )


class TestJsonRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_kitchen_sink_round_trips(self):
        spec = _custom_spec()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        # Tuples must come back as tuples, not lists, for equality and
        # hashing downstream.
        assert restored.topology.sizes == (40, 10, 5)
        assert restored.traffic.bursts == ((10.0, 3), (50.0, 2))

    def test_every_registered_scenario_round_trips(self):
        names = scenario_names()
        assert len(names) >= 6
        for name in names:
            spec = get_scenario(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec, name

    def test_indent_does_not_change_the_value(self):
        spec = _custom_spec()
        assert ScenarioSpec.from_json(spec.to_json(indent=2)) == spec

    def test_unknown_fields_rejected(self):
        payload = ScenarioSpec().to_dict()
        payload["topology"]["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            ScenarioSpec.from_dict(payload)
        with pytest.raises(ValueError, match="wat"):
            ScenarioSpec.from_dict({"wat": 1})


class TestDigest:
    def test_digest_is_stable_within_process(self):
        assert _custom_spec().digest() == _custom_spec().digest()

    def test_digest_changes_with_any_field(self):
        spec = _custom_spec()
        assert spec.digest() != spec.with_(seed=18).digest()

    def test_digest_survives_json_round_trip(self):
        spec = _custom_spec()
        assert ScenarioSpec.from_json(spec.to_json()).digest() == spec.digest()

    def test_digest_stable_across_process_restarts(self):
        """A fresh interpreter recomputes the identical digests (the
        registered specs from the registry; the custom one rebuilt from
        its JSON) — no dependence on hash randomization or import
        order."""
        import json

        expected = {name: get_scenario(name).digest() for name in scenario_names()}
        expected["__custom__"] = _custom_spec().digest()
        code = (
            "import json, sys\n"
            "from repro.scenario.registry import get_scenario, scenario_names\n"
            "from repro.scenario.spec import ScenarioSpec\n"
            "custom = ScenarioSpec.from_json(sys.stdin.read())\n"
            "digests = {n: get_scenario(n).digest() for n in scenario_names()}\n"
            "digests['__custom__'] = custom.digest()\n"
            "print(json.dumps(digests))\n"
        )
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            path for path in (src_root, env.get("PYTHONPATH", "")) if path
        )
        env["PYTHONHASHSEED"] = "random"
        output = subprocess.run(
            [sys.executable, "-c", code], input=_custom_spec().to_json(),
            capture_output=True, text=True, env=env, check=True,
        ).stdout
        assert json.loads(output) == expected


class TestPickle:
    def test_pickle_round_trip(self):
        spec = _custom_spec()
        restored = pickle.loads(pickle.dumps(spec))
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_registered_specs_pickle(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert pickle.loads(pickle.dumps(spec)) == spec, name


class TestValidation:
    def test_bad_kinds_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="ring")
        with pytest.raises(ValueError):
            TrafficSpec(kind="tsunami")
        with pytest.raises(ValueError):
            LossSpec(kind="cosmic_rays")
        with pytest.raises(ValueError):
            ChurnSpec(kind="rapture")
        with pytest.raises(ValueError):
            PolicySpec(kind="yolo")
        with pytest.raises(ValueError):
            FecSpec(mode="sideways")

    def test_range_checks(self):
        with pytest.raises(ValueError):
            LossSpec(kind="bernoulli", p=1.5)
        with pytest.raises(ValueError):
            TopologySpec(kind="chain", sizes=())
        with pytest.raises(ValueError):
            TrafficSpec(kind="uniform", count=3, interval=0.0)
        with pytest.raises(ValueError):
            MeasurementSpec(horizon=-1.0)

    def test_member_count(self):
        assert TopologySpec(kind="single_region", n=7).member_count() == 7
        assert TopologySpec(kind="chain", sizes=(3, 4)).member_count() == 7
        assert TopologySpec(kind="star", n=5, sizes=(2, 2)).member_count() == 9
        assert TopologySpec(
            kind="balanced_tree", depth=1, fanout=2, n=3
        ).member_count() == 9


class TestAdaptSpec:
    def test_default_is_off_and_omitted_from_payload(self):
        """The adapt node must not appear in serialized defaults, or
        every pre-adapt spec digest in the wild would change."""
        spec = ScenarioSpec()
        assert not spec.adapt.enabled
        assert "adapt" not in spec.to_dict()

    def test_default_node_does_not_change_the_digest(self):
        spec = get_scenario("heterogeneous_regions")
        assert spec.with_(adapt=AdaptSpec()).digest() == spec.digest()

    def test_enabled_node_round_trips(self):
        spec = ScenarioSpec(adapt=AdaptSpec(
            mode="passive", update_interval=75.0, hysteresis=0.05,
            max_reparents=3, ewma_alpha=0.4,
        ))
        payload = spec.to_dict()
        assert "adapt" in payload
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.adapt.enabled
        assert restored.adapt.update_interval == 75.0
        assert restored.digest() == spec.digest()

    def test_enabled_node_changes_the_digest(self):
        spec = ScenarioSpec()
        assert spec.with_(adapt=AdaptSpec(mode="passive")).digest() != spec.digest()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptSpec(mode="clairvoyant")
        with pytest.raises(ValueError):
            AdaptSpec(update_interval=0.0)
        with pytest.raises(ValueError):
            AdaptSpec(hysteresis=-0.1)
        with pytest.raises(ValueError):
            AdaptSpec(max_reparents=-1)
        with pytest.raises(ValueError):
            AdaptSpec(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdaptSpec(ewma_alpha=1.5)


class TestWorkloadSpecs:
    """Mobility, playout and outage nodes: digest-neutral at defaults."""

    def test_default_nodes_are_omitted_from_payload(self):
        """New workload nodes must not appear in serialized defaults, or
        every pre-existing spec digest in the wild would change."""
        payload = ScenarioSpec().to_dict()
        assert "mobility" not in payload
        assert "playout" not in payload
        for field in ("outage_start", "outage_duration", "outage_regions"):
            assert field not in payload["loss"]

    def test_default_nodes_do_not_change_the_digest(self):
        spec = get_scenario("scale")
        assert spec.with_(mobility=MobilitySpec()).digest() == spec.digest()
        assert spec.with_(playout=PlayoutSpec()).digest() == spec.digest()

    def test_enabled_nodes_round_trip(self):
        spec = ScenarioSpec(
            mobility=MobilitySpec(kind="waypoint", speed=5.0, epoch=30.0),
            playout=PlayoutSpec(kind="cbr", interval=10.0),
            loss=LossSpec(kind="outage", outage_start=100.0,
                          outage_duration=250.0, outage_regions=2),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.mobility.enabled and restored.playout.enabled
        assert restored.loss.outage_duration == 250.0
        assert restored.digest() == spec.digest()

    def test_enabled_nodes_change_the_digest(self):
        base = ScenarioSpec()
        assert base.with_(mobility=MobilitySpec(kind="waypoint")).digest() \
            != base.digest()
        assert base.with_(playout=PlayoutSpec(kind="cbr")).digest() \
            != base.digest()

    def test_validation(self):
        with pytest.raises(ValueError):
            MobilitySpec(kind="teleport")
        with pytest.raises(ValueError):
            MobilitySpec(speed=-1.0)
        with pytest.raises(ValueError):
            MobilitySpec(epoch=0.0)
        with pytest.raises(ValueError):
            MobilitySpec(distance_loss=1.5)
        with pytest.raises(ValueError):
            PlayoutSpec(interval=0.0)
        with pytest.raises(ValueError):
            PlayoutSpec(startup_delay=-1.0)
        with pytest.raises(ValueError):
            LossSpec(kind="outage")  # needs a positive duration
        with pytest.raises(ValueError):
            LossSpec(kind="outage", outage_duration=100.0, outage_regions=0)


class TestAsymmetricTopology:
    def test_symmetric_default_is_omitted_from_payload(self):
        payload = ScenarioSpec().to_dict()
        assert "inter_up_one_way" not in payload["topology"]
        assert "inter_down_one_way" not in payload["topology"]

    def test_directional_delays_round_trip(self):
        spec = ScenarioSpec(topology=TopologySpec(
            kind="chain", sizes=(4, 4),
            inter_up_one_way=20.0, inter_down_one_way=60.0,
        ))
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.topology.inter_up_one_way == 20.0
        assert restored.topology.inter_down_one_way == 60.0
        assert restored.digest() == spec.digest()

    def test_directional_delays_change_the_digest(self):
        base = ScenarioSpec()
        skewed = base.with_(topology=TopologySpec(inter_up_one_way=20.0))
        assert skewed.digest() != base.digest()

    def test_negative_directional_delay_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(inter_up_one_way=-5.0)
        with pytest.raises(ValueError):
            TopologySpec(inter_down_one_way=-5.0)
