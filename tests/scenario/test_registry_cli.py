"""Registry and ``scenarios`` CLI subcommand tests."""

import json

import pytest

from repro.experiments.cli import main
from repro.scenario.registry import (
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_names,
)
from repro.scenario.spec import ScenarioSpec


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        assert len(scenario_names()) >= 6

    def test_canned_workloads_are_registered(self):
        names = scenario_names()
        for name in ("initial_holders", "search", "scale"):
            assert name in names

    def test_new_scenario_families_are_registered(self):
        """The API unlocks burst-loss and ramp workloads as data."""
        specs = {name: get_scenario(name) for name in scenario_names()}
        kinds = {spec.loss.kind for spec in specs.values()}
        assert "gilbert_elliott" in kinds
        traffic = {spec.traffic.kind for spec in specs.values()}
        assert "ramp" in traffic

    def test_every_entry_has_description(self):
        for entry in registered_scenarios().values():
            assert entry.description

    def test_get_scenario_returns_fresh_values(self):
        a = get_scenario("scale")
        b = get_scenario("scale")
        assert a == b and a is not b

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="scale"):
            get_scenario("nope")

    def test_registering_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scenario("scale")
            def _dup() -> ScenarioSpec:  # pragma: no cover
                return ScenarioSpec()

    def test_factory_returning_wrong_type_rejected(self):
        @register_scenario("bogus-factory-test")
        def _bogus():
            return 42

        try:
            with pytest.raises(TypeError, match="expected ScenarioSpec"):
                get_scenario("bogus-factory-test")
        finally:
            from repro.scenario import registry

            registry._REGISTRY.pop("bogus-factory-test", None)

    def test_every_spec_materializes(self):
        """Each registered spec builds a simulation (without running)."""
        for name in scenario_names():
            built = get_scenario(name).build()
            assert built.simulation.members, name


class TestScenariosCli:
    def test_list_renders_every_registered_spec(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names():
            assert name in output

    def test_describe_prints_loadable_json_and_digest(self, capsys):
        assert main(["scenarios", "describe", "overload_onset"]) == 0
        output = capsys.readouterr().out
        body, digest_line = output.rsplit("digest:", 1)
        spec = ScenarioSpec.from_json(body)
        assert spec == get_scenario("overload_onset")
        assert digest_line.strip() == spec.digest()

    def test_run_json_emits_summary_object(self, capsys):
        assert main(["scenarios", "run", "initial_holders", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["scenario"] == "initial_holders"
        assert summary["members"] == 100
        assert summary["delivered_fraction"] == 1.0

    def test_run_text_mode_and_seed_override(self, capsys):
        assert main(["scenarios", "run", "search", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "scenario search (seed 3)" in output
        assert "events_fired" in output

    def test_run_gilbert_elliott_scenario(self, capsys):
        """Acceptance: the burst-loss scenario runs end to end."""
        assert main(["scenarios", "run", "wan_burst_loss", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["messages"] == 30
        assert summary["delivered_fraction"] > 0.9

    def test_run_ramp_scenario(self, capsys):
        """Acceptance: the RampStream scenario runs end to end."""
        assert main(["scenarios", "run", "overload_onset", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["messages"] == 40
        assert summary["delivered_fraction"] > 0.9

    def test_unknown_scenario_is_a_usage_error_not_a_traceback(self, capsys):
        assert main(["scenarios", "run", "not-a-scenario"]) == 2
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err
        assert "scale" in captured.err  # catalogue included as a hint
        assert main(["scenarios", "describe", "not-a-scenario"]) == 2
        capsys.readouterr()


class TestSpecOverrides:
    """Dotted ``--param`` overrides on ``scenarios run``."""

    def test_apply_overrides_walks_dotted_paths(self):
        from repro.scenario.cli import _apply_spec_overrides

        spec = get_scenario("search")
        updated = _apply_spec_overrides(spec, [
            ("congestion.controller", "aimd"),
            ("congestion.max_rate", 200.0),
            ("seed", 9),
        ])
        assert updated.congestion.controller == "aimd"
        assert updated.congestion.max_rate == 200.0
        assert updated.seed == 9
        # The original frozen spec is untouched.
        assert spec.congestion.controller == "none"

    def test_unknown_field_raises(self):
        from repro.scenario.cli import _apply_spec_overrides

        with pytest.raises(ValueError, match="no field"):
            _apply_spec_overrides(get_scenario("search"), [("bogus.x", 1)])
        with pytest.raises(ValueError, match="no field"):
            _apply_spec_overrides(get_scenario("search"),
                                  [("congestion.bogus", 1)])

    def test_validation_refires_on_override(self):
        from repro.scenario.cli import _apply_spec_overrides

        with pytest.raises(ValueError):
            _apply_spec_overrides(get_scenario("search"),
                                  [("loss.p", 2.0)])

    def test_cli_run_with_congestion_param(self, capsys):
        # A stream scenario: probe workloads have no sender stream for
        # the congestion driver to pace.
        assert main([
            "scenarios", "run", "overload_onset",
            "--param", "congestion.controller=aimd",
            "--param", "congestion.max_rate=200",
            "--param", "congestion.min_rate=5",
            "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["cc_controller"] == "aimd"
        assert summary["offered_messages"] == 40

    def test_cli_bad_param_is_a_usage_error(self, capsys):
        assert main([
            "scenarios", "run", "search", "--param", "nope.x=1",
        ]) == 2
        assert "no field" in capsys.readouterr().err

    def test_cli_invalid_value_is_a_usage_error(self, capsys):
        assert main([
            "scenarios", "run", "search", "--param", "loss.p=2.0",
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestCongestionScenario:
    def test_overload_onset_cc_registered_with_controller(self):
        spec = get_scenario("overload_onset_cc")
        assert spec.congestion.enabled
        assert spec.congestion.controller == "tfmcc"

    def test_cc_spec_round_trips_with_congestion_node(self):
        spec = get_scenario("overload_onset_cc")
        payload = spec.to_dict()
        assert payload["congestion"]["controller"] == "tfmcc"
        assert ScenarioSpec.from_dict(payload) == spec

    def test_cc_off_specs_serialize_without_congestion_node(self):
        spec = get_scenario("overload_onset")
        assert "congestion" not in spec.to_dict()

    def test_bottleneck_fields_omitted_at_defaults(self):
        spec = get_scenario("overload_onset")
        loss = spec.to_dict()["loss"]
        assert "capacity" not in loss
        assert "window" not in loss
