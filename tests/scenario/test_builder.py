"""Tests for the fluent scenario builder."""

import pytest

from repro.scenario.builder import scenario
from repro.scenario.spec import ScenarioSpec


class TestBuilderProducesSpecs:
    def test_issue_headline_chain(self):
        """The canonical builder one-liner from the API design."""
        spec = (
            scenario()
            .regions(5, 100)
            .poisson(rate=2.0)
            .loss(p=0.01)
            .policy("two_phase", c=3.0)
            .spec()
        )
        assert spec.topology.kind == "star"
        assert spec.topology.n == 100
        assert spec.topology.sizes == (100, 100, 100, 100)
        assert spec.traffic.kind == "poisson"
        assert spec.traffic.rate == 2.0
        assert spec.loss.kind == "bernoulli"
        assert spec.loss.p == 0.01
        assert spec.policy.kind == "two_phase"
        assert spec.policy.c == 3.0

    def test_each_method_sets_its_sub_spec(self):
        spec = (
            scenario("full", seed=9)
            .chain(10, 5)
            .latency(intra=2.0, inter=80.0)
            .ramp(12, 40.0, 4.0, start=1.0)
            .gilbert_elliott(p_bad=0.7)
            .policy("hash", c=4.0)
            .protocol(remote_lambda=2.0, session_interval=None,
                      max_recovery_time=900.0)
            .fec("proactive", block_size=4, parity=1)
            .churn(leave_rate=0.01, join_rate=0.02, duration=200.0)
            .measure(horizon=1_500.0, probe_period=20.0)
            .describe("everything at once")
            .spec()
        )
        assert spec.name == "full" and spec.seed == 9
        assert spec.topology.sizes == (10, 5)
        assert spec.topology.intra_one_way == 2.0
        assert spec.traffic.kind == "ramp" and spec.traffic.count == 12
        assert spec.loss.kind == "gilbert_elliott" and spec.loss.p_bad == 0.7
        assert spec.policy.kind == "hash" and spec.policy.c == 4.0
        assert spec.policy.session_interval is None
        assert spec.policy.max_recovery_time == 900.0
        assert spec.fec.mode == "proactive"
        assert spec.churn.kind == "random" and spec.churn.join_rate == 0.02
        assert spec.measurement.horizon == 1_500.0
        assert spec.description == "everything at once"

    def test_numbers_are_normalized_to_canonical_types(self):
        """Builder coerces ints/floats so equal scenarios share a digest
        regardless of how the caller spelled the numbers."""
        a = scenario().single_region(20).uniform(5, 10).spec()
        b = scenario().single_region(20).uniform(5, 10.0).spec()
        assert a == b
        assert a.digest() == b.digest()

    def test_policy_tweak_without_kind_keeps_selected_family(self):
        spec = (
            scenario().policy("fixed_time", hold_time=300.0).policy(c=4.0).spec()
        )
        assert spec.policy.kind == "fixed_time"
        assert spec.policy.hold_time == 300.0
        assert spec.policy.c == 4.0

    def test_spec_returns_value_not_view(self):
        builder = scenario("x")
        first = builder.spec()
        builder.seed(5)
        assert first.seed == 0  # earlier snapshot unaffected

    def test_regions_validation(self):
        with pytest.raises(ValueError):
            scenario().regions(0, 10)

    def test_adaptive_verb_enables_the_subsystem(self):
        spec = (
            scenario().regions(3, 10)
            .adaptive(update_interval=120.0, hysteresis=0.2,
                      max_reparents=5, ewma_alpha=0.3)
            .spec()
        )
        assert spec.adapt.enabled
        assert spec.adapt.mode == "passive"
        assert spec.adapt.update_interval == 120.0
        assert spec.adapt.hysteresis == 0.2
        assert spec.adapt.max_reparents == 5
        assert spec.adapt.ewma_alpha == 0.3

    def test_workload_verbs_set_their_sub_specs(self):
        spec = (
            scenario().regions(3, 10)
            .mobility(speed=5.0, epoch=30.0, distance_loss=0.15)
            .playout(interval=20.0, startup_delay=60.0)
            .spec()
        )
        assert spec.mobility.enabled
        assert spec.mobility.kind == "waypoint"
        assert spec.mobility.speed == 5.0
        assert spec.mobility.distance_loss == 0.15
        assert spec.playout.enabled
        assert spec.playout.interval == 20.0
        assert spec.playout.startup_delay == 60.0

    def test_outage_verb_sets_the_loss_node(self):
        spec = (
            scenario().regions(3, 10)
            .outage(start=100.0, duration=250.0, regions=2,
                    receiver_loss=0.05)
            .spec()
        )
        assert spec.loss.kind == "outage"
        assert spec.loss.outage_start == 100.0
        assert spec.loss.outage_duration == 250.0
        assert spec.loss.outage_regions == 2
        assert spec.loss.receiver_loss == 0.05

    def test_latency_verb_sets_directional_delays(self):
        spec = (
            scenario().chain(5, 5)
            .latency(inter=40.0, inter_up=10.0, inter_down=70.0)
            .spec()
        )
        assert spec.topology.inter_up_one_way == 10.0
        assert spec.topology.inter_down_one_way == 70.0
        # None resets to symmetric.
        reset = (
            scenario().chain(5, 5)
            .latency(inter_up=10.0).latency(inter_up=None)
            .spec()
        )
        assert reset.topology.inter_up_one_way is None

    def test_round_trip_of_built_spec(self):
        spec = (
            scenario("rt").tree(1, 2, 4).bursts((5.0, 2), (20.0, 1))
            .fixed_holders(3).measure(duration=100.0).spec()
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestBuilderMaterializes:
    def test_build_and_run_small_scenario(self):
        built = (
            scenario("tiny", seed=3)
            .single_region(8)
            .multicast_once()
            .loss(p=0.5)
            .protocol(session_interval=25.0, max_recovery_time=500.0)
            .measure(horizon=600.0)
            .run()
        )
        assert built.simulation.all_received(1)
        summary = built.summary()
        assert summary["members"] == 8
        assert summary["delivered_fraction"] == 1.0

    def test_search_probe_builder_path(self):
        built = (
            scenario("probe", seed=1)
            .chain(20, 1)
            .latency(inter=500.0)
            .search_probe(4)
            .protocol(session_interval=None)
            .measure(duration=1_500.0)
            .run()
        )
        assert len(built.bufferers) == 4
        assert built.requester is not None
        assert built.simulation.members[built.requester].has_received(1)
