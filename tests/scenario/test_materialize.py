"""Materializer tests: spec → simulation parity and feature wiring.

The headline test hand-assembles the ablation_policies trial exactly
the way the experiment did before the scenario migration — explicit
``RrmpSimulation``, probes, ``UniformStream`` — and asserts the
spec-built path produces byte-identical metrics (hence byte-identical
``SeriesTable`` output for the migrated experiment).
"""

from typing import Dict

import pytest

from repro.metrics.occupancy import OccupancyProbe
from repro.metrics.stats import mean
from repro.net.ipmulticast import BernoulliOutcome
from repro.net.loss import GilbertElliottLoss
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation
from repro.scenario.builder import scenario
from repro.scenario.registry import get_scenario
from repro.scenario.spec import (
    MeasurementSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.workloads.traffic import UniformStream


def _hand_built_policy_trial(
    region_size: int, messages: int, interval: float, loss: float,
    seed: int, horizon: float,
) -> Dict[str, float]:
    """The pre-migration ablation_policies trial body, verbatim
    (two-phase arm), kept as the reference the builder must match."""
    hierarchy = chain([region_size] * 3)
    config = RrmpConfig(
        session_interval=50.0, max_recovery_time=horizon, long_term_ttl=1_000.0
    )
    simulation = RrmpSimulation(
        hierarchy, config=config, seed=seed, outcome=BernoulliOutcome(loss),
        policy_factory=None,
    )
    total_probe = OccupancyProbe(simulation.sim, simulation.buffer_occupancy, period=10.0)
    peak_node = [0.0]

    def sample_peak() -> float:
        per_node = simulation.occupancy_by_node()
        current = max(per_node.values()) if per_node else 0
        peak_node[0] = max(peak_node[0], float(current))
        return float(current)

    node_probe = OccupancyProbe(simulation.sim, sample_peak, period=10.0)
    UniformStream(messages, interval).schedule(simulation)
    simulation.run(until=horizon)
    total_probe.stop()
    node_probe.stop()
    latencies = simulation.recovery_latencies()
    undelivered = sum(
        len(simulation.alive_members()) - simulation.received_count(seq)
        for seq in range(1, messages + 1)
    )
    return {
        "avg total occupancy": total_probe.average(),
        "peak single-node occupancy": peak_node[0],
        "mean recovery latency (ms)": mean(latencies) if latencies else 0.0,
        "control messages": float(simulation.control_message_count()),
        "data messages": float(simulation.data_message_count()),
        "undelivered": float(undelivered),
        "violations": float(simulation.violation_count()),
    }


class TestBuilderMatchesHandBuilt:
    def test_policy_trial_metrics_byte_identical(self):
        """Builder-built == hand-built, float for float, across seeds."""
        from repro.experiments.ablation_policies import trial_policy

        params = {
            "policy": "two-phase C=6 T=40", "region_size": 8, "messages": 6,
            "interval": 20.0, "loss": 0.05, "horizon": 400.0,
        }
        for seed in (0, 1, 2):
            hand = _hand_built_policy_trial(8, 6, 20.0, 0.05, seed, 400.0)
            spec_built = trial_policy(params, seed)
            assert spec_built == hand, f"seed {seed} diverged"

    def test_policy_table_byte_identical_to_hand_built_table(self):
        """A whole migrated-experiment table derived from the hand-built
        reference equals the registry one, digest for digest."""
        from repro.experiments.ablation_policies import run_policy_comparison

        table = run_policy_comparison(
            region_size=6, messages=4, interval=20.0, loss=0.05,
            seeds=2, settle=300.0,
        )
        horizon = 4 * 20.0 + 300.0
        hand_runs = [
            _hand_built_policy_trial(6, 4, 20.0, 0.05, seed, horizon)
            for seed in (0, 1)
        ]
        two_phase_row = {
            name: values[0] for name, values in table.series.items()
        }
        for name in two_phase_row:
            assert two_phase_row[name] == mean([run[name] for run in hand_runs])


class TestMaterializeFeatures:
    def test_gilbert_elliott_wires_transport_loss(self):
        built = (
            scenario("ge", seed=5)
            .chain(6, 6)
            .uniform(10, 10.0)
            .gilbert_elliott(p_good_to_bad=0.5, p_bad_to_good=0.1, p_bad=1.0)
            .protocol(max_recovery_time=800.0)
            .measure(horizon=1_200.0)
            .build()
        )
        assert isinstance(built.simulation.network.loss, GilbertElliottLoss)
        built.run()
        # The bursty channel actually dropped packets, and recovery
        # repaired at least some of the resulting gaps.
        assert built.simulation.network.stats.dropped > 0
        assert built.simulation.received_count(1) > 0

    def test_ramp_traffic_schedules_all_sends(self):
        built = (
            scenario("ramp", seed=2)
            .single_region(5)
            .ramp(8, 30.0, 5.0)
            .protocol(session_interval=None)
            .measure(duration=400.0)
            .run()
        )
        assert built.message_count == 8
        assert built.simulation.sender.max_seq == 8

    def test_poisson_duration_defaults_to_horizon(self):
        built = (
            scenario("poisson", seed=4)
            .single_region(5)
            .poisson(rate=0.05)
            .measure(horizon=500.0)
            .build()
        )
        assert built.message_count > 0
        assert all(t < 500.0 for t in built.traffic.send_times())

    def test_poisson_without_any_bound_rejected(self):
        with pytest.raises(ValueError, match="poisson"):
            scenario().single_region(5).poisson(rate=0.1).build()

    def test_churn_duration_defaults_to_horizon(self):
        built = (
            scenario("churny", seed=6)
            .regions(2, 10)
            .uniform(5, 20.0)
            .churn(crash_rate=0.01, join_rate=0.01)
            .measure(horizon=600.0)
            .build()
        )
        assert built.churn is not None
        built.run()
        # Some membership events actually fired.
        assert built.churn.applied

    def test_churn_protects_sender_by_default(self):
        built = (
            scenario("protected", seed=8)
            .single_region(6)
            .uniform(3, 20.0)
            .churn(crash_rate=0.2, duration=300.0)
            .measure(horizon=400.0)
            .run()
        )
        assert built.simulation.members[built.simulation.sender.node_id].alive

    def test_detect_all_matches_run_initial_holders(self):
        """The spec probe path and the workload helper share one code
        path — identical holder draw and durations."""
        from repro.workloads.scenarios import run_initial_holders

        result = run_initial_holders(30, 3, seed=7)
        built = get_scenario("initial_holders").with_(seed=7)
        built = ScenarioSpec.from_json(built.to_json())  # survives transport
        built = built.with_(
            topology=TopologySpec(kind="single_region", n=30),
            traffic=TrafficSpec(kind="detect_all", holders=3),
        ).run()
        assert built.holders == result.holders

    def test_detect_all_validates_holder_count(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="single_region", n=4),
            traffic=TrafficSpec(kind="detect_all", holders=9),
            measurement=MeasurementSpec(duration=100.0),
        )
        with pytest.raises(ValueError):
            spec.build()

    def test_drain_after_bounded_run_settles_remaining_events(self):
        """drain=True after a horizon keeps running until the queue is
        empty (sessions stopped), instead of being silently ignored."""
        built = (
            scenario("settle", seed=4)
            .single_region(10)
            .uniform(3, 10.0)
            .loss(p=0.3)
            .protocol(session_interval=25.0, max_recovery_time=300.0)
            .measure(horizon=40.0, drain=True)
            .run()
        )
        sim = built.simulation
        assert sim.sim.now > 40.0  # kept going past the horizon
        assert all(sim.all_received(seq) for seq in (1, 2, 3))

    def test_fec_flush_scheduled_after_stream(self):
        built = (
            scenario("fec", seed=3)
            .chain(5, 5)
            .uniform(6, 10.0)
            .fec("proactive", block_size=4, parity=1, flush_after=1.0)
            .measure(horizon=500.0)
            .run()
        )
        # 6 messages with k=4: one full block encoded proactively, the
        # 2-message tail flushed at end_time + 1.
        assert built.simulation.trace.count("fec_encode") == 2

    def test_region_correlated_outcome_installed(self):
        built = (
            scenario("regional", seed=9)
            .chain(4, 4)
            .regional_loss(region=0.5, receiver=0.1)
            .build()
        )
        outcome = built.simulation.sender.outcome
        from repro.net.ipmulticast import RegionCorrelatedOutcome

        assert isinstance(outcome, RegionCorrelatedOutcome)
        assert outcome.sender == built.simulation.sender.node_id
