"""Tests for traffic generators."""

import random

import pytest

from repro.net.topology import single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation
from repro.workloads.traffic import (
    BurstStream,
    PoissonStream,
    RampStream,
    UniformStream,
)


class TestUniformStream:
    def test_send_times(self):
        stream = UniformStream(count=3, interval=20.0, start=5.0)
        assert stream.send_times() == [5.0, 25.0, 45.0]

    def test_zero_count(self):
        assert UniformStream(count=0, interval=10.0).send_times() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformStream(count=-1, interval=10.0)
        with pytest.raises(ValueError):
            UniformStream(count=1, interval=0.0)

    def test_schedule_drives_sender(self):
        simulation = RrmpSimulation(
            single_region(5), config=RrmpConfig(session_interval=None), seed=0,
        )
        count = UniformStream(count=4, interval=10.0).schedule(simulation)
        simulation.run(duration=100.0)
        assert count == 4
        assert simulation.sender.max_seq == 4


class TestPoissonStream:
    def test_times_within_duration(self):
        stream = PoissonStream(rate=0.1, duration=500.0, rng=random.Random(1))
        times = stream.send_times()
        assert times
        assert all(0.0 <= t < 500.0 for t in times)
        assert times == sorted(times)

    def test_rate_controls_count(self):
        low = PoissonStream(rate=0.01, duration=1_000.0, rng=random.Random(2))
        high = PoissonStream(rate=0.1, duration=1_000.0, rng=random.Random(2))
        assert len(high.send_times()) > len(low.send_times())

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonStream(rate=0.0, duration=10.0, rng=random.Random(1))
        with pytest.raises(ValueError):
            PoissonStream(rate=1.0, duration=0.0, rng=random.Random(1))


class TestRampStream:
    def test_send_times_interpolate_gaps_inclusively(self):
        """5 sends, 4 gaps: exactly 40, 30, 20, 10 ms."""
        stream = RampStream(5, initial_interval=40.0, final_interval=10.0)
        assert stream.send_times() == [0.0, 40.0, 70.0, 90.0, 100.0]

    def test_rate_increases_monotonically(self):
        times = RampStream(20, 50.0, 5.0, start=3.0).send_times()
        assert times[0] == 3.0
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[0] == pytest.approx(50.0)
        assert gaps[-1] == pytest.approx(5.0)

    def test_degenerate_counts(self):
        assert RampStream(0, 10.0, 5.0).send_times() == []
        assert RampStream(1, 10.0, 5.0, start=7.0).send_times() == [7.0]
        # A single gap uses the initial interval.
        assert RampStream(2, 10.0, 5.0).send_times() == [0.0, 10.0]

    def test_constant_when_intervals_equal(self):
        stream = RampStream(4, 10.0, 10.0)
        assert stream.send_times() == [0.0, 10.0, 20.0, 30.0]

    def test_end_time_extends_past_last_send(self):
        stream = RampStream(5, 40.0, 10.0)
        assert stream.end_time() == pytest.approx(110.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RampStream(-1, 10.0, 5.0)
        with pytest.raises(ValueError):
            RampStream(3, 0.0, 5.0)
        with pytest.raises(ValueError):
            RampStream(3, 10.0, 0.0)

    def test_schedule_drives_sender(self):
        simulation = RrmpSimulation(
            single_region(5), config=RrmpConfig(session_interval=None), seed=0,
        )
        count = RampStream(6, 20.0, 5.0).schedule(simulation)
        simulation.run(duration=200.0)
        assert count == 6
        assert simulation.sender.max_seq == 6


class TestBurstStream:
    def test_burst_expansion(self):
        stream = BurstStream([(10.0, 3), (50.0, 2)])
        assert stream.send_times() == [10.0, 10.0, 10.0, 50.0, 50.0]

    def test_bursts_sorted_regardless_of_input_order(self):
        stream = BurstStream([(50.0, 1), (10.0, 1)])
        assert stream.send_times() == [10.0, 50.0]

    def test_validation(self):
        """Regression: negative times and empty bursts used to pass
        silently and detonate later inside the scheduler."""
        with pytest.raises(ValueError, match="burst time must be >= 0"):
            BurstStream([(-1.0, 3)])
        with pytest.raises(ValueError, match="burst size must be >= 1"):
            BurstStream([(10.0, 0)])

    def test_burst_through_protocol_uses_sessions_for_tail(self):
        """Back-to-back sends: the last message's loss is only
        detectable via session messages (§2.1)."""
        from repro.net.ipmulticast import FixedHolders
        simulation = RrmpSimulation(
            single_region(6), config=RrmpConfig(session_interval=25.0), seed=3,
        )
        simulation.sender.outcome = FixedHolders(set())  # everyone misses all
        BurstStream([(0.0, 3)]).schedule(simulation)
        simulation.run(duration=2_000.0)
        for seq in (1, 2, 3):
            assert simulation.all_received(seq)


class TestPullApi:
    """The clock-driven next_send(now, credit) surface (see repro.cc)."""

    def test_next_send_returns_arrivals_in_order(self):
        stream = UniformStream(count=3, interval=10.0, start=5.0)
        assert stream.next_send(0.0) == 5.0
        assert stream.next_send(5.0) == 15.0
        assert stream.next_send(15.0) == 25.0
        assert stream.next_send(25.0) is None

    def test_credit_defers_a_ready_arrival(self):
        stream = UniformStream(count=2, interval=10.0, start=0.0)
        assert stream.next_send(0.0, credit=40.0) == 40.0
        assert stream.next_send(40.0, credit=41.0) == 41.0

    def test_credit_below_arrival_is_ignored(self):
        stream = UniformStream(count=1, interval=10.0, start=50.0)
        assert stream.next_send(0.0, credit=10.0) == 50.0

    def test_peek_does_not_consume(self):
        stream = UniformStream(count=2, interval=10.0, start=5.0)
        assert stream.peek_arrival() == 5.0
        assert stream.peek_arrival() == 5.0
        assert stream.next_send(0.0) == 5.0
        assert stream.peek_arrival() == 15.0

    def test_remaining_and_arrival_count(self):
        stream = UniformStream(count=3, interval=10.0)
        assert stream.arrival_count() == 3
        assert stream.remaining() == 3
        stream.next_send(0.0)
        assert stream.remaining() == 2
        assert stream.arrival_count() == 3

    def test_restart_rewinds_to_first_arrival(self):
        stream = UniformStream(count=2, interval=10.0, start=5.0)
        stream.next_send(0.0)
        stream.next_send(0.0)
        assert stream.next_send(0.0) is None
        stream.restart()
        assert stream.next_send(0.0) == 5.0

    def test_random_arrivals_are_memoized_across_surfaces(self):
        """Pull API, restart and the shim must all see ONE drawn sequence."""
        stream = PoissonStream(rate=0.05, duration=1_000.0, rng=random.Random(7))
        pulled = []
        while (t := stream.next_send(0.0)) is not None:
            pulled.append(t)
        stream.restart()
        with pytest.warns(DeprecationWarning):
            assert stream.send_times() == pulled

    def test_empty_stream(self):
        stream = UniformStream(count=0, interval=10.0)
        assert stream.next_send(0.0) is None
        assert stream.peek_arrival() is None
        assert stream.remaining() == 0


class TestSendTimesShim:
    def test_send_times_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="next_send"):
            UniformStream(count=1, interval=10.0).send_times()

    def test_warns_on_every_call(self):
        """The shim is not a once-per-process nag: each call site that
        still uses it should see the warning."""
        stream = UniformStream(count=1, interval=10.0)
        with pytest.warns(DeprecationWarning):
            stream.send_times()
        with pytest.warns(DeprecationWarning):
            stream.send_times()

    def test_warning_points_at_the_caller(self):
        """stacklevel=2: the warning must blame the calling line, not
        traffic.py, or migration hunts go nowhere."""
        with pytest.warns(DeprecationWarning) as captured:
            UniformStream(count=2, interval=10.0).send_times()
        assert captured[0].filename == __file__

    def test_shim_does_not_consume_the_pull_cursor(self):
        stream = UniformStream(count=2, interval=10.0, start=5.0)
        with pytest.warns(DeprecationWarning):
            assert stream.send_times() == [5.0, 15.0]
        assert stream.remaining() == 2
        assert stream.next_send(0.0) == 5.0

    def test_shim_returns_a_copy(self):
        stream = UniformStream(count=2, interval=10.0)
        with pytest.warns(DeprecationWarning):
            first = stream.send_times()
        first.append(999.0)
        with pytest.warns(DeprecationWarning):
            assert stream.send_times() == [0.0, 10.0]

    def test_schedule_does_not_warn(self, recwarn):
        simulation = RrmpSimulation(
            single_region(3), config=RrmpConfig(session_interval=None), seed=0,
        )
        UniformStream(count=2, interval=10.0).schedule(simulation)
        assert not [w for w in recwarn if w.category is DeprecationWarning]
