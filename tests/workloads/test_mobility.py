"""Tests for the waypoint mobility model (repro.workloads.mobility)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import chain, single_region
from repro.protocol.config import RrmpConfig
from repro.protocol.rrmp import RrmpSimulation
from repro.scenario.spec import MobilitySpec
from repro.sim.randomness import derive_seed
from repro.workloads.mobility import (
    DistanceLoss,
    MobilityManager,
    region_anchors,
)


def manager(hierarchy=None, seed=7, **overrides):
    spec = MobilitySpec(kind="waypoint", **overrides)
    return MobilityManager(hierarchy or chain([5, 5, 5]), spec, seed)


class TestAnchors:
    def test_single_region_sits_at_the_center(self):
        anchors = region_anchors(single_region(4), area=1000.0)
        assert anchors == {0: (500.0, 500.0)}

    def test_anchors_deterministic_in_the_hierarchy(self):
        a = region_anchors(chain([5, 5, 5]), area=1000.0)
        b = region_anchors(chain([5, 5, 5]), area=1000.0)
        assert a == b
        assert len(a) == 3

    def test_anchors_are_distinct(self):
        anchors = region_anchors(chain([3, 3, 3, 3]), area=1000.0)
        assert len(set(anchors.values())) == 4


class TestDeterminism:
    """All movement randomness is named-seed derived: trajectories are
    pure functions of (master_seed, node) and nothing else."""

    def test_waypoint_for_is_a_pure_function(self):
        m = manager(seed=42)
        assert m.waypoint_for(3, 5) == m.waypoint_for(3, 5)
        assert manager(seed=42).waypoint_for(3, 5) == m.waypoint_for(3, 5)

    def test_waypoints_match_the_documented_derivation(self):
        m = manager(seed=42)
        rng = random.Random(derive_seed(42, ("mobility", 3, 5)))
        expected = (rng.uniform(0.0, m.spec.area), rng.uniform(0.0, m.spec.area))
        assert m.waypoint_for(3, 5) == expected

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           node=st.integers(min_value=0, max_value=14),
           epoch=st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_same_seed_same_trajectory(self, seed, node, epoch):
        a = manager(seed=seed)
        b = manager(seed=seed)
        assert a.positions[node] == b.positions[node]
        assert a.waypoint_for(node, epoch) == b.waypoint_for(node, epoch)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           node=st.integers(min_value=0, max_value=14),
           epoch=st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_waypoints_stay_inside_the_field(self, seed, node, epoch):
        m = manager(seed=seed)
        x, y = m.waypoint_for(node, epoch)
        assert 0.0 <= x <= m.spec.area
        assert 0.0 <= y <= m.spec.area

    def test_start_positions_cluster_near_the_home_anchor(self):
        m = manager(seed=9)
        spread = m.spec.area * 0.08
        for node, pos in m.positions.items():
            anchor = m.anchors[m.hierarchy.region_id_of(node)]
            assert abs(pos[0] - anchor[0]) <= spread + 1e-9
            assert abs(pos[1] - anchor[1]) <= spread + 1e-9


class TestHandoffs:
    def build(self, seed=11):
        simulation = RrmpSimulation(
            chain([6, 6, 6]),
            config=RrmpConfig(session_interval=25.0),
            seed=seed,
        )
        m = MobilityManager(
            simulation.hierarchy,
            MobilitySpec(kind="waypoint", speed=6.0, epoch=40.0),
            master_seed=seed,
        )
        return simulation, m

    def test_roaming_members_hand_off_between_regions(self):
        simulation, m = self.build()
        m.attach(simulation, duration=1_500.0)
        simulation.sender.multicast()
        simulation.run(duration=1_500.0)
        assert m.handoff_count > 0
        assert simulation.trace.count("mobility_handoff") == m.handoff_count
        # Every handoff is the §3.2 graceful path: a leave plus a join.
        assert simulation.trace.count("member_left") >= m.handoff_count
        assert simulation.trace.count("member_joined") >= m.handoff_count

    def test_protected_sender_never_hands_off(self):
        simulation, m = self.build()
        sender = simulation.sender.member.node_id
        m.attach(simulation, duration=1_500.0)
        simulation.run(duration=1_500.0)
        assert simulation.members[sender].alive
        for record in simulation.trace.of_kind("mobility_handoff"):
            assert record["node"] != sender

    def test_epochs_are_finite_so_drain_terminates(self):
        simulation, m = self.build()
        m.attach(simulation, duration=400.0)
        simulation.sender.multicast()
        simulation.drain()
        assert m.epoch_count == int(400.0 // m.spec.epoch)


class TestDistanceLoss:
    def test_probability_scales_with_distance(self):
        m = manager(seed=5)
        loss = DistanceLoss(m, max_loss=0.5)
        m.positions[0] = (0.0, 0.0)
        m.positions[1] = (0.0, 0.0)
        m.positions[2] = (m.spec.area * 2, 0.0)  # clamped ratio caps at 1
        assert loss.probability(0, 1) == 0.0
        assert loss.probability(0, 2) == 0.5

    def test_base_model_is_consulted_first(self):
        class AlwaysLose:
            def is_lost(self, src, dst, kind, rng):
                return True

        m = manager(seed=5)
        loss = DistanceLoss(m, max_loss=0.0, base=AlwaysLose())
        assert loss.is_lost(0, 1, "data", random.Random(1))

    def test_control_traffic_unaffected_by_default(self):
        m = manager(seed=5)
        m.positions[0] = (0.0, 0.0)
        m.positions[1] = (m.spec.area, m.spec.area)
        loss = DistanceLoss(m, max_loss=1.0)
        assert not loss.is_lost(0, 1, "control", random.Random(1))
        assert loss.is_lost(0, 1, "data", random.Random(1))
