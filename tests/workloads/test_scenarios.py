"""Tests for the canned §4 scenarios."""

import pytest

from repro.workloads.scenarios import run_initial_holders, run_search


class TestInitialHoldersScenario:
    def test_basic_run_recovers(self):
        result = run_initial_holders(30, 3, seed=0)
        assert result.all_recovered()
        assert len(result.holders) == 3

    def test_holder_durations_counted_per_holder(self):
        result = run_initial_holders(30, 5, seed=1)
        assert len(result.holder_buffering_durations()) == 5

    def test_durations_at_least_idle_threshold(self):
        """A holder buffers at least T (nothing can idle-out earlier)."""
        result = run_initial_holders(30, 3, seed=2, idle_threshold=40.0)
        assert all(d >= 40.0 for d in result.holder_buffering_durations())

    def test_more_holders_shorter_buffering(self):
        def mean_duration(k):
            total, count = 0.0, 0
            for seed in range(8):
                result = run_initial_holders(60, k, seed=seed)
                durations = result.holder_buffering_durations()
                total += sum(durations)
                count += len(durations)
            return total / count

        assert mean_duration(40) < mean_duration(1)

    def test_all_members_holding_idle_immediately(self):
        result = run_initial_holders(20, 20, seed=3)
        durations = result.holder_buffering_durations()
        assert all(d == pytest.approx(40.0) for d in durations)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            run_initial_holders(10, 0)
        with pytest.raises(ValueError):
            run_initial_holders(10, 11)

    def test_deterministic_per_seed(self):
        a = run_initial_holders(40, 4, seed=9).holder_buffering_durations()
        b = run_initial_holders(40, 4, seed=9).holder_buffering_durations()
        assert a == b


class TestSearchScenario:
    def test_search_served(self):
        result = run_search(50, 5, seed=0)
        assert result.search_time is not None
        assert result.search_time >= 0.0

    def test_bufferer_count_honoured(self):
        result = run_search(50, 5, seed=1)
        assert len(result.bufferers) == 5
        simulation = result.simulation
        for node in result.bufferers:
            member = simulation.members[node]
            # Bufferers hold it (unless they handed it over by serving
            # and the scenario ended) — check initial install happened.
            assert member.has_received(1)

    def test_search_time_on_five_ms_grid(self):
        """With 5 ms one-way hops every event lands on the 5 ms grid."""
        result = run_search(50, 2, seed=2)
        assert result.search_time % 5.0 == pytest.approx(0.0)

    def test_zero_bufferers_unserved(self):
        result = run_search(20, 0, seed=3, horizon=500.0)
        assert result.served_at is None
        assert result.search_time is None

    def test_requester_receives_message(self):
        result = run_search(50, 5, seed=4)
        assert result.simulation.members[result.requester].has_received(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_search(10, 11)
