"""CongestionDriver pacing tests against stub senders and the real stack."""

import pytest

from repro.cc.controller import AimdController, NoneCc
from repro.cc.driver import CongestionDriver
from repro.protocol.config import CongestionConfig
from repro.protocol.messages import FeedbackReport
from repro.sim import Simulator
from repro.workloads.traffic import UniformStream


class StubMember:
    def __init__(self):
        self.extra_handlers = {}
        self.repair_interest_hook = None
        self.config = type("Cfg", (), {"fec_parity": 2})()


class StubEncoder:
    def __init__(self, block_size=8, parity=2):
        self.block_size = block_size
        self.parity = parity


class StubSender:
    def __init__(self, fec=None):
        self.member = StubMember()
        self.fec = fec
        self.max_seq = 0
        self.send_times = []

    def multicast(self):
        self.max_seq += 1


def _config(**overrides):
    defaults = dict(controller="aimd", target_loss=0.05, min_rate=10.0,
                    max_rate=100.0, feedback_interval=100.0)
    defaults.update(overrides)
    return CongestionConfig(**defaults)


def _drive(controller, generator, fec=None):
    sim = Simulator()
    sender = StubSender(fec=fec)
    original_multicast = sender.multicast

    def recording_multicast():
        sender.send_times.append(sim.now)
        original_multicast()

    sender.multicast = recording_multicast
    driver = CongestionDriver(sim, sender, generator, controller)
    driver.start()
    sim.run()
    return sim, sender, driver


class TestOpenLoopPacing:
    def test_nonecc_emits_the_arrival_schedule_exactly(self):
        _sim, sender, driver = _drive(
            NoneCc(), UniformStream(count=4, interval=10.0, start=5.0))
        assert sender.send_times == [5.0, 15.0, 25.0, 35.0]
        assert driver.sent == 4
        assert driver.done


class TestAdaptivePacing:
    def test_credit_throttles_fast_arrivals(self):
        # Arrivals every 2 ms, controller capped at 100 msgs/s (10 ms):
        # the first send is free, the rest queue behind the credit.
        controller = AimdController(_config(), initial_rate=100.0)
        _sim, sender, driver = _drive(
            controller, UniformStream(count=4, interval=2.0, start=0.0))
        assert sender.send_times == [0.0, 10.0, 20.0, 30.0]
        assert driver.sent == 4

    def test_slow_arrivals_pass_untouched(self):
        controller = AimdController(_config(), initial_rate=100.0)
        _sim, sender, _driver = _drive(
            controller, UniformStream(count=3, interval=50.0, start=0.0))
        assert sender.send_times == [0.0, 50.0, 100.0]

    def test_stop_halts_the_loop(self):
        sim = Simulator()
        sender = StubSender()
        driver = CongestionDriver(
            sim, sender, UniformStream(count=100, interval=10.0), NoneCc())
        driver.start()
        sim.at(25.0, driver.stop)
        sim.run()
        assert sender.max_seq == 3  # sends at 0, 10, 20; 30+ suppressed

    def test_on_complete_fires_once_when_stream_drains(self):
        completions = []
        sim = Simulator()
        sender = StubSender()
        driver = CongestionDriver(
            sim, sender, UniformStream(count=2, interval=10.0), NoneCc(),
            on_complete=completions.append)
        driver.start()
        sim.run()
        assert driver.done
        assert len(completions) == 1


class TestFeedbackPlumbing:
    def test_feedback_handler_reaches_controller(self):
        controller = AimdController(_config(), initial_rate=100.0)
        sim = Simulator()
        sender = StubSender()
        driver = CongestionDriver(
            sim, sender, UniformStream(count=1, interval=10.0), controller)
        driver.start()
        handler = sender.member.extra_handlers[FeedbackReport]
        handler(FeedbackReport(receiver=7, loss_estimate=0.3, rtt_ms=12.0,
                               max_seq=5, received=3))
        assert 7 in controller.receivers
        assert controller.receivers[7].loss == pytest.approx(0.3)

    def test_nack_hook_chains_previous_hook(self):
        controller = AimdController(_config(), initial_rate=100.0)
        sim = Simulator()
        sender = StubSender()
        seen = []
        sender.member.repair_interest_hook = seen.append
        driver = CongestionDriver(
            sim, sender, UniformStream(count=1, interval=10.0), controller)
        driver.start()
        sender.member.repair_interest_hook(42)
        assert seen == [42]  # the pre-existing (reactive FEC) hook fired
        controller.on_nack(200.0, 43)  # and the controller counts NACKs
        assert controller._window_nacks >= 1


class TestAdaptiveFec:
    def test_parity_budget_applied_before_send(self):
        controller = AimdController(
            _config(parity_min=1, parity_max=6), initial_rate=100.0)
        controller.on_feedback(0.0, FeedbackReport(
            receiver=1, loss_estimate=0.25, rtt_ms=10.0, max_seq=0, received=0))
        encoder = StubEncoder(block_size=8, parity=2)
        _sim, _sender, _driver = _drive(
            controller, UniformStream(count=1, interval=10.0), fec=encoder)
        assert encoder.parity == 3  # ceil(0.25 * 8) + 1

    def test_no_fec_encoder_is_fine(self):
        controller = AimdController(
            _config(parity_min=1, parity_max=6), initial_rate=100.0)
        _sim, sender, driver = _drive(
            controller, UniformStream(count=2, interval=10.0), fec=None)
        assert driver.sent == 2
