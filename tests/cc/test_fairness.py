"""Jain-index and shared-bottleneck duel tests."""

import pytest

from repro.cc.fairness import jain_index, run_fairness_duel


class TestJainIndex:
    def test_equal_split_is_one(self):
        assert jain_index([50.0, 50.0]) == pytest.approx(1.0)
        assert jain_index([10.0] * 8) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_index([100.0, 0.0]) == pytest.approx(0.5)
        assert jain_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        assert jain_index([3.0, 1.0]) == pytest.approx(jain_index([30.0, 10.0]))


class TestFairnessDuel:
    @pytest.mark.parametrize("controller", ["tfmcc", "aimd"])
    def test_converges_to_fair_split(self, controller):
        result = run_fairness_duel(controller, capacity=200.0)
        # One flow starts at the ceiling, the other at the floor; by the
        # second half of the run they must share near-equally.
        assert result.jain > 0.95
        assert 0.0 < result.utilization <= 1.2
        assert result.samples > 0
        assert len(result.rates) == 2

    def test_deterministic(self):
        first = run_fairness_duel("tfmcc", capacity=200.0)
        second = run_fairness_duel("tfmcc", capacity=200.0)
        assert first.rates == second.rates
        assert first.jain == second.jain

    def test_to_dict_round_trips_the_fields(self):
        result = run_fairness_duel("aimd", capacity=100.0)
        payload = result.to_dict()
        assert payload["controller"] == "aimd"
        assert payload["capacity"] == 100.0
        assert payload["jain"] == result.jain
        assert payload["rates"] == list(result.rates)
