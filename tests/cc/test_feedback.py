"""Feedback reporter tests: backlog estimate and the periodic unicast."""

import pytest

from repro.cc.feedback import (
    build_feedback,
    install_feedback_reporters,
)
from repro.scenario.builder import scenario


class StubGap:
    def __init__(self, highest, received):
        self.highest = highest
        self.received_count = received


class StubMember:
    def __init__(self, node_id, highest, received, rtt=12.5):
        self.node_id = node_id
        self.gap = StubGap(highest, received)
        self._rtt = rtt

    def rtt_to(self, node):
        return self._rtt


class TestBuildFeedback:
    def test_no_stream_yet_reports_zero_loss(self):
        report = build_feedback(StubMember(3, highest=0, received=0), 0)
        assert report.loss_estimate == 0.0
        assert report.receiver == 3

    def test_backlog_is_the_missing_fraction(self):
        report = build_feedback(StubMember(3, highest=100, received=80), 0)
        assert report.loss_estimate == pytest.approx(0.2)
        assert report.max_seq == 100
        assert report.received == 80

    def test_caught_up_receiver_reports_zero(self):
        report = build_feedback(StubMember(3, highest=50, received=50), 0)
        assert report.loss_estimate == 0.0

    def test_rtt_rides_along(self):
        report = build_feedback(StubMember(3, 10, 10, rtt=34.0), 0)
        assert report.rtt_ms == pytest.approx(34.0)


class TestReportersEndToEnd:
    def _built(self, controller="tfmcc"):
        return (
            scenario("cc-feedback-test", seed=3)
            .single_region(8)
            .uniform(20, interval=10.0, start=1.0)
            .loss(p=0.2)
            .congestion(controller, target_loss=0.02, min_rate=5.0,
                        max_rate=150.0, feedback_interval=50.0)
            .protocol(max_recovery_time=1_000.0)
            .measure(horizon=2_000.0)
            .build()
        )

    def test_reporters_installed_on_every_receiver(self):
        built = self._built()
        # Sender excluded: one reporter per other member.
        assert len(built.cc_reporters) == len(built.simulation.members) - 1
        assert all(reporter.running for reporter in built.cc_reporters)

    def test_run_produces_feedback_and_paced_sends(self):
        built = self._built()
        built.run()
        kinds = {record.kind for record in built.simulation.trace.records}
        assert "cc_send" in kinds
        assert "cc_feedback" in kinds
        assert built.cc_driver is not None
        assert built.cc_driver.sent == 20
        summary = built.summary()
        assert summary["cc_controller"] == "tfmcc"
        assert summary["offered_messages"] == 20
        # The final interval must respect the configured rate bounds.
        assert 1000.0 / 150.0 <= summary["cc_final_interval_ms"] <= 1000.0 / 5.0

    def test_reporters_stopped_after_run(self):
        built = self._built()
        built.run()
        assert all(not reporter.running for reporter in built.cc_reporters)

    def test_install_skips_the_sender(self):
        built = self._built()
        sender_node = built.simulation.sender.node_id
        members = built.simulation.members.values()
        reporters = install_feedback_reporters(members, sender_node, 50.0)
        try:
            assert all(r.member.node_id != sender_node for r in reporters)
        finally:
            for reporter in reporters:
                reporter.stop()


class TestOpenLoopStaysDark:
    def test_cc_off_arms_nothing(self):
        built = (
            scenario("cc-off-test", seed=3)
            .single_region(8)
            .uniform(5, interval=10.0, start=1.0)
            .measure(horizon=500.0)
            .build()
        )
        assert built.cc_driver is None
        assert built.cc_reporters == []
        built.run()
        kinds = {record.kind for record in built.simulation.trace.records}
        assert "cc_send" not in kinds
        assert "cc_feedback" not in kinds
        summary = built.summary()
        assert "cc_controller" not in summary
        assert "offered_messages" not in summary
