"""Control-law tests: each controller driven by synthetic feedback traces.

Controllers are pure deterministic state machines, so every law is
checkable without a network: feed timestamped FeedbackReports and NACKs,
assert the rate trajectory.
"""

import pytest

from repro.cc.controller import (
    AimdController,
    NoneCc,
    TfmccController,
    controller_for,
    tcp_friendly_rate,
)
from repro.protocol.config import CongestionConfig
from repro.protocol.messages import FeedbackReport


def _config(**overrides):
    defaults = dict(controller="aimd", target_loss=0.05, min_rate=1.0,
                    max_rate=1000.0, feedback_interval=100.0)
    defaults.update(overrides)
    return CongestionConfig(**defaults)


def _report(receiver=1, loss=0.0, rtt=10.0):
    return FeedbackReport(receiver=receiver, loss_estimate=loss,
                          rtt_ms=rtt, max_seq=0, received=0)


class TestNoneCc:
    def test_never_defers(self):
        cc = NoneCc()
        assert cc.send_credit(123.0) == float("-inf")
        assert cc.interval() == 0.0

    def test_parity_passthrough(self):
        assert NoneCc().parity_budget(8, 2) == 2

    def test_events_are_noops(self):
        cc = NoneCc()
        cc.on_send(1.0)
        cc.on_feedback(2.0, _report(loss=0.9))
        cc.on_nack(3.0, 7)
        assert cc.send_credit(4.0) == float("-inf")


class TestFactory:
    def test_dispatch(self):
        assert isinstance(controller_for(_config(controller="none")), NoneCc)
        assert isinstance(controller_for(_config(controller="aimd")),
                          AimdController)
        assert isinstance(controller_for(_config(controller="tfmcc")),
                          TfmccController)

    def test_initial_rate_override(self):
        cc = controller_for(_config(controller="aimd"), initial_rate=50.0)
        assert cc.rate == pytest.approx(50.0)

    def test_optimistic_start_at_ceiling(self):
        cc = controller_for(_config(controller="tfmcc", max_rate=200.0))
        assert cc.rate == pytest.approx(200.0)


class TestWindowing:
    def test_first_window_closes_only_after_interval(self):
        cc = AimdController(_config(), initial_rate=100.0)
        cc.on_feedback(0.0, _report(loss=0.5))
        cc.on_feedback(50.0, _report(loss=0.5))  # window still open
        assert cc.rate == pytest.approx(100.0)
        cc.on_feedback(101.0, _report(loss=0.5))  # closes the window
        assert cc.rate == pytest.approx(50.0)


class TestAimd:
    def test_multiplicative_decrease_on_loss(self):
        cc = AimdController(_config(), initial_rate=100.0)
        cc.on_feedback(0.0, _report(loss=0.2))
        cc.on_feedback(101.0, _report(loss=0.2))
        assert cc.rate == pytest.approx(50.0)

    def test_additive_increase_when_clean(self):
        cc = AimdController(_config(), initial_rate=100.0)
        cc.on_feedback(0.0, _report(loss=0.0))
        cc.on_feedback(101.0, _report(loss=0.0))
        assert cc.rate == pytest.approx(110.0)

    def test_nacks_alone_trigger_decrease(self):
        cc = AimdController(_config(), initial_rate=100.0)
        cc.on_nack(0.0, 1)
        cc.on_nack(101.0, 2)  # closes window with 1 nack inside
        assert cc.rate == pytest.approx(50.0)

    def test_rate_clamped_to_bounds(self):
        cc = AimdController(_config(min_rate=40.0, max_rate=120.0),
                            initial_rate=100.0)
        for t in (0.0, 101.0, 202.0, 303.0):
            cc.on_feedback(t, _report(loss=0.5))
        assert cc.rate == pytest.approx(40.0)  # floor, not 12.5
        clean = AimdController(_config(min_rate=40.0, max_rate=120.0),
                               initial_rate=115.0)
        for t in (0.0, 101.0, 202.0):
            clean.on_feedback(t, _report(loss=0.0))
        assert clean.rate == pytest.approx(120.0)  # ceiling, not 135

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AimdController(_config(), additive_increase=0.0)
        with pytest.raises(ValueError):
            AimdController(_config(), decrease_factor=1.0)


class TestTcpFriendlyRate:
    def test_zero_loss_is_unlimited(self):
        assert tcp_friendly_rate(0.0, 10.0) == float("inf")

    def test_monotone_decreasing_in_loss(self):
        rates = [tcp_friendly_rate(p, 10.0) for p in (0.01, 0.05, 0.2, 0.5)]
        assert rates == sorted(rates, reverse=True)

    def test_slower_rtt_means_lower_rate(self):
        assert tcp_friendly_rate(0.05, 100.0) < tcp_friendly_rate(0.05, 10.0)


class TestTfmcc:
    def test_multiplicative_probe_while_clean(self):
        cc = TfmccController(_config(controller="tfmcc"), initial_rate=100.0)
        cc.on_feedback(0.0, _report(loss=0.0))
        cc.on_feedback(101.0, _report(loss=0.0))
        assert cc.rate == pytest.approx(130.0)

    def test_equation_rate_from_worst_receiver(self):
        cc = TfmccController(_config(controller="tfmcc", target_loss=0.02),
                             initial_rate=500.0)
        cc.on_feedback(0.0, _report(receiver=1, loss=0.30, rtt=20.0))
        cc.on_feedback(101.0, _report(receiver=2, loss=0.0))
        expected = tcp_friendly_rate(0.30 - 0.02, 20.0)
        assert cc.rate == pytest.approx(expected)

    def test_worst_receiver_is_highest_loss_then_slowest(self):
        cc = TfmccController(_config(controller="tfmcc"), initial_rate=100.0)
        cc.on_feedback(0.0, _report(receiver=1, loss=0.10, rtt=5.0))
        cc.on_feedback(1.0, _report(receiver=2, loss=0.30, rtt=5.0))
        cc.on_feedback(2.0, _report(receiver=3, loss=0.30, rtt=50.0))
        worst = cc.worst_receiver()
        assert (worst.loss, worst.rtt_ms) == (0.30, 50.0)

    def test_nacks_without_loss_hold_the_rate(self):
        cc = TfmccController(_config(controller="tfmcc"), initial_rate=100.0)
        cc.on_nack(0.0, 1)
        cc.on_feedback(50.0, _report(loss=0.0))
        cc.on_feedback(101.0, _report(loss=0.0))  # closes: 1 nack, no loss
        assert cc.rate == pytest.approx(100.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TfmccController(_config(controller="tfmcc"), increase_factor=1.0)


class TestParityBudget:
    def test_disabled_without_parity_max(self):
        cc = AimdController(_config(parity_max=None), initial_rate=100.0)
        cc.on_feedback(0.0, _report(loss=0.5))
        assert cc.parity_budget(8, 2) == 2

    def test_scales_with_worst_loss(self):
        cc = AimdController(_config(parity_min=1, parity_max=6),
                            initial_rate=100.0)
        assert cc.parity_budget(8, 2) == 1  # no loss yet: the floor
        cc.on_feedback(0.0, _report(loss=0.25))
        # ceil(0.25 * 8) + 1 = 3 messages of parity
        assert cc.parity_budget(8, 2) == 3

    def test_clamped_to_parity_max_and_gf256(self):
        cc = AimdController(_config(parity_min=1, parity_max=100),
                            initial_rate=100.0)
        cc.on_feedback(0.0, _report(loss=1.0))
        assert cc.parity_budget(250, 2) == 6  # 256 - block_size
