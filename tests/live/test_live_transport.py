"""Tests for the asyncio-UDP live transport."""

from __future__ import annotations

import asyncio

import pytest

from repro.live.clock import LiveClock
from repro.live.codec import MAGIC, encode_frame
from repro.live.runtime import Transport
from repro.live.transport import LiveTransport
from repro.net.latency import ConstantLatency
from repro.net.loss import BernoulliLoss
from repro.net.transport import Network
from repro.protocol.messages import DataMessage, LocalRequest
from repro.sim import RandomStreams, Simulator, TraceLog


class Sink:
    """A minimal endpoint that records delivered packets."""

    def __init__(self):
        self.packets = []

    def on_packet(self, packet):
        self.packets.append(packet)


def run(coro):
    return asyncio.run(coro)


async def open_transport(**kwargs):
    clock = LiveClock(speedup=kwargs.pop("speedup", 100.0))
    transport = LiveTransport(clock, ConstantLatency(1.0), **kwargs)
    await transport.open()
    return clock, transport


async def drain(clock, virtual_ms=50.0):
    await clock.sleep(virtual_ms)


class TestProtocolSurface:
    def test_both_transports_satisfy_the_runtime_protocol(self):
        async def main():
            _clock, live = await open_transport()
            assert isinstance(live, Transport)
            live.close()
            sim_net = Network(Simulator(), ConstantLatency(1.0))
            assert isinstance(sim_net, Transport)

        run(main())


class TestDelivery:
    def test_unicast_round_trip(self):
        async def main():
            clock, transport = await open_transport()
            sink = Sink()
            transport.register(1, sink)
            message = DataMessage(seq=1, sender=0)
            packet = transport.unicast(0, 1, message)
            assert packet is not None
            await drain(clock)
            assert [p.payload for p in sink.packets] == [message]
            assert transport.stats.delivered == 1
            transport.close()

        run(main())

    def test_multicast_fans_out_and_skips_sender(self):
        async def main():
            clock, transport = await open_transport()
            sinks = {n: Sink() for n in range(4)}
            for n, sink in sinks.items():
                transport.register(n, sink)
            message = DataMessage(seq=2, sender=0)
            scheduled = transport.multicast(0, list(sinks), message)
            assert scheduled == 3
            await drain(clock)
            assert sinks[0].packets == []
            for n in (1, 2, 3):
                assert [p.payload for p in sinks[n].packets] == [message]
            transport.close()

        run(main())

    def test_latency_shim_delays_by_virtual_time(self):
        async def main():
            clock = LiveClock(speedup=100.0)
            transport = LiveTransport(clock, ConstantLatency(20.0))
            await transport.open()
            sink = Sink()
            transport.register(1, sink)
            transport.unicast(0, 1, DataMessage(seq=1, sender=0))
            await clock.sleep(5.0)
            assert sink.packets == []  # still in the latency shim
            await clock.sleep(60.0)
            [packet] = sink.packets
            assert packet.deliver_time >= 20.0
            transport.close()

        run(main())

    def test_loss_shim_drops_with_the_seeded_stream(self):
        async def main():
            clock, transport = await open_transport(
                loss=BernoulliLoss(probability=1.0),  # data only
                streams=RandomStreams(7),
            )
            sink = Sink()
            transport.register(1, sink)
            assert transport.unicast(0, 1, DataMessage(seq=1, sender=0)) is None
            packet = transport.unicast(0, 1, LocalRequest(seq=1, requester=0))
            assert packet is not None
            await drain(clock)
            assert [type(p.payload).__name__ for p in sink.packets] \
                == ["LocalRequest"]
            assert transport.stats.dropped == 1
            transport.close()

        run(main())


class TestSendDropped:
    def test_unregistered_destination_counts_send_dropped(self):
        async def main():
            trace = TraceLog()
            clock, transport = await open_transport(trace=trace)
            transport.register(0, Sink())
            assert transport.unicast(0, 99, DataMessage(seq=1, sender=0)) is None
            assert transport.stats.send_dropped == 1
            assert transport.stats.dropped == 1
            [record] = trace.of_kind("send_dropped")
            assert record["dst"] == 99
            assert record["reason"] == "unregistered"
            transport.close()

        run(main())

    def test_directory_mode_requires_local_registration(self):
        """A departed co-located member keeps sim semantics even when
        the directory still lists it."""
        async def main():
            clock, transport = await open_transport(directory={})
            transport.directory = {0: transport.local_address,
                                   1: transport.local_address}
            transport.register(0, Sink())  # 1 is in the directory, not here
            assert transport.unicast(0, 1, DataMessage(seq=1, sender=0)) is None
            assert transport.stats.send_dropped == 1
            transport.close()

        run(main())


class TestInboundRejection:
    def test_malformed_datagrams_are_counted_and_dropped(self):
        async def main():
            clock, transport = await open_transport()
            sink = Sink()
            transport.register(1, sink)
            transport._sock.sendto(b"not an rrmp frame",
                                   transport.local_address)
            transport._sock.sendto(MAGIC + b"{broken json",
                                   transport.local_address)
            await drain(clock)
            assert transport.recv_rejected == 2
            assert sink.packets == []
            transport.close()

        run(main())

    def test_frame_for_unknown_node_is_dropped(self):
        async def main():
            clock, transport = await open_transport()
            frame = encode_frame(0, 42, DataMessage(seq=1, sender=0),
                                 send_time=0.0)
            transport._sock.sendto(frame, transport.local_address)
            await drain(clock)
            assert transport.recv_unknown == 1
            transport.close()

        run(main())

    def test_unregister_stops_delivery(self):
        async def main():
            clock, transport = await open_transport()
            sink = Sink()
            transport.register(1, sink)
            assert transport.is_registered(1)
            transport.unregister(1)
            assert not transport.is_registered(1)
            assert transport.unicast(0, 1, DataMessage(seq=1, sender=0)) is None
            transport.close()

        run(main())


class TestLifecycle:
    def test_open_twice_raises(self):
        async def main():
            _clock, transport = await open_transport()
            with pytest.raises(RuntimeError):
                await transport.open()
            transport.close()

        run(main())

    def test_close_is_idempotent(self):
        async def main():
            _clock, transport = await open_transport()
            transport.close()
            transport.close()

        run(main())

    def test_burst_survives_the_kernel_buffer(self):
        """A burst far beyond the default socket buffer arrives whole
        (the transport enlarges SO_RCVBUF and drains in batches)."""
        async def main():
            clock, transport = await open_transport()
            sink = Sink()
            transport.register(1, sink)
            for seq in range(1, 1001):
                transport.unicast(0, 1, LocalRequest(seq=seq, requester=0))
            for _ in range(200):
                await drain(clock, 20.0)
                if len(sink.packets) >= 1000:
                    break
            assert len(sink.packets) == 1000
            transport.close()

        run(main())
