"""Tests for the ``live`` CLI subcommand."""

from __future__ import annotations

import dataclasses
import json

from repro.experiments.cli import main
from repro.scenario.registry import get_scenario


def small_spec():
    """The same 6-member chain used by the session tests."""
    spec = get_scenario("initial_holders")
    return spec.with_(
        name="live_cli_test",
        topology=dataclasses.replace(spec.topology, kind="chain", n=6,
                                     sizes=(3, 3)),
        traffic=dataclasses.replace(spec.traffic, kind="uniform", count=4,
                                    interval=20.0, start=10.0),
    )


def spec_path(tmp_path, spec=None, name="spec.json"):
    path = tmp_path / name
    path.write_text((spec or small_spec()).to_json())
    return str(path)


class TestLiveRun:
    def test_loopback_run_clean_exit(self, tmp_path, capsys):
        assert main(["live", "run", spec_path(tmp_path),
                     "--speedup", "20"]) == 0
        output = capsys.readouterr().out
        assert "live live_cli_test" in output
        assert "oracle violations          0" in output

    def test_json_payload(self, tmp_path, capsys):
        assert main(["live", "run", spec_path(tmp_path), "--speedup", "20",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "live"
        assert payload["delivered_fraction"] == 1.0
        assert payload["reliability_violations"] == 0
        assert payload["oracle"]["violation_count"] == 0

    def test_seed_override(self, tmp_path, capsys):
        assert main(["live", "run", spec_path(tmp_path), "--speedup", "20",
                     "--seed", "7", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["seed"] == 7

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["live", "run", "no_such_scenario"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_speedup_is_a_usage_error(self, tmp_path, capsys):
        assert main(["live", "run", spec_path(tmp_path),
                     "--speedup", "0"]) == 2
        assert "--speedup" in capsys.readouterr().err


class TestLiveDaemon:
    def test_snapshot_lines_until_the_limit(self, tmp_path, capsys):
        assert main(["live", "daemon", spec_path(tmp_path), "--speedup", "20",
                     "--interval", "30", "--snapshots", "2"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.strip()]
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["alive_members"] == 6
        assert second["time_ms"] > first["time_ms"]
        assert "goodput_msgs_per_s" in first
        assert "long_term_buffered" in first

    def test_daemon_runs_spec_to_completion_without_a_limit(
            self, tmp_path, capsys):
        assert main(["live", "daemon", spec_path(tmp_path), "--speedup", "20",
                     "--interval", "40"]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines() if line.strip()]
        assert lines  # at least one snapshot before quiescence
        assert lines[-1]["delivered_total"] == 6 * 4
        assert lines[-1]["reliability_violations"] == 0

    def test_bad_interval_is_a_usage_error(self, tmp_path, capsys):
        assert main(["live", "daemon", spec_path(tmp_path),
                     "--interval", "0"]) == 2


class TestLiveDiff:
    def test_matching_differential_exits_zero(self, tmp_path, capsys):
        assert main(["live", "diff", spec_path(tmp_path),
                     "--speedup", "20"]) == 0
        output = capsys.readouterr().out
        assert "MATCH" in output
        assert "MISMATCH" not in output

    def test_json_report(self, tmp_path, capsys):
        assert main(["live", "diff", spec_path(tmp_path), "--speedup", "20",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["sim"]["digest"] == payload["live"]["digest"]

    def test_no_artifact_written_on_success(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        assert main(["live", "diff", spec_path(tmp_path), "--speedup", "20",
                     "--artifacts", str(artifacts)]) == 0
        assert not artifacts.exists()


class TestLiveNode:
    def test_bad_nodes_list_is_a_usage_error(self, tmp_path, capsys):
        directory = tmp_path / "dir.json"
        directory.write_text(json.dumps({str(n): ["127.0.0.1", 1]
                                         for n in range(6)}))
        assert main(["live", "node", spec_path(tmp_path),
                     "--nodes", "0,x", "--directory", str(directory)]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_node_missing_from_directory_is_a_usage_error(
            self, tmp_path, capsys):
        directory = tmp_path / "dir.json"
        directory.write_text(json.dumps({"0": ["127.0.0.1", 1]}))
        assert main(["live", "node", spec_path(tmp_path),
                     "--nodes", "0,1", "--directory", str(directory)]) == 2
        assert "absent from the directory" in capsys.readouterr().err

    def test_missing_directory_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["live", "node", spec_path(tmp_path), "--nodes", "0",
                     "--directory", str(tmp_path / "missing.json")]) == 2

    def test_bad_bind_is_a_usage_error(self, tmp_path, capsys):
        directory = tmp_path / "dir.json"
        directory.write_text(json.dumps({"0": ["127.0.0.1", 1]}))
        assert main(["live", "node", spec_path(tmp_path), "--nodes", "0",
                     "--directory", str(directory), "--bind", "9999"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
