"""Property tests for the live UDP wire codec.

Round-trips are generated per message type from
:data:`~repro.protocol.messages.WIRE_MESSAGE_TYPES`, so a message type
added without codec support fails here instead of at the first live
run.  The malformed-datagram half checks the strict-decoding promise:
nothing shy of a well-formed frame ever reaches protocol code.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live.codec import (
    MAGIC,
    MAX_DATAGRAM,
    CodecError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.protocol.messages import (
    REPAIR_LOCAL,
    REPAIR_REGIONAL,
    REPAIR_RELAY,
    REPAIR_REMOTE,
    WIRE_MESSAGE_TYPES,
    DataMessage,
    FeedbackReport,
    HandoffMessage,
    HaveReply,
    LocalRequest,
    ParityMessage,
    RemoteRequest,
    Repair,
    SearchRequest,
    SessionMessage,
)

node_ids = st.integers(min_value=0, max_value=10_000)
seqs = st.integers(min_value=-(2**31), max_value=2**31)
payloads = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=40),
    st.lists(st.integers(min_value=0, max_value=255), max_size=8),
)

data_messages = st.builds(DataMessage, seq=seqs, sender=node_ids,
                          payload=payloads)
parity_messages = st.builds(
    ParityMessage,
    block_id=st.integers(min_value=0, max_value=2**20),
    index=st.integers(min_value=0, max_value=255),
    r=st.integers(min_value=1, max_value=255),
    block_seqs=st.tuples(*[seqs] * 3),
    shard=st.binary(max_size=64),
    sender=node_ids,
)

#: One strategy per wire message type, keyed by the type itself.
MESSAGE_STRATEGIES = {
    DataMessage: data_messages,
    LocalRequest: st.builds(LocalRequest, seq=seqs, requester=node_ids),
    RemoteRequest: st.builds(RemoteRequest, seq=seqs, requester=node_ids),
    Repair: st.builds(
        Repair,
        data=st.one_of(data_messages, parity_messages),
        responder=node_ids,
        scope=st.sampled_from(
            [REPAIR_LOCAL, REPAIR_REMOTE, REPAIR_REGIONAL, REPAIR_RELAY]
        ),
    ),
    ParityMessage: parity_messages,
    SessionMessage: st.builds(SessionMessage, sender=node_ids, max_seq=seqs),
    SearchRequest: st.builds(
        SearchRequest,
        seq=seqs,
        waiters=st.lists(node_ids, max_size=6).map(tuple),
        forwarder=node_ids,
        hops=st.integers(min_value=0, max_value=16),
    ),
    HaveReply: st.builds(HaveReply, seq=seqs, owner=node_ids),
    HandoffMessage: st.builds(
        HandoffMessage,
        data=st.one_of(data_messages, parity_messages),
        from_member=node_ids,
    ),
    FeedbackReport: st.builds(
        FeedbackReport,
        receiver=node_ids,
        loss_estimate=st.floats(min_value=0.0, max_value=1.0,
                                allow_nan=False),
        rtt_ms=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        max_seq=seqs,
        received=st.integers(min_value=0, max_value=2**31),
    ),
}


def test_every_wire_type_has_a_strategy():
    """Adding a message type without updating these tests fails loudly."""
    assert set(MESSAGE_STRATEGIES) == set(WIRE_MESSAGE_TYPES)


any_message = st.one_of(*MESSAGE_STRATEGIES.values())


class TestMessageRoundTrip:
    @pytest.mark.parametrize(
        "message_type", WIRE_MESSAGE_TYPES,
        ids=[t.__name__ for t in WIRE_MESSAGE_TYPES],
    )
    def test_round_trip_per_type(self, message_type):
        @given(message=MESSAGE_STRATEGIES[message_type])
        @settings(max_examples=60, deadline=None)
        def check(message):
            assert decode_message(encode_message(message)) == message

        check()

    @given(message=any_message)
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_json_ready(self, message):
        encoded = encode_message(message)
        restored = json.loads(json.dumps(encoded))
        assert decode_message(restored) == message

    @given(message=any_message)
    @settings(max_examples=60, deadline=None)
    def test_class_invariants_stay_off_the_wire(self, message):
        encoded = encode_message(message)
        assert "kind" not in encoded
        assert "wire_size" not in encoded

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            encode_message(object())


class TestFrameRoundTrip:
    @given(
        message=any_message,
        src=node_ids,
        dst=node_ids,
        send_time=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        group=st.one_of(st.none(), st.text(max_size=10)),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, message, src, dst, send_time, group):
        data = encode_frame(src, dst, message, send_time=send_time,
                            group=group)
        frame = decode_frame(data)
        assert frame.src == src
        assert frame.dst == dst
        assert frame.send_time == send_time
        assert frame.group == group
        assert frame.payload == message

    def test_oversized_frame_rejected_at_encode(self):
        big = ParityMessage(block_id=0, index=0, r=1, block_seqs=(1,),
                            shard=b"x" * MAX_DATAGRAM, sender=0)
        with pytest.raises(CodecError):
            encode_frame(0, 1, big, send_time=0.0)


def _valid_frame_bytes() -> bytes:
    return encode_frame(3, 4, DataMessage(seq=7, sender=3), send_time=1.5)


class TestMalformedDatagrams:
    """Every rejection path raises CodecError, never anything else."""

    @pytest.mark.parametrize("blob", [
        b"",
        b"\x00" * 20,
        b"GARBAGE" + b"{}",
        MAGIC,                                   # magic but no body
        MAGIC + b"not json at all",
        MAGIC + b"\xff\xfe\xfd",                 # not UTF-8
        MAGIC + b"[1,2,3]",                      # JSON but not an object
        MAGIC + b'{"src": 1}',                   # missing frame fields
        MAGIC + b'{"src": 1, "dst": 2, "sent": 0, "group": null, '
                b'"msg": {}, "extra": true}',    # extra frame field
    ], ids=[
        "empty", "zeros", "bad-magic", "magic-only", "not-json",
        "not-utf8", "json-array", "missing-fields", "extra-field",
    ])
    def test_rejected_whole(self, blob):
        with pytest.raises(CodecError):
            decode_frame(blob)

    def test_oversized_datagram_rejected_before_parsing(self):
        with pytest.raises(CodecError):
            decode_frame(MAGIC + b"0" * MAX_DATAGRAM)

    def test_bool_is_not_an_integer(self):
        with pytest.raises(CodecError):
            decode_message({"t": "LocalRequest", "seq": True, "requester": 0})

    def test_missing_message_field(self):
        with pytest.raises(CodecError, match="missing field"):
            decode_message({"t": "LocalRequest", "seq": 1})

    def test_extra_message_field(self):
        with pytest.raises(CodecError, match="unexpected fields"):
            decode_message({"t": "LocalRequest", "seq": 1, "requester": 0,
                            "evil": 1})

    def test_unknown_message_type(self):
        with pytest.raises(CodecError, match="unknown message type"):
            decode_message({"t": "NoSuchMessage"})

    def test_unknown_repair_scope(self):
        encoded = encode_message(
            Repair(data=DataMessage(seq=1, sender=0), responder=2,
                   scope=REPAIR_LOCAL)
        )
        encoded["scope"] = "galactic"
        with pytest.raises(CodecError, match="scope"):
            decode_message(encoded)

    def test_nested_message_must_carry_payload(self):
        encoded = encode_message(
            Repair(data=DataMessage(seq=1, sender=0), responder=2,
                   scope=REPAIR_LOCAL)
        )
        encoded["data"] = encode_message(LocalRequest(seq=1, requester=0))
        with pytest.raises(CodecError, match="nested message"):
            decode_message(encoded)

    def test_invalid_base64_shard(self):
        encoded = encode_message(
            ParityMessage(block_id=0, index=0, r=1, block_seqs=(1,),
                          shard=b"abc", sender=0)
        )
        encoded["shard"] = "!!! not base64 !!!"
        with pytest.raises(CodecError, match="base64"):
            decode_message(encoded)

    @given(blob=st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_escape_codecerror(self, blob):
        try:
            decode_frame(blob)
        except CodecError:
            pass  # the only acceptable failure mode

    @given(mutation=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_truncations_never_escape_codecerror(self, mutation):
        data = _valid_frame_bytes()
        cut = mutation % len(data)
        try:
            decode_frame(data[:cut])
        except CodecError:
            pass
