"""Tests for the sim/real differential harness."""

from __future__ import annotations

import dataclasses

from repro.live.differential import (
    delivery_digest,
    delivery_sets,
    run_differential,
    run_sim_side,
)
from repro.scenario.registry import get_scenario
from repro.sim.tracing import TraceLog


def small_spec():
    spec = get_scenario("initial_holders")
    return spec.with_(
        name="diff_test",
        topology=dataclasses.replace(spec.topology, kind="chain", n=6,
                                     sizes=(3, 3)),
        traffic=dataclasses.replace(spec.traffic, kind="uniform", count=4,
                                    interval=20.0, start=10.0),
    )


class TestNormalization:
    def test_delivery_sets_pick_out_the_logical_outcome(self):
        trace = TraceLog()
        trace.emit(5.0, "member_received", node=2, seq=1)
        trace.emit(1.0, "member_received", node=1, seq=1)
        trace.emit(9.0, "reliability_violation", node=3, seq=2)
        trace.emit(2.0, "buffer_add", node=1, seq=1)  # not an outcome
        delivered, violations = delivery_sets(trace.records)
        assert delivered == [(1, 1), (2, 1)]
        assert violations == [(3, 2)]

    def test_digest_ignores_time_and_order(self):
        early = TraceLog()
        early.emit(1.0, "member_received", node=1, seq=1)
        early.emit(2.0, "member_received", node=2, seq=1)
        late = TraceLog()
        late.emit(700.0, "member_received", node=2, seq=1)
        late.emit(900.0, "member_received", node=1, seq=1)
        assert delivery_digest(early.records) == delivery_digest(late.records)

    def test_digest_distinguishes_outcomes(self):
        full = TraceLog()
        full.emit(1.0, "member_received", node=1, seq=1)
        partial = TraceLog()
        partial.emit(1.0, "reliability_violation", node=1, seq=1)
        assert delivery_digest(full.records) != delivery_digest(partial.records)


class TestSimSide:
    def test_sim_side_forces_the_oracle_on(self):
        result = run_sim_side(small_spec())
        assert result.mode == "sim"
        assert result.records_checked > 0
        assert result.oracle_violations == 0
        assert len(result.delivered) == 6 * 4

    def test_sim_side_is_deterministic(self):
        first = run_sim_side(small_spec())
        second = run_sim_side(small_spec())
        assert first.digest == second.digest


class TestDifferential:
    def test_lossless_spec_matches_across_worlds(self):
        result = run_differential(small_spec(), speedup=20.0)
        assert result.digests_match
        assert result.ok
        assert result.sim.delivered == result.live.delivered
        assert result.sim.violations == [] and result.live.violations == []

    def test_seed_override_propagates(self):
        result = run_differential(small_spec(), speedup=20.0, seed=99)
        assert result.seed == 99
        assert result.ok

    def test_report_is_json_shaped(self):
        import json

        result = run_differential(small_spec(), speedup=20.0)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["ok"] is True
        assert payload["digests_match"] is True
        assert payload["sim"]["mode"] == "sim"
        assert payload["live"]["mode"] == "live"
        assert payload["sim"]["digest"] == payload["live"]["digest"]

    def test_recovery_heavy_registry_scenario_matches(self):
        """A scaled-down initial_holders: 15 of 20 members recover the
        probe message over real UDP and the delivery digest still
        matches the simulator's."""
        spec = get_scenario("initial_holders")
        spec = spec.with_(
            topology=dataclasses.replace(spec.topology, n=20),
            traffic=dataclasses.replace(spec.traffic, holders=5),
        )
        result = run_differential(spec, speedup=5.0)
        assert result.ok, (result.sim.to_dict(), result.live.to_dict())
        assert len(result.live.delivered) == 20
