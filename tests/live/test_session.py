"""Tests for the live session: scenario specs over loopback UDP."""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.live.session import LiveSession, run_spec_live
from repro.scenario.registry import get_scenario
from repro.validate.oracle import InvariantOracle


def small_spec(**overrides):
    """A 6-member two-region spec that runs in well under a second."""
    spec = get_scenario("initial_holders")
    spec = spec.with_(
        name="live_test",
        topology=dataclasses.replace(spec.topology, kind="chain", n=6,
                                     sizes=(3, 3)),
        traffic=dataclasses.replace(spec.traffic, kind="uniform", count=4,
                                    interval=20.0, start=10.0),
        measurement=dataclasses.replace(spec.measurement, keep_trace=True),
    )
    return spec.with_(**overrides) if overrides else spec


def run(coro):
    return asyncio.run(coro)


class TestLoopbackRun:
    def test_all_members_deliver_everything(self):
        session = run(run_spec_live(small_spec(), speedup=20.0))
        assert session.message_count == 4
        assert session.delivered_fraction(session.message_count) == 1.0
        assert session.violation_count() == 0
        assert session.network.stats.send_dropped == 0
        assert session.network.recv_rejected == 0

    def test_oracle_holds_over_the_live_trace(self):
        oracle = InvariantOracle()
        run(run_spec_live(small_spec(), speedup=20.0, oracle=oracle))
        assert oracle.violation_count == 0
        assert oracle.records_checked > 0

    def test_summary_shape(self):
        session = run(run_spec_live(small_spec(), speedup=20.0))
        summary = session.summary()
        assert summary["mode"] == "live"
        assert summary["scenario"] == "live_test"
        assert summary["members"] == 6
        assert summary["delivered_fraction"] == 1.0
        assert summary["time_ms"] > 0

    def test_summary_reports_makespan(self):
        session = run(run_spec_live(small_spec(), speedup=20.0))
        summary = session.summary()
        assert summary["makespan_session_ms"] > 0
        assert (summary["makespan_seq_p90_ms"]
                <= summary["makespan_seq_max_ms"])
        assert session.makespan.delivery_count == 24  # 6 members x 4 msgs

    def test_asymmetric_inter_region_delays_are_plumbed(self):
        """netem-style up/down split flows from the spec into the live
        session's latency model (which paces real packet delivery)."""
        spec = small_spec()
        spec = spec.with_(topology=dataclasses.replace(
            spec.topology, inter_up_one_way=2.0, inter_down_one_way=6.0))
        session = run(run_spec_live(spec, speedup=20.0))
        assert session.latency.asymmetric
        # Nodes 3..5 sit one region below nodes 0..2.
        assert session.latency.one_way(3, 0) == pytest.approx(2.0)
        assert session.latency.one_way(0, 3) == pytest.approx(6.0)
        assert session.delivered_fraction(session.message_count) == 1.0
        assert session.violation_count() == 0

    def test_detect_all_workload_recovers_live(self):
        """The registry's probe injection drives a real recovery: 10%
        of members hold the message, the rest fetch it over UDP."""
        spec = get_scenario("initial_holders")
        spec = spec.with_(
            topology=dataclasses.replace(spec.topology, n=20),
            traffic=dataclasses.replace(spec.traffic, holders=5),
            measurement=dataclasses.replace(spec.measurement,
                                            keep_trace=True),
        )
        session = run(run_spec_live(spec, speedup=5.0))
        assert session.delivered_fraction(1) == 1.0
        assert session.violation_count() == 0
        assert len(session.recovery_latencies()) > 0

    def test_start_twice_raises(self):
        async def main():
            session = LiveSession(small_spec(), speedup=20.0)
            await session.start()
            try:
                with pytest.raises(RuntimeError):
                    await session.start()
            finally:
                await session.close()

        run(main())

    def test_clock_held_through_setup(self):
        """Virtual time must not advance during construction: the
        session releases the clock only once start() completes."""
        async def main():
            session = LiveSession(small_spec(), speedup=20.0)
            assert session.sim.held
            await session.start()
            try:
                assert not session.sim.held
                assert session.sim.now < 50.0
            finally:
                await session.close()

        run(main())


class TestSharded:
    def test_two_shards_deliver_over_real_sockets(self):
        spec = small_spec(
            measurement=dataclasses.replace(
                small_spec().measurement, horizon=400.0, drain=False,
            ),
        )

        async def main():
            a = LiveSession(spec, speedup=20.0, local_nodes={0, 1, 2},
                            hold=True)
            b = LiveSession(spec, speedup=20.0, local_nodes={3, 4, 5},
                            hold=True)
            addr_a = await a.start()
            addr_b = await b.start()
            directory = {n: addr_a for n in (0, 1, 2)}
            directory.update({n: addr_b for n in (3, 4, 5)})
            a.network.directory = directory
            b.network.directory = directory
            a.release_clock()
            b.release_clock()
            try:
                await asyncio.gather(a.run(), b.run())
                assert a.sharded and b.sharded
                assert a.sender is not None      # shard with node 0
                assert b.sender is None
                # Every remote member delivered every message.
                received = [r for r in b.trace.records
                            if r.kind == "member_received"]
                assert len(received) == 3 * a.message_count
            finally:
                await a.close()
                await b.close()

        run(main())

    def test_unbounded_sharded_run_is_refused(self):
        """One shard cannot observe group-wide quiescence."""
        async def main():
            session = LiveSession(small_spec(), speedup=20.0,
                                  local_nodes={0, 1, 2},
                                  directory={n: ("127.0.0.1", 1)
                                             for n in range(6)})
            await session.start()
            try:
                with pytest.raises(ValueError, match="horizon or duration"):
                    await session.run()
            finally:
                await session.close()

        run(main())

    def test_probe_workloads_refuse_sharded_sessions(self):
        spec = get_scenario("initial_holders").with_(
            measurement=dataclasses.replace(
                get_scenario("initial_holders").measurement, horizon=100.0,
            ),
        )

        async def main():
            session = LiveSession(spec, speedup=20.0, local_nodes={0},
                                  directory={0: ("127.0.0.1", 1)})
            with pytest.raises(ValueError, match="sharded"):
                await session.start()
            await session.close()

        run(main())


class TestSnapshots:
    def test_snapshot_reads_live_metrics(self):
        async def main():
            session = LiveSession(small_spec(), speedup=20.0)
            await session.start()
            try:
                await session.run()
                snapshot = session.snapshot()
                assert snapshot.alive_members == 6
                assert snapshot.delivered_total == 6 * 4
                assert snapshot.reliability_violations == 0
                assert snapshot.time_ms > 0
                follow_up = session.snapshot(previous=snapshot)
                assert follow_up.delivered_total == snapshot.delivered_total
            finally:
                await session.close()

        run(main())
