"""Tests for the live (wall-clock) runtime clock."""

from __future__ import annotations

import asyncio

import pytest

from repro.live.clock import LiveClock
from repro.live.runtime import Clock, Handle
from repro.sim import Simulator
from repro.sim.timers import Timer


def run(coro):
    return asyncio.run(coro)


class TestClockSurface:
    def test_satisfies_the_runtime_protocol(self):
        # isinstance on a runtime_checkable Protocol probes the `now`
        # property, which needs a running loop on the live clock.
        async def main():
            assert isinstance(LiveClock(), Clock)
            assert isinstance(Simulator(), Clock)

        run(main())

    def test_handle_satisfies_the_runtime_protocol(self):
        async def main():
            clock = LiveClock()
            handle = clock.after(1000.0, lambda: None)
            assert isinstance(handle, Handle)
            handle.cancel()

        run(main())

    def test_rejects_nonpositive_speedup(self):
        with pytest.raises(ValueError):
            LiveClock(speedup=0)
        with pytest.raises(ValueError):
            LiveClock(speedup=-2.0)

    def test_rejects_negative_delay(self):
        async def main():
            clock = LiveClock()
            with pytest.raises(ValueError):
                clock.after(-1.0, lambda: None)

        run(main())


class TestScheduling:
    def test_callbacks_fire_in_order_with_args(self):
        async def main():
            clock = LiveClock(speedup=100.0)
            fired = []
            clock.after(20.0, fired.append, "second")
            clock.after(10.0, fired.append, "first")
            await clock.sleep(60.0)
            assert fired == ["first", "second"]
            assert clock.events_fired == 2
            assert clock.pending_events == 0

        run(main())

    def test_cancel_prevents_firing(self):
        async def main():
            clock = LiveClock(speedup=100.0)
            fired = []
            handle = clock.after(10.0, fired.append, "x")
            assert handle.pending
            handle.cancel()
            assert not handle.pending
            assert handle.cancelled
            await clock.sleep(40.0)
            assert fired == []
            assert clock.pending_events == 0

        run(main())

    def test_past_deadline_clamps_instead_of_raising(self):
        """The one deliberate divergence from the simulator (which
        raises): real time moves between computing a deadline and
        scheduling it, so the live clock fires past times at once."""
        async def main():
            clock = LiveClock(speedup=100.0)
            await clock.sleep(20.0)
            fired = []
            clock.at(1.0, fired.append, "late")
            await clock.sleep(20.0)
            assert fired == ["late"]

        run(main())

    def test_virtual_time_scales_with_speedup(self):
        async def main():
            clock = LiveClock(speedup=1000.0)
            start = clock.now
            await asyncio.sleep(0.01)  # 10 real ms = 10_000 virtual ms
            elapsed = clock.now - start
            assert elapsed >= 5_000.0

        run(main())

    def test_cancel_all(self):
        async def main():
            clock = LiveClock(speedup=100.0)
            for _ in range(5):
                clock.after(1000.0, lambda: None)
            assert clock.pending_events == 5
            assert clock.cancel_all() == 5
            assert clock.pending_events == 0

        run(main())

    def test_sim_timer_rearms_on_live_clock(self):
        """The protocol's Timer (in-place re-arm via reserved seqs)
        must work unchanged against the live clock."""
        async def main():
            clock = LiveClock(speedup=10.0)
            fired = []
            timer = Timer(clock, lambda: fired.append(clock.now))
            timer.start(10.0)
            timer.start(50.0)      # push-back: in-place re-arm
            await clock.sleep(30.0)
            assert fired == []     # stale event fired, deadline held
            await clock.sleep(60.0)
            assert len(fired) == 1
            assert fired[0] >= 50.0
            timer.start(5.0)       # reusable after firing
            await clock.sleep(40.0)
            assert len(fired) == 2

        run(main())


class TestHoldRelease:
    def test_time_is_frozen_while_held(self):
        async def main():
            clock = LiveClock(speedup=100.0, held=True)
            assert clock.held
            assert clock.now == 0.0
            await asyncio.sleep(0.01)
            assert clock.now == 0.0

        run(main())

    def test_deferred_work_fires_after_release(self):
        async def main():
            clock = LiveClock(speedup=100.0, held=True)
            fired = []
            clock.after(10.0, fired.append, "deferred")
            await asyncio.sleep(0.005)  # held: nothing moves
            assert fired == []
            assert clock.pending_events == 1
            clock.release()
            assert not clock.held
            await clock.sleep(40.0)
            assert fired == ["deferred"]

        run(main())

    def test_delays_measure_from_release_not_construction(self):
        """Setup time must not eat into protocol timers: a 40 ms timer
        armed while held still gets its full 40 ms after release."""
        async def main():
            clock = LiveClock(speedup=10.0, held=True)
            fired = []
            clock.after(100.0, lambda: fired.append(clock.now))
            await asyncio.sleep(0.02)  # 200 virtual ms of setup, frozen
            clock.release()
            await clock.sleep(30.0)
            assert fired == []         # under a third of the delay passed
            await clock.sleep(120.0)
            assert len(fired) == 1
            assert fired[0] >= 100.0

        run(main())

    def test_cancelled_while_held_never_fires(self):
        async def main():
            clock = LiveClock(speedup=100.0, held=True)
            fired = []
            handle = clock.after(5.0, fired.append, "x")
            handle.cancel()
            clock.release()
            await clock.sleep(30.0)
            assert fired == []

        run(main())

    def test_release_is_idempotent(self):
        async def main():
            clock = LiveClock(speedup=100.0, held=True)
            clock.release()
            epoch_now = clock.now
            clock.release()  # no-op
            assert clock.now >= epoch_now

        run(main())
