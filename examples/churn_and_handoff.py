#!/usr/bin/env python3
"""Membership churn and long-term buffer handoff (paper §3.2).

A region buffers a stream of messages long-term (≈C copies each).
Members then churn: some leave gracefully — transferring each long-term
entry to a random peer, the paper's handoff rule — and some crash.  A
gossip failure detector (the paper's ref [13] substrate) notices the
crashed members.  At the end, a late downstream request probes whether
the churned region can still serve every message.

The topology/policy/latency tuple is one scenario-builder chain; the
scripted churn choreography (who leaves, who crashes, when) stays
imperative on the built simulation.

Run:  python examples/churn_and_handoff.py
"""

from repro.membership import attach_failure_detectors
from repro.protocol.messages import DataMessage
from repro.scenario import scenario


def main() -> None:
    built = (
        scenario("churn-and-handoff", seed=11)
        .chain(30, 1)  # region under churn + a downstream requester
        .latency(inter=200.0)
        .policy("two_phase", c=5.0)
        .protocol(session_interval=None, max_search_rounds=200)
        .build()
    )
    simulation = built.simulation
    hierarchy = simulation.hierarchy
    region_nodes = list(hierarchy.regions[0].members)
    requester = hierarchy.regions[1].members[0]
    # suspect_timeout must cover the gossip propagation tail: with
    # fanout 1 a heartbeat needs ~log2(n) rounds on average to reach
    # everyone, with a long tail — 20 rounds of slack avoids flapping.
    detectors = attach_failure_detectors(
        [simulation.members[node] for node in region_nodes],
        gossip_interval=20.0, suspect_timeout=400.0,
    )

    print("== churn & handoff: 30-member region, C = 5, 3 messages ==\n")
    messages = [DataMessage(seq=seq, sender=simulation.sender.node_id)
                for seq in (1, 2, 3)]
    for data in messages:
        for node in region_nodes:
            simulation.members[node].inject_receive(data)
    simulation.run(duration=100.0)  # idle transition done: ~C copies each

    for data in messages:
        print(f"  seq {data.seq}: {simulation.buffering_count(data.seq)} long-term copies")

    # Churn: every current bufferer of seq 1 leaves gracefully; every
    # bufferer of seq 2 crashes.  seq 3's bufferers stay put.
    leavers = [node for node in region_nodes
               if simulation.members[node].alive
               and simulation.members[node].is_buffering(1)]
    crashers = [node for node in region_nodes
                if simulation.members[node].alive
                and simulation.members[node].is_buffering(2)
                and node not in leavers]
    print(f"\nleaving gracefully (bufferers of seq 1): {leavers}")
    print(f"crashing          (bufferers of seq 2): {crashers}")
    for offset, node in enumerate(leavers):
        simulation.sim.at(150.0 + 10 * offset, simulation.members[node].leave)
    for offset, node in enumerate(crashers):
        simulation.sim.at(150.0 + 10 * offset, simulation.members[node].crash)
    simulation.run(duration=1_000.0)

    print(f"\nafter churn ({len(simulation.alive_members()) - 1} region members left):")
    for data in messages:
        print(f"  seq {data.seq}: {simulation.buffering_count(data.seq)} copies "
              f"({simulation.trace.count('handoff_sent')} handoffs sent in total)")

    suspected = {peer for detector in detectors if detector.member.alive
                 for peer in detector.suspected}
    print(f"failure detector suspects: {sorted(suspected)}")

    # A late downstream request for each message: handoff preserved
    # seq 1; seq 2's copies died with the crashers.
    print("\nlate downstream requests:")
    for data in messages:
        simulation.members[requester].inject_loss_detection(data.seq)
    simulation.run(duration=4_000.0)
    for data in messages:
        served = simulation.members[requester].has_received(data.seq)
        print(f"  seq {data.seq}: {'served' if served else 'LOST (all bufferers crashed)'}")


if __name__ == "__main__":
    main()
