#!/usr/bin/env python3
"""WAN error recovery across an error-recovery hierarchy (paper §2).

Recreates the Figure 1/2 setting with the scenario builder: three
regions in a chain, the sender in region 0, with inter-region latency
an order of magnitude above the intra-region latency.  An entire
downstream region misses a message (a *regional loss*), so local
recovery alone cannot help: watch the λ-probabilistic remote requests
cross the WAN link, the upstream relay rule, and the regional
re-multicast of the repair — then a late straggler exercising the §3.3
search for bufferers.

Run:  python examples/wan_hierarchy.py
"""

from repro.protocol.messages import DataMessage
from repro.scenario import scenario

INTERESTING = (
    "loss_detected",
    "remote_request_received",
    "remote_request_recorded",
    "remote_request_served",
    "regional_multicast",
    "search_joined",
    "search_served",
    "search_redirected",
)


def main() -> None:
    built = (
        scenario("wan-hierarchy", seed=7)
        .chain(6, 6, 6)  # region 0 -> region 1 -> region 2
        .latency(intra=5.0, inter=40.0)
        .protocol(remote_lambda=1.0, session_interval=None)
        .build()
    )
    simulation = built.simulation
    hierarchy = simulation.hierarchy

    print("== WAN hierarchy: regional loss in region 1, relay to region 2 ==\n")
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    # Region 0 (the sender's region) received the multicast; regions 1
    # and 2 missed it entirely and detect the loss simultaneously.
    for node in hierarchy.regions[0].members:
        simulation.members[node].inject_receive(data)
    for region_id in (1, 2):
        for node in hierarchy.regions[region_id].members:
            simulation.members[node].inject_loss_detection(1)

    simulation.run(duration=3_000.0)

    print("protocol event trace (remote recovery path):")
    shown = 0
    for record in simulation.trace.records:
        if record.kind in INTERESTING and shown < 25:
            region = hierarchy.region_id_of(record["node"])
            fields = {k: v for k, v in record.fields.items() if k != "node"}
            print(f"  t={record.time:7.1f}  region {region}  node {record['node']:2d}  "
                  f"{record.kind:26s} {fields}")
            shown += 1

    print(f"\nall 18 members received the message: {simulation.all_received(1)}")
    by_region = {0: [], 1: [], 2: []}
    for record in simulation.trace.of_kind("recovery_completed"):
        by_region[hierarchy.region_id_of(record["node"])].append(record["latency"])
    for region_id, latencies in by_region.items():
        if latencies:
            print(f"  region {region_id}: mean recovery latency "
                  f"{sum(latencies) / len(latencies):7.1f} ms over {len(latencies)} members")

    stats = simulation.network.stats
    remote_lambda = built.spec.policy.remote_lambda
    print(f"\nremote requests sent: {stats.sent_by_type.get('RemoteRequest', 0)} "
          f"(λ = {remote_lambda:g} per region per round)")
    print(f"regional repair multicasts: {simulation.trace.count('regional_multicast')}")


if __name__ == "__main__":
    main()
