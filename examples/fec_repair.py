#!/usr/bin/env python3
"""FEC repair walkthrough: parity vs the pull epidemic on a lossy WAN.

Two regions of 25 members, the sender upstream.  Every message has a
30% chance of missing the *entire* child region (a regional loss — the
worst case for RRMP, because recovery must cross the WAN throttled by
the λ remote-request budget, §2.2).  We run the identical seeded
workload three times:

* ``fec_mode=off``        — pure pull recovery (the paper's protocol);
* ``fec_mode=proactive``  — 2 parity messages per block of 8, multicast
  as each block fills: receivers decode gaps locally;
* ``fec_mode=reactive``   — parity only for blocks the sender observes
  a retransmission request for.

Run:  python examples/fec_repair.py
"""

from repro import RegionCorrelatedOutcome, RrmpConfig, RrmpSimulation, chain
from repro.metrics import Summary, summarize_fec

MESSAGES = 24
INTERVAL = 5.0
HORIZON = 4_000.0


def run_mode(mode: str) -> None:
    hierarchy = chain([25, 25])
    config = RrmpConfig(
        fec_mode=mode,
        fec_block_size=8,
        fec_parity=2,
        remote_lambda=4.0,
        session_interval=50.0,
    )
    simulation = RrmpSimulation(hierarchy, config=config, seed=7)
    simulation.sender.outcome = RegionCorrelatedOutcome(
        hierarchy, region_loss=0.3, sender=simulation.sender.node_id
    )
    for index in range(MESSAGES):
        simulation.sim.at(index * INTERVAL, simulation.sender.multicast)
    if mode != "off":
        simulation.sim.at(
            MESSAGES * INTERVAL + 1.0, simulation.sender.flush_parity
        )
    simulation.run(until=HORIZON)

    latencies = simulation.recovery_latencies()
    stats = simulation.network.stats
    report = summarize_fec(simulation.trace)
    delivered = all(simulation.all_received(seq) for seq in range(1, MESSAGES + 1))
    print(f"== fec_mode={mode} ==")
    print(f"  all delivered:        {delivered}")
    print(f"  recoveries completed: {len(latencies)}")
    print(f"  recovery latency:     {Summary.from_values(latencies)}")
    print(f"  remote requests:      {stats.sent_by_type.get('RemoteRequest', 0)}")
    print(f"  repairs sent:         {stats.sent_by_type.get('Repair', 0)}")
    if mode != "off":
        print(f"  blocks encoded:       {report.blocks_encoded} "
              f"(triggers: {dict(report.triggers)})")
        print(f"  gaps decoded:         {report.recovered}")
        print(f"  parity overhead:      {report.parity_bytes} B "
              f"({report.overhead_ratio:.0%} of data)")
    print()


def main() -> None:
    print("== FEC repair vs pull recovery: 2x25 members, 30% regional loss ==\n")
    for mode in ("off", "proactive", "reactive"):
        run_mode(mode)
    print("proactive FEC spends r/k extra bandwidth to cut recovery latency")
    print("and WAN requests; reactive spends parity only on blocks whose")
    print("loss a request revealed to the sender — with randomly-addressed")
    print("remote requests that rarely happens before pull recovery wins.")


if __name__ == "__main__":
    main()
