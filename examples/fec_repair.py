#!/usr/bin/env python3
"""FEC repair walkthrough: parity vs the pull epidemic on a lossy WAN.

Two regions of 25 members, the sender upstream.  Every message has a
30% chance of missing the *entire* child region (a regional loss — the
worst case for RRMP, because recovery must cross the WAN throttled by
the λ remote-request budget, §2.2).  The whole setup is one scenario
spec; we run the identical seeded workload three times, varying only
the ``fec`` line:

* ``off``        — pure pull recovery (the paper's protocol);
* ``proactive``  — 2 parity messages per block of 8, multicast as each
  block fills: receivers decode gaps locally;
* ``reactive``   — parity only for blocks the sender observes a
  retransmission request for.

Run:  python examples/fec_repair.py
"""

from repro.metrics import Summary, summarize_fec
from repro.scenario import scenario

MESSAGES = 24
INTERVAL = 5.0
HORIZON = 4_000.0


def run_mode(mode: str) -> None:
    built = (
        scenario("fec-repair", seed=7)
        .chain(25, 25)
        .uniform(MESSAGES, INTERVAL)
        .regional_loss(region=0.3)
        .fec(mode, block_size=8, parity=2)
        .protocol(remote_lambda=4.0, session_interval=50.0)
        .measure(horizon=HORIZON)
        .run()
    )
    simulation = built.simulation

    latencies = simulation.recovery_latencies()
    stats = simulation.network.stats
    report = summarize_fec(simulation.trace)
    delivered = all(simulation.all_received(seq) for seq in range(1, MESSAGES + 1))
    print(f"== fec_mode={mode} ==")
    print(f"  all delivered:        {delivered}")
    print(f"  recoveries completed: {len(latencies)}")
    print(f"  recovery latency:     {Summary.from_values(latencies)}")
    print(f"  remote requests:      {stats.sent_by_type.get('RemoteRequest', 0)}")
    print(f"  repairs sent:         {stats.sent_by_type.get('Repair', 0)}")
    if mode != "off":
        print(f"  blocks encoded:       {report.blocks_encoded} "
              f"(triggers: {dict(report.triggers)})")
        print(f"  gaps decoded:         {report.recovered}")
        print(f"  parity overhead:      {report.parity_bytes} B "
              f"({report.overhead_ratio:.0%} of data)")
    print()


def main() -> None:
    print("== FEC repair vs pull recovery: 2x25 members, 30% regional loss ==\n")
    for mode in ("off", "proactive", "reactive"):
        run_mode(mode)
    print("proactive FEC spends r/k extra bandwidth to cut recovery latency")
    print("and WAN requests; reactive spends parity only on blocks whose")
    print("loss a request revealed to the sender — with randomly-addressed")
    print("remote requests that rarely happens before pull recovery wins.")


if __name__ == "__main__":
    main()
