#!/usr/bin/env python3
"""Quickstart: one lossy multicast, recovered and buffered by RRMP.

Builds the paper's §4 setting — a single region of 100 receivers with a
10 ms round-trip time — multicasts a message that only 10 members
initially receive, and watches three things happen:

1. randomized local recovery pulls the message to everyone (§2.2);
2. feedback-based short-term buffering holds copies only while
   retransmission requests keep arriving (§3.1);
3. the randomized long-term stage then thins the copies down to ≈C
   members (§3.2).

Run:  python examples/quickstart.py
"""

from repro import FixedHolderCount, RrmpConfig, RrmpSimulation, single_region
from repro.metrics import Summary


def main() -> None:
    config = RrmpConfig(
        idle_threshold=40.0,   # T = 4 x max RTT, the paper's value
        long_term_c=6.0,       # expected long-term bufferers per region
        session_interval=25.0  # sender heartbeats for tail-loss detection
    )
    simulation = RrmpSimulation(
        single_region(100),
        config=config,
        seed=42,
        outcome=FixedHolderCount(10),  # IP multicast reaches only 10 members
    )

    print("== RRMP quickstart: 100 members, initial multicast reaches 10 ==\n")
    simulation.sender.multicast()

    for checkpoint in (25.0, 50.0, 100.0, 200.0, 400.0):
        simulation.run(until=checkpoint)
        print(
            f"t={checkpoint:6.1f} ms   received: {simulation.received_count(1):3d}/100"
            f"   buffering: {simulation.buffering_count(1):3d}"
        )

    simulation.run(duration=2_000.0)
    print(
        f"\nsteady state: received {simulation.received_count(1)}/100, "
        f"long-term bufferers {simulation.buffering_count(1)} (expected ≈ {config.long_term_c:g})"
    )

    latencies = simulation.recovery_latencies()
    print(f"\nrecoveries: {len(latencies)}")
    print(f"  latency: {Summary.from_values(latencies)}")

    stats = simulation.network.stats
    print("\ntraffic by message type:")
    for type_name, count in sorted(stats.sent_by_type.items()):
        print(f"  {type_name:16s} {count:6d}")
    print(f"\nreliability violations: {simulation.violation_count()}")


if __name__ == "__main__":
    main()
