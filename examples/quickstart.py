#!/usr/bin/env python3
"""Quickstart: one lossy multicast, recovered and buffered by RRMP.

Declares the paper's §4 setting with the scenario builder — a single
region of 100 receivers with a 10 ms round-trip time, an IP multicast
that reaches only 10 members — then watches three things happen:

1. randomized local recovery pulls the message to everyone (§2.2);
2. feedback-based short-term buffering holds copies only while
   retransmission requests keep arriving (§3.1);
3. the randomized long-term stage then thins the copies down to ≈C
   members (§3.2).

Run:  python examples/quickstart.py
"""

from repro.metrics import Summary
from repro.scenario import scenario


def main() -> None:
    built = (
        scenario("quickstart", seed=42)
        .single_region(100)
        .fixed_holders(10)            # IP multicast reaches only 10 members
        .multicast_once(at=0.0)
        .policy("two_phase",
                c=6.0,                # expected long-term bufferers per region
                idle_threshold=40.0)  # T = 4 x max RTT, the paper's value
        .protocol(session_interval=25.0)  # heartbeats for tail-loss detection
        .build()
    )
    simulation = built.simulation

    print("== RRMP quickstart: 100 members, initial multicast reaches 10 ==\n")

    for checkpoint in (25.0, 50.0, 100.0, 200.0, 400.0):
        simulation.run(until=checkpoint)
        print(
            f"t={checkpoint:6.1f} ms   received: {simulation.received_count(1):3d}/100"
            f"   buffering: {simulation.buffering_count(1):3d}"
        )

    simulation.run(duration=2_000.0)
    expected_c = built.spec.policy.c
    print(
        f"\nsteady state: received {simulation.received_count(1)}/100, "
        f"long-term bufferers {simulation.buffering_count(1)} (expected ≈ {expected_c:g})"
    )

    latencies = simulation.recovery_latencies()
    print(f"\nrecoveries: {len(latencies)}")
    print(f"  latency: {Summary.from_values(latencies)}")

    stats = simulation.network.stats
    print("\ntraffic by message type:")
    for type_name, count in sorted(stats.sent_by_type.items()):
        print(f"  {type_name:16s} {count:6d}")
    print(f"\nreliability violations: {simulation.violation_count()}")


if __name__ == "__main__":
    main()
