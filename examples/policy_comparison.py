#!/usr/bin/env python3
"""Compare every buffering scheme on one WAN workload (paper §1/§3.4).

Runs the same streamed, lossy, three-region session under:

* the paper's two-phase policy,
* Bimodal-Multicast-style fixed-time buffering,
* gossip stability detection (discard only when globally stable),
* the authors' earlier deterministic hash selection (NGC'99),
* the conservative never-discard strawman, and
* an RMTP-like repair-server tree,

then prints the multi-metric table: average/peak occupancy, hotspot
size, recovery latency, and control-traffic cost.

Run:  python examples/policy_comparison.py        (~a minute)
"""

from repro.experiments.ablation_policies import run_policy_comparison


def main() -> None:
    print("== buffering policy comparison (3 regions x 20 members, "
          "30 msgs, 5% loss) ==\n")
    table = run_policy_comparison(region_size=20, messages=30, interval=20.0,
                                  loss=0.05, seeds=2)
    print(table.to_text(precision=1))
    print()
    print("reading guide:")
    print("  - 'never-discard' shows the unbounded cost the paper's §1 strawman pays;")
    print("  - 'repair-server tree' concentrates the whole session on one node per")
    print("    region (peak single-node occupancy column);")
    print("  - 'stability-gossip' stays safe but pays continuous digest traffic")
    print("    (control messages column);")
    print("  - 'two-phase' keeps occupancy low *and* spread out, with control")
    print("    traffic close to the plain protocol's.")


if __name__ == "__main__":
    main()
