#!/usr/bin/env python3
"""Compare every buffering scheme on one WAN workload (paper §1/§3.4).

Runs the same streamed, lossy, three-region session under:

* the paper's two-phase policy,
* Bimodal-Multicast-style fixed-time buffering,
* gossip stability detection (discard only when globally stable),
* the authors' earlier deterministic hash selection (NGC'99),
* the conservative never-discard strawman, and
* an RMTP-like repair-server tree,

then prints the multi-metric table: average/peak occupancy, hotspot
size, recovery latency, and control-traffic cost.  The experiment's
per-policy runs are scenario-builder specs under the hood
(`repro.experiments.ablation_policies`); the footer shows the same
comparison expressed directly as a one-off builder chain.

Run:  python examples/policy_comparison.py        (~a minute)
"""

from repro.experiments.ablation_policies import run_policy_comparison
from repro.scenario import scenario


def main() -> None:
    print("== buffering policy comparison (3 regions x 20 members, "
          "30 msgs, 5% loss) ==\n")
    table = run_policy_comparison(region_size=20, messages=30, interval=20.0,
                                  loss=0.05, seeds=2)
    print(table.to_text(precision=1))
    print()
    print("reading guide:")
    print("  - 'never-discard' shows the unbounded cost the paper's §1 strawman pays;")
    print("  - 'repair-server tree' concentrates the whole session on one node per")
    print("    region (peak single-node occupancy column);")
    print("  - 'stability-gossip' stays safe but pays continuous digest traffic")
    print("    (control messages column);")
    print("  - 'two-phase' keeps occupancy low *and* spread out, with control")
    print("    traffic close to the plain protocol's.")

    # The same kind of run as a ten-line ad-hoc scenario: any policy,
    # any topology, no new experiment module needed.
    built = (
        scenario("policy-oneoff", seed=1)
        .chain(20, 20, 20)
        .uniform(30, 20.0)
        .loss(p=0.05)
        .policy("fixed_time", hold_time=500.0)
        .protocol(max_recovery_time=2_000.0)
        .measure(horizon=2_100.0, probe_period=10.0)
        .run()
    )
    assert built.total_probe is not None
    print()
    print("one-off builder run (fixed-time 500 ms on the same workload):")
    print(f"  avg total occupancy:  {built.total_probe.average():.1f}")
    print(f"  peak node occupancy:  {built.peak_node_occupancy:.0f}")
    print(f"  violations:           {built.simulation.violation_count()}")


if __name__ == "__main__":
    main()
