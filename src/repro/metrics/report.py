"""Plain-text rendering of experiment results.

The benchmark harness regenerates each paper figure as *rows* printed
to stdout (we have no plotting stack offline); these helpers keep that
output aligned and consistent across experiments so EXPERIMENTS.md can
quote it directly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one table cell (floats to fixed precision)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 precision: int = 2) -> str:
    """Render an aligned monospace table with a header rule."""
    formatted = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(list(headers)), rule] + [line(row) for row in formatted])


@dataclass
class SeriesTable:
    """A figure-style result: one x column plus one or more y series."""

    title: str
    x_label: str
    xs: List[Cell]
    series: Dict[str, List[Cell]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[Cell]) -> None:
        """Attach a named y series (must align with the x column)."""
        if len(values) != len(self.xs):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(self.xs)} x points"
            )
        self.series[name] = list(values)

    def rows(self) -> List[List[Cell]]:
        """Table rows: one per x value."""
        return [
            [x] + [self.series[name][index] for name in self.series]
            for index, x in enumerate(self.xs)
        ]

    def to_text(self, precision: int = 2) -> str:
        """Full rendering: title, table and notes."""
        headers = [self.x_label] + list(self.series.keys())
        parts = [self.title, render_table(headers, self.rows(), precision)]
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # JSON round trip — the interchange format shared by the sweep
    # runner's result cache, benchmark artifacts and the CLI.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form preserving series insertion order."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "xs": list(self.xs),
            "series": {name: list(values) for name, values in self.series.items()},
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SeriesTable":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(
            title=payload["title"],
            x_label=payload["x_label"],
            xs=list(payload["xs"]),
            notes=list(payload.get("notes", ())),
        )
        for name, values in payload.get("series", {}).items():
            table.add_series(name, values)
        return table

    def to_json(self, indent: "int | None" = None) -> str:
        """Lossless JSON serialization (NaN/Infinity use JSON5-style
        literals, which :func:`json.loads` accepts back)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SeriesTable":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — a stable fingerprint two
        runs can compare without shipping the whole table."""
        canonical = json.dumps(self.to_dict(), separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
