"""Plain-text rendering of experiment results.

The benchmark harness regenerates each paper figure as *rows* printed
to stdout (we have no plotting stack offline); these helpers keep that
output aligned and consistent across experiments so EXPERIMENTS.md can
quote it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one table cell (floats to fixed precision)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 precision: int = 2) -> str:
    """Render an aligned monospace table with a header rule."""
    formatted = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(list(headers)), rule] + [line(row) for row in formatted])


@dataclass
class SeriesTable:
    """A figure-style result: one x column plus one or more y series."""

    title: str
    x_label: str
    xs: List[Cell]
    series: Dict[str, List[Cell]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[Cell]) -> None:
        """Attach a named y series (must align with the x column)."""
        if len(values) != len(self.xs):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(self.xs)} x points"
            )
        self.series[name] = list(values)

    def rows(self) -> List[List[Cell]]:
        """Table rows: one per x value."""
        return [
            [x] + [self.series[name][index] for name in self.series]
            for index, x in enumerate(self.xs)
        ]

    def to_text(self, precision: int = 2) -> str:
        """Full rendering: title, table and notes."""
        headers = [self.x_label] + list(self.series.keys())
        parts = [self.title, render_table(headers, self.rows(), precision)]
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
