"""Makespan: time until the *last* receiver completes (first-class metric).

Mean recovery latency — what the paper's §4 plots report — averages over
individual recoveries and so hides stragglers.  The makespan literature
(see PAPERS.md, "Reducing the Makespan in Hierarchical Reliable
Multicast Tree") instead asks when the *slowest* receiver finished,
because that is when the session is actually done.  Two granularities:

* **per-seq makespan** — for one sequence number, the interval between
  its first and last delivery anywhere in the session (how long that
  message took to blanket the group);
* **session makespan** — the interval between the very first delivery
  and the very last delivery of any message (wall time until the group
  is fully caught up).

:class:`MakespanTracker` is a pure trace subscriber over
``member_received`` records: it schedules nothing and sends nothing, so
attaching it never perturbs event counts or trace digests.  It works
unchanged against RRMP runs, the static-tree baseline and adaptive runs
because all three emit the same ``member_received`` record shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.metrics.stats import mean, percentile
from repro.sim.tracing import TraceLog, TraceRecord


@dataclass
class _SeqSpan:
    first: float
    last: float


@dataclass
class MakespanTracker:
    """Tracks per-seq and session delivery spans from a trace stream."""

    spans: Dict[int, _SeqSpan] = field(default_factory=dict)
    delivery_count: int = 0

    def attach(self, trace: TraceLog) -> "MakespanTracker":
        """Subscribe to ``member_received`` records; returns self."""
        trace.subscribe(self._on_received, kind="member_received")
        return self

    def _on_received(self, record: TraceRecord) -> None:
        self.delivery_count += 1
        seq = record["seq"]
        span = self.spans.get(seq)
        if span is None:
            self.spans[seq] = _SeqSpan(first=record.time, last=record.time)
        else:
            if record.time < span.first:
                span.first = record.time
            if record.time > span.last:
                span.last = record.time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def per_seq(self) -> Dict[int, float]:
        """Makespan of each sequence number (last − first delivery)."""
        return {seq: span.last - span.first for seq, span in self.spans.items()}

    def seq_makespan(self, seq: int) -> Optional[float]:
        """Makespan of one sequence number, or ``None`` if never seen."""
        span = self.spans.get(seq)
        return None if span is None else span.last - span.first

    def session_makespan(self) -> float:
        """First delivery of any seq → last delivery of any seq (ms)."""
        if not self.spans:
            return 0.0
        first = min(span.first for span in self.spans.values())
        last = max(span.last for span in self.spans.values())
        return last - first

    def last_delivery_time(self) -> Optional[float]:
        """Absolute sim time of the final delivery, or ``None``."""
        if not self.spans:
            return None
        return max(span.last for span in self.spans.values())

    def summary(self) -> Dict[str, float]:
        """Flat metrics block: session span plus per-seq tails."""
        values = sorted(self.per_seq().values())
        if not values:
            return {
                "makespan_session_ms": 0.0,
                "makespan_seq_mean_ms": 0.0,
                "makespan_seq_p50_ms": 0.0,
                "makespan_seq_p90_ms": 0.0,
                "makespan_seq_max_ms": 0.0,
            }
        return {
            "makespan_session_ms": self.session_makespan(),
            "makespan_seq_mean_ms": mean(values),
            "makespan_seq_p50_ms": percentile(values, 50.0),
            "makespan_seq_p90_ms": percentile(values, 90.0),
            "makespan_seq_max_ms": values[-1],
        }
