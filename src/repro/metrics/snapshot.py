"""Periodic metrics snapshots for long-running (daemon-mode) groups.

The experiment harness measures a run after the fact, from its trace;
a live deployment needs the same headline numbers *while it runs*.
:func:`take_snapshot` reads them off any wired member group (simulated
or live) without touching protocol state, and chains snapshots so rate
quantities (goodput) come out per interval rather than cumulative.

The ``live daemon`` CLI emits one JSON line per snapshot — the natural
input for tailing, plotting, or shipping to a collector.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.metrics.stats import mean
from repro.sim.tracing import TraceLog, TraceRecord


class DeliveryCounter:
    """Counts ``member_received`` records as they are emitted.

    Subscription-based, so it works with ``keep_records=False`` traces
    (long soak runs must not hoard records just to count deliveries).
    """

    def __init__(self, trace: TraceLog) -> None:
        self.count = 0
        trace.subscribe(self._on_record, kind="member_received")

    def _on_record(self, _record: TraceRecord) -> None:
        self.count += 1


@dataclass(frozen=True)
class MetricsSnapshot:
    """One sample of a running group's health."""

    time_ms: float                    #: virtual clock at sample time
    alive_members: int
    buffer_occupancy: int             #: total buffered messages
    long_term_buffered: int           #: of which long-term (paper §3.2)
    delivered_total: int              #: cumulative member deliveries
    recoveries_completed: int
    mean_recovery_latency_ms: float
    reliability_violations: int
    control_messages: int
    data_messages: int
    send_dropped: int                 #: sends to unregistered nodes
    goodput_msgs_per_s: float         #: deliveries/s since the previous
                                      #: snapshot (cumulative if first)
    session_makespan_ms: float = 0.0  #: first→last delivery span so far
                                      #: (0.0 when no tracker/deliveries)
    rebuffer_events: int = 0          #: playout stalls so far (0 when no
                                      #: rebuffer tracker is attached)
    rebuffer_time_ms: float = 0.0     #: total stall time across receivers

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (the daemon's line format)."""
        return asdict(self)


def long_term_buffered(group) -> int:
    """Total long-term-buffered messages across alive members.

    Policies without a long-term phase (baselines) count zero.
    """
    total = 0
    for member in group.alive_members():
        buffer = getattr(member.policy, "buffer", None)
        if buffer is not None:
            total += getattr(buffer, "long_term_count", 0)
    return total


def take_snapshot(group, previous: Optional[MetricsSnapshot] = None) -> MetricsSnapshot:
    """Sample *group* (an :class:`~repro.protocol.rrmp.MemberGroup`).

    *previous* — the last snapshot of the same group — turns
    ``goodput_msgs_per_s`` into a per-interval rate; without it the
    rate is computed over the whole run so far.
    """
    now = group.sim.now
    counter = getattr(group, "deliveries", None)
    delivered = counter.count if counter is not None \
        else group.trace.count("member_received")
    latencies = group.recovery_latencies()
    if previous is not None:
        delta_msgs = delivered - previous.delivered_total
        delta_ms = now - previous.time_ms
    else:
        delta_msgs = delivered
        delta_ms = now
    goodput = (delta_msgs / (delta_ms / 1000.0)) if delta_ms > 0 else 0.0
    tracker = getattr(group, "makespan", None)
    makespan_ms = tracker.session_makespan() if tracker is not None else 0.0
    rebuffer = getattr(group, "rebuffer_tracker", None)
    return MetricsSnapshot(
        time_ms=now,
        alive_members=len(group.alive_members()),
        buffer_occupancy=group.buffer_occupancy(),
        long_term_buffered=long_term_buffered(group),
        delivered_total=delivered,
        recoveries_completed=len(latencies),
        mean_recovery_latency_ms=mean(latencies) if latencies else 0.0,
        reliability_violations=group.violation_count(),
        control_messages=group.control_message_count(),
        data_messages=group.data_message_count(),
        send_dropped=group.network.stats.send_dropped,
        goodput_msgs_per_s=goodput,
        session_makespan_ms=makespan_ms,
        rebuffer_events=rebuffer.total_stall_events() if rebuffer else 0,
        rebuffer_time_ms=rebuffer.total_stall_time() if rebuffer else 0.0,
    )
