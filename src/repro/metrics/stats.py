"""Summary statistics for experiment measurements.

Pure-Python descriptive statistics (no numpy dependency in the hot
path) with the percentile definition experiments in this repo use
consistently: linear interpolation between closest ranks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0 ≤ q ≤ 100), linear interpolation."""
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a measurement sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Summary":
        """Build a summary; raises ``ValueError`` on an empty sample."""
        data: List[float] = list(values)
        if not data:
            raise ValueError("Summary.from_values() of empty sample")
        return cls(
            count=len(data),
            mean=mean(data),
            stdev=stdev(data),
            minimum=min(data),
            p50=percentile(data, 50),
            p95=percentile(data, 95),
            maximum=max(data),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} sd={self.stdev:.2f} "
            f"min={self.minimum:.2f} p50={self.p50:.2f} p95={self.p95:.2f} "
            f"max={self.maximum:.2f}"
        )
