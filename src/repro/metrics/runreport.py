"""One report carrier for every "run something, print the result" path.

``scenarios run``, ``live run`` and ``validate run``/``replay`` each
grew their own summary-dict + ``json.dumps`` + text-formatting trio.
:class:`RunReport` is the shared carrier: an ordered flat metrics
mapping plus an optional oracle report, with one JSON shape
(``payload()``/``to_json()``), one content digest and the aligned-key
text renderer the ``scenarios`` CLI established.

Compatibility contract: for a report without an oracle section,
``to_json()`` is byte-identical to ``json.dumps(metrics)`` — the
pre-unification output of every consumer — and ``to_text(title)``
reproduces the ``scenarios run`` text format exactly (keys left-
justified to the longest, floats rendered ``%.4g``).  Pipelines built
against the old outputs keep parsing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional


@dataclass
class RunReport:
    """The outcome of one run, ready to print or ship.

    ``kind`` tags the producing surface (``"scenario"``, ``"live"``,
    ``"validate"``); ``metrics`` is the flat ordered summary mapping
    the producer assembled; ``oracle`` — when present — lands under an
    ``"oracle"`` key appended to the JSON payload (the ``live run
    --json`` shape); ``failed`` drives :attr:`exit_code`.
    """

    kind: str
    scenario: str
    seed: int
    metrics: Mapping = field(default_factory=dict)
    oracle: Optional[Mapping] = None
    failed: bool = False

    def payload(self) -> dict:
        """The JSON-ready dict: metrics, plus ``oracle`` when attached."""
        result = dict(self.metrics)
        if self.oracle is not None:
            result["oracle"] = dict(self.oracle)
        return result

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize :meth:`payload` (compact by default, like the CLIs)."""
        return json.dumps(self.payload(), indent=indent)

    def digest(self) -> str:
        """SHA-256 over the canonical (sorted-key) payload JSON.

        Stable across dict insertion order, so two runs with identical
        content digest identically however their summaries were built.
        """
        canonical = json.dumps(self.payload(), sort_keys=True,
                               separators=(",", ":"), default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 failed."""
        return 1 if self.failed else 0

    def to_text(self, title: Optional[str] = None) -> str:
        """Aligned-key text block (the ``scenarios run`` format).

        *title* defaults to ``== {kind} {scenario} (seed {seed}) ==``.
        Floats render ``%.4g``; keys are left-justified to the longest.
        """
        if title is None:
            title = f"== {self.kind} {self.scenario} (seed {self.seed}) =="
        lines = [title]
        summary = self.payload()
        if summary:
            width = max(len(key) for key in summary)
            for key, value in summary.items():
                if isinstance(value, float):
                    value = f"{value:.4g}"
                lines.append(f"  {key.ljust(width)}  {value}")
        return "\n".join(lines)
