"""Time-series recording for simulation measurements.

Figure 7 plots two curves over simulated time — members that have
*received* a message and members that still *buffer* it.  Both are step
functions driven by trace events; :class:`StepSeries` records the
steps, :class:`TraceCounter` builds one from trace records, and
:meth:`StepSeries.sample` turns the steps into evenly-spaced points for
tabular output.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Tuple

from repro.sim.tracing import TraceLog, TraceRecord


class StepSeries:
    """A piecewise-constant time series (right-continuous steps)."""

    def __init__(self, initial: float = 0.0) -> None:
        self.initial = initial
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Set the series value from *time* onward."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"out-of-order sample at t={time} (last was {self._times[-1]})"
            )
        if self._times and self._times[-1] == time:
            self._values[-1] = value
            return
        self._times.append(time)
        self._values.append(value)

    def step(self, time: float, delta: float) -> float:
        """Adjust the current value by *delta* at *time*; returns the new value."""
        new_value = self.value_at(time) + delta
        self.record(time, new_value)
        return new_value

    def value_at(self, time: float) -> float:
        """The series value at *time* (initial value before first step)."""
        index = bisect_right(self._times, time) - 1
        if index < 0:
            return self.initial
        return self._values[index]

    def sample(self, start: float, stop: float, dt: float) -> List[Tuple[float, float]]:
        """Evenly-spaced ``(t, value)`` points on [start, stop]."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt!r}")
        points: List[Tuple[float, float]] = []
        t = start
        while t <= stop + 1e-9:
            points.append((t, self.value_at(t)))
            t += dt
        return points

    @property
    def final_value(self) -> float:
        """Value after the last recorded step."""
        return self._values[-1] if self._values else self.initial

    @property
    def last_time(self) -> Optional[float]:
        """Time of the last recorded step, if any."""
        return self._times[-1] if self._times else None

    def __len__(self) -> int:
        return len(self._times)


class TraceCounter:
    """Builds a :class:`StepSeries` by counting trace records.

    ``up`` records increment the series, ``down`` records decrement it.
    An optional predicate filters records (e.g. only events for one
    sequence number).
    """

    def __init__(
        self,
        trace: TraceLog,
        up: str,
        down: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        initial: float = 0.0,
    ) -> None:
        self.series = StepSeries(initial=initial)
        self._predicate = predicate
        trace.subscribe(self._on_up, kind=up)
        if down is not None:
            trace.subscribe(self._on_down, kind=down)

    def _on_up(self, record: TraceRecord) -> None:
        if self._predicate is None or self._predicate(record):
            self.series.step(record.time, +1)

    def _on_down(self, record: TraceRecord) -> None:
        if self._predicate is None or self._predicate(record):
            self.series.step(record.time, -1)
