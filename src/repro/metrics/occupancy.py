"""Buffer-occupancy probes.

The policy-comparison experiments ask "how much buffer space does each
scheme hold over time?" — for RRMP the interesting claim is that load
is *spread* across members (conclusion), versus a repair server that
concentrates it.  :class:`OccupancyProbe` samples any occupancy
callable on a fixed period; :func:`occupancy_balance` quantifies the
spread across members.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.metrics.stats import Summary
from repro.metrics.timeseries import StepSeries
from repro.sim import PeriodicTask, Simulator


class OccupancyProbe:
    """Samples a scalar occupancy function periodically into a series."""

    def __init__(
        self,
        sim: Simulator,
        sample_fn: Callable[[], float],
        period: float = 5.0,
    ) -> None:
        self.series = StepSeries()
        self._sample_fn = sample_fn
        self._task = PeriodicTask(sim, period, self._sample)
        self._sim = sim
        self._task.start(phase=0.0)

    def _sample(self) -> None:
        self.series.record(self._sim.now, float(self._sample_fn()))

    def stop(self) -> None:
        """Stop sampling."""
        self._task.stop()

    def peak(self) -> float:
        """Largest sampled occupancy."""
        values = [self.series.value_at(t) for t, _ in self.series.sample(
            0.0, self.series.last_time or 0.0, max(self._task.interval, 1e-9))]
        return max(values) if values else 0.0

    def average(self) -> float:
        """Mean of the sampled occupancy values."""
        if self.series.last_time is None:
            return 0.0
        points = self.series.sample(0.0, self.series.last_time, self._task.interval)
        return sum(v for _, v in points) / len(points)


def occupancy_balance(per_node: Dict[int, int]) -> Tuple[float, float]:
    """(mean, max) buffered messages per member — the load-spread metric.

    A repair-server scheme shows max ≫ mean (one member carries
    everything); the two-phase scheme shows max close to mean.
    """
    if not per_node:
        return (0.0, 0.0)
    values: List[float] = [float(v) for v in per_node.values()]
    return (sum(values) / len(values), max(values))


def occupancy_summary(per_node: Dict[int, int]) -> Summary:
    """Full distribution summary of per-member occupancy."""
    return Summary.from_values(float(v) for v in per_node.values())
