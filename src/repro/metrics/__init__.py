"""Measurement utilities (system S10 in DESIGN.md).

Descriptive statistics, step time series driven by trace records,
buffer-occupancy probes and plain-text table rendering used by the
experiment harness.
"""

from repro.metrics.fec import FecReport, summarize_fec
from repro.metrics.makespan import MakespanTracker
from repro.metrics.occupancy import OccupancyProbe, occupancy_balance, occupancy_summary
from repro.metrics.rebuffer import PlayoutClock, RebufferTracker, replay_rebuffer
from repro.metrics.report import SeriesTable, format_cell, render_table
from repro.metrics.runreport import RunReport
from repro.metrics.stats import Summary, mean, percentile, stdev
from repro.metrics.timeseries import StepSeries, TraceCounter

__all__ = [
    "FecReport",
    "MakespanTracker",
    "OccupancyProbe",
    "PlayoutClock",
    "RebufferTracker",
    "RunReport",
    "SeriesTable",
    "StepSeries",
    "Summary",
    "TraceCounter",
    "format_cell",
    "mean",
    "occupancy_balance",
    "occupancy_summary",
    "percentile",
    "render_table",
    "replay_rebuffer",
    "stdev",
    "summarize_fec",
]
