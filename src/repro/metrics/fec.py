"""Aggregation of the FEC subsystem's trace events.

The FEC layers emit three trace kinds — ``fec_encode`` (sender sealed
and encoded a block), ``fec_parity_overhead`` (the extra data-plane
bytes that block's parity costs) and ``fec_decode_recovered`` (a
receiver filled a gap by decoding instead of pulling).  This module
folds them into one report so experiments and benchmarks can quote
"parity overhead vs recovery traffic saved" as a single row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Counter as CounterType
from collections import Counter

from repro.sim.tracing import TraceLog


@dataclass(frozen=True)
class FecReport:
    """Aggregate FEC activity of one simulation run."""

    #: Blocks encoded (== ``fec_encode`` records).
    blocks_encoded: int
    #: Parity messages produced across all blocks.
    parity_messages: int
    #: Data-plane bytes spent on parity (the proactive overhead).
    parity_bytes: int
    #: Data-plane bytes of the covered data messages.
    data_bytes: int
    #: Gap fills achieved by decoding (== ``fec_decode_recovered``).
    recovered: int
    #: Parity receptions across all members.
    parity_received: int
    #: ``fec_encode`` trigger frequencies (proactive/reactive/flush).
    triggers: CounterType[str]

    @property
    def overhead_ratio(self) -> float:
        """Parity bytes per data byte (0.0 when nothing was encoded)."""
        if self.data_bytes == 0:
            return 0.0
        return self.parity_bytes / self.data_bytes


def summarize_fec(trace: TraceLog) -> FecReport:
    """Fold a trace log's FEC events into a :class:`FecReport`."""
    triggers: CounterType[str] = Counter()
    blocks = 0
    for record in trace.of_kind("fec_encode"):
        blocks += 1
        triggers[record.get("trigger", "unknown")] += 1
    parity_messages = 0
    parity_bytes = 0
    data_bytes = 0
    for record in trace.of_kind("fec_parity_overhead"):
        parity_messages += record.get("parity_messages", 0)
        parity_bytes += record.get("parity_bytes", 0)
        data_bytes += record.get("data_bytes", 0)
    return FecReport(
        blocks_encoded=blocks,
        parity_messages=parity_messages,
        parity_bytes=parity_bytes,
        data_bytes=data_bytes,
        recovered=trace.count("fec_decode_recovered"),
        parity_received=trace.count("fec_parity_received"),
        triggers=triggers,
    )
