"""Rebuffering: playout-deadline misses per receiver (streaming QoE).

The multicast-VoD literature (PAPERS.md, prefix-buffering) evaluates
reliable delivery against a *playout clock*, not a delivery-time
average: a repair that arrives after its frame's deadline stalls the
viewer no matter how fast the mean recovery was.  This module scores an
RRMP session the same way.

The model (:class:`PlayoutClock`, one per receiver):

* playback starts ``startup_delay`` ms after the receiver's **first**
  delivery and consumes sequence numbers in order from that first seq,
  one every ``interval`` ms;
* a frame can only play once delivered; a frame whose delivery arrives
  after its deadline counts **one rebuffer (stall) event**, its
  lateness counts as **stall time**, and every later deadline shifts by
  the stall (playback pauses, it does not skip);
* frames below the first-delivered seq are counted as ``skipped``
  (the receiver tuned in past them).

:class:`RebufferTracker` is a pure trace subscriber over
``member_received`` records — like
:class:`~repro.metrics.makespan.MakespanTracker` it schedules nothing
and sends nothing, so attaching it never perturbs event counts or
trace digests.  The rebuffer-accounting invariant
(:mod:`repro.validate.invariants`) recomputes the same model from its
own arrival ledger and cross-checks this tracker record-for-record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.stats import mean
from repro.sim.tracing import TraceLog, TraceRecord


class PlayoutClock:
    """One receiver's deadline-driven playout state machine."""

    def __init__(self, interval: float, startup_delay: float) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0 ms, got {interval!r}")
        if startup_delay < 0:
            raise ValueError(f"startup_delay must be >= 0, got {startup_delay!r}")
        self.interval = interval
        self.startup_delay = startup_delay
        self.base_seq: int = -1           # first-delivered seq (playout origin)
        self.next_seq: int = -1           # next frame to play
        self.deadline: float = 0.0        # when next_seq must arrive
        self.pending: Dict[int, float] = {}  # delivered but not yet played
        self.stall_events = 0
        self.stall_time = 0.0
        self.frames_played = 0
        self.skipped = 0

    def on_arrival(self, seq: int, time: float) -> None:
        """Feed one delivery; advances playback as far as it can go."""
        if self.base_seq < 0:
            self.base_seq = seq
            self.next_seq = seq
            self.deadline = time + self.startup_delay
        if seq < self.next_seq:
            self.skipped += 1
            return
        self.pending[seq] = time
        while self.next_seq in self.pending:
            arrival = self.pending.pop(self.next_seq)
            if arrival > self.deadline:
                self.stall_events += 1
                self.stall_time += arrival - self.deadline
                self.deadline = arrival  # playback pauses until the frame lands
            self.frames_played += 1
            self.next_seq += 1
            self.deadline += self.interval


def replay_rebuffer(
    arrivals: List, interval: float, startup_delay: float
) -> PlayoutClock:
    """Run the playout model over one receiver's ``(seq, time)`` ledger.

    The batch twin of :class:`RebufferTracker`'s streaming path — the
    oracle's rebuffer-accounting invariant replays its own delivery
    ledger through this and cross-checks the tracker.
    """
    clock = PlayoutClock(interval, startup_delay)
    for seq, time in arrivals:
        clock.on_arrival(seq, time)
    return clock


@dataclass
class RebufferTracker:
    """Per-receiver playout clocks driven by the trace stream."""

    interval: float = 25.0
    startup_delay: float = 100.0
    clocks: Dict[int, PlayoutClock] = field(default_factory=dict)

    def attach(self, trace: TraceLog) -> "RebufferTracker":
        """Subscribe to ``member_received`` records; returns self."""
        trace.subscribe(self._on_received, kind="member_received")
        return self

    def _on_received(self, record: TraceRecord) -> None:
        clock = self.clocks.get(record["node"])
        if clock is None:
            clock = PlayoutClock(self.interval, self.startup_delay)
            self.clocks[record["node"]] = clock
        clock.on_arrival(record["seq"], record.time)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def receiver_count(self) -> int:
        """Receivers that delivered at least one frame."""
        return len(self.clocks)

    def total_stall_events(self) -> int:
        """Rebuffer events summed over all receivers."""
        return sum(clock.stall_events for clock in self.clocks.values())

    def total_stall_time(self) -> float:
        """Stall milliseconds summed over all receivers."""
        return sum(clock.stall_time for clock in self.clocks.values())

    def total_frames_played(self) -> int:
        """Frames played across all receivers."""
        return sum(clock.frames_played for clock in self.clocks.values())

    def summary(self) -> Dict[str, float]:
        """Flat metrics block for :meth:`BuiltScenario.summary`."""
        stall_times = [clock.stall_time for clock in self.clocks.values()]
        return {
            "rebuffer_events": float(self.total_stall_events()),
            "rebuffer_time_ms": self.total_stall_time(),
            "rebuffer_mean_ms": mean(stall_times) if stall_times else 0.0,
            "rebuffer_max_ms": max(stall_times) if stall_times else 0.0,
            "playout_receivers": float(self.receiver_count),
            "frames_played": float(self.total_frames_played()),
        }
