"""Workloads and canned scenarios (system S11 in DESIGN.md)."""

from repro.workloads.mobility import DistanceLoss, MobilityManager
from repro.workloads.scenarios import (
    InitialHoldersResult,
    ScaleResult,
    SearchResult,
    run_initial_holders,
    run_scale,
    run_search,
)
from repro.workloads.traffic import (
    BurstStream,
    PoissonStream,
    RampStream,
    TrafficGenerator,
    UniformStream,
)

__all__ = [
    "BurstStream",
    "DistanceLoss",
    "InitialHoldersResult",
    "MobilityManager",
    "PoissonStream",
    "RampStream",
    "ScaleResult",
    "SearchResult",
    "TrafficGenerator",
    "UniformStream",
    "run_initial_holders",
    "run_scale",
    "run_search",
]
