"""Workloads and canned scenarios (system S11 in DESIGN.md)."""

from repro.workloads.scenarios import (
    InitialHoldersResult,
    SearchResult,
    run_initial_holders,
    run_search,
)
from repro.workloads.traffic import (
    BurstStream,
    PoissonStream,
    TrafficGenerator,
    UniformStream,
)

__all__ = [
    "BurstStream",
    "InitialHoldersResult",
    "PoissonStream",
    "SearchResult",
    "TrafficGenerator",
    "UniformStream",
    "run_initial_holders",
    "run_search",
]
