"""Sender traffic generators.

The paper's evaluation uses single-message outcomes (Figures 6-9), but
its design arguments are about *streams* ("When the sender multicasts a
stream of messages, the load of long-term buffering is spread evenly",
§3.2).  These generators model multi-message workloads against an
:class:`~repro.protocol.rrmp.RrmpSimulation` (or any facade with a
``sender.multicast()`` and a ``sim`` engine).

Pull model
----------

A generator is an *offered-load arrival process*: a monotone sequence of
instants at which the application hands the sender a message.  The
congestion-control layer (:mod:`repro.cc`) consumes it one send at a
time through :meth:`TrafficGenerator.next_send`::

    t = generator.next_send(now, credit)

where ``credit`` is the earliest instant the sender's congestion
controller permits a transmission.  The returned send instant is
``max(arrival, credit)`` — arrivals queue behind the rate limit but the
arrival process itself never shifts, so with congestion control off
(``credit = -inf``) the emitted instants are exactly the historical
open-loop schedule.

:meth:`TrafficGenerator.send_times` survives as a deprecation shim that
materializes the whole arrival list for callers still wanting the
open-loop view; :meth:`TrafficGenerator.schedule` keeps installing that
list directly on a simulation (the congestion-off fast path, preserved
byte-identically).
"""

from __future__ import annotations

import random
import warnings
from abc import ABC, abstractmethod
from typing import List, Optional

_NO_CREDIT = float("-inf")


class TrafficGenerator(ABC):
    """A pull-driven offered-load arrival process (see module docstring)."""

    def __init__(self) -> None:
        self._cursor = 0
        self._arrival_cache: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    @abstractmethod
    def _arrival_times(self) -> List[float]:
        """Absolute arrival instants, sorted ascending.

        Called once per generator; random processes draw here and the
        base class memoizes, so restarts replay the same arrivals.
        """

    # ------------------------------------------------------------------
    # Pull API
    # ------------------------------------------------------------------
    def next_send(self, now: float, credit: float = _NO_CREDIT) -> Optional[float]:
        """Consume the next arrival; returns its send instant or ``None``.

        *credit* is the earliest controller-permitted transmission
        instant: the send happens at ``max(arrival, credit)``.  *now* is
        informational (the caller's clock) — arrivals are an open-loop
        offered-load process and do not shift with actual send times.
        """
        arrivals = self._arrivals()
        if self._cursor >= len(arrivals):
            return None
        arrival = arrivals[self._cursor]
        self._cursor += 1
        return arrival if arrival >= credit else credit

    def peek_arrival(self) -> Optional[float]:
        """The next arrival instant without consuming it (``None`` at end)."""
        arrivals = self._arrivals()
        if self._cursor >= len(arrivals):
            return None
        return arrivals[self._cursor]

    def restart(self) -> None:
        """Rewind to the first arrival (the arrival sequence is stable)."""
        self._cursor = 0

    def remaining(self) -> int:
        """How many arrivals have not been consumed yet."""
        return len(self._arrivals()) - self._cursor

    def arrival_count(self) -> int:
        """Total number of arrivals in the stream."""
        return len(self._arrivals())

    # ------------------------------------------------------------------
    # Open-loop compatibility surface
    # ------------------------------------------------------------------
    def send_times(self) -> List[float]:
        """Deprecated: the full open-loop arrival list.

        .. deprecated::
            Drive the pull API (:meth:`next_send`) instead.  The list is
            derived from the same memoized arrival sequence the pull API
            consumes (random streams no longer redraw per call).
        """
        warnings.warn(
            "TrafficGenerator.send_times() is deprecated; drive the "
            "pull API next_send(now, credit) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self._arrivals())

    def schedule(self, simulation) -> int:
        """Install all sends open-loop on *simulation*; returns the count.

        This is the congestion-off fast path: one simulator event per
        arrival, inserted in arrival order (byte-identical to the
        historical precomputed-list behavior).
        """
        times = self._arrivals()
        for t in times:
            simulation.sim.at(t, simulation.sender.multicast)
        return len(times)

    def end_time(self) -> float:
        """When the stream is over (used to place tail work such as the
        FEC parity flush).  Default: the last arrival instant."""
        times = self._arrivals()
        return times[-1] if times else 0.0

    # ------------------------------------------------------------------
    def _arrivals(self) -> List[float]:
        if self._arrival_cache is None:
            self._arrival_cache = self._arrival_times()
        return self._arrival_cache


class UniformStream(TrafficGenerator):
    """*count* messages at a fixed *interval*, starting at *start*."""

    def __init__(self, count: int, interval: float, start: float = 0.0) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        super().__init__()
        self.count = count
        self.interval = interval
        self.start = start

    def _arrival_times(self) -> List[float]:
        return [self.start + i * self.interval for i in range(self.count)]

    def end_time(self) -> float:
        return self.start + self.count * self.interval


class PoissonStream(TrafficGenerator):
    """Messages as a Poisson process of *rate* (msgs/ms) over *duration*."""

    def __init__(self, rate: float, duration: float, rng: random.Random,
                 start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration!r}")
        super().__init__()
        self.rate = rate
        self.duration = duration
        self.start = start
        self._rng = rng

    def _arrival_times(self) -> List[float]:
        times: List[float] = []
        t = self.start
        while True:
            t += self._rng.expovariate(self.rate)
            if t >= self.start + self.duration:
                return times
            times.append(t)

    def end_time(self) -> float:
        return self.start + self.duration


class RampStream(TrafficGenerator):
    """*count* messages whose inter-send gap shrinks linearly from
    *initial_interval* down to *final_interval* — the send rate ramps
    up over the stream, modelling overload onset (the load under which
    feedback-based buffering must keep serving requests while the
    request arrival rate keeps climbing).

    The ``count - 1`` gaps interpolate the two intervals inclusively:
    the first gap is exactly *initial_interval*, the last exactly
    *final_interval* (with a single gap — ``count == 2`` — the ramp
    degenerates to just *initial_interval*).
    """

    def __init__(
        self,
        count: int,
        initial_interval: float,
        final_interval: float,
        start: float = 0.0,
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if initial_interval <= 0 or final_interval <= 0:
            raise ValueError(
                f"intervals must be > 0, got {initial_interval!r}, {final_interval!r}"
            )
        super().__init__()
        self.count = count
        self.initial_interval = initial_interval
        self.final_interval = final_interval
        self.start = start

    def _gaps(self) -> List[float]:
        gaps = self.count - 1
        if gaps <= 0:
            return []
        if gaps == 1:
            return [self.initial_interval]
        span = self.final_interval - self.initial_interval
        return [
            self.initial_interval + span * (index / (gaps - 1))
            for index in range(gaps)
        ]

    def _arrival_times(self) -> List[float]:
        if self.count == 0:
            return []
        times: List[float] = []
        t = self.start
        for gap in [0.0] + self._gaps():
            t += gap
            times.append(t)
        return times

    def end_time(self) -> float:
        times = self._arrivals()
        return (times[-1] + self.final_interval) if times else self.start


class BurstStream(TrafficGenerator):
    """Explicit bursts: ``[(t, size), ...]`` sends *size* messages at *t*.

    Back-to-back sends within a burst exercise the session-message path
    (the last message of a burst has no following gap to reveal it).
    """

    def __init__(self, bursts: List) -> None:
        super().__init__()
        self.bursts = list(bursts)
        for t, size in self.bursts:
            if t < 0:
                raise ValueError(f"burst time must be >= 0, got {t!r}")
            if size < 1:
                raise ValueError(f"burst size must be >= 1, got {size}")

    def _arrival_times(self) -> List[float]:
        times: List[float] = []
        for t, size in self.bursts:
            times.extend([t] * size)
        return sorted(times)
