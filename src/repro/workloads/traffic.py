"""Sender traffic generators.

The paper's evaluation uses single-message outcomes (Figures 6-9), but
its design arguments are about *streams* ("When the sender multicasts a
stream of messages, the load of long-term buffering is spread evenly",
§3.2).  These generators schedule multi-message workloads against an
:class:`~repro.protocol.rrmp.RrmpSimulation` (or any facade with a
``sender.multicast()`` and a ``sim`` engine).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List


class TrafficGenerator(ABC):
    """Schedules a sequence of multicasts onto a simulation."""

    @abstractmethod
    def send_times(self) -> List[float]:
        """Absolute send instants, sorted ascending."""

    def schedule(self, simulation) -> int:
        """Install the sends on *simulation*; returns the message count."""
        times = self.send_times()
        for t in times:
            simulation.sim.at(t, simulation.sender.multicast)
        return len(times)


class UniformStream(TrafficGenerator):
    """*count* messages at a fixed *interval*, starting at *start*."""

    def __init__(self, count: int, interval: float, start: float = 0.0) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.count = count
        self.interval = interval
        self.start = start

    def send_times(self) -> List[float]:
        return [self.start + i * self.interval for i in range(self.count)]


class PoissonStream(TrafficGenerator):
    """Messages as a Poisson process of *rate* (msgs/ms) over *duration*."""

    def __init__(self, rate: float, duration: float, rng: random.Random,
                 start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration!r}")
        self.rate = rate
        self.duration = duration
        self.start = start
        self._rng = rng

    def send_times(self) -> List[float]:
        times: List[float] = []
        t = self.start
        while True:
            t += self._rng.expovariate(self.rate)
            if t >= self.start + self.duration:
                return times
            times.append(t)


class BurstStream(TrafficGenerator):
    """Explicit bursts: ``[(t, size), ...]`` sends *size* messages at *t*.

    Back-to-back sends within a burst exercise the session-message path
    (the last message of a burst has no following gap to reveal it).
    """

    def __init__(self, bursts: List) -> None:
        self.bursts = list(bursts)

    def send_times(self) -> List[float]:
        times: List[float] = []
        for t, size in self.bursts:
            times.extend([t] * size)
        return sorted(times)
