"""Sender traffic generators.

The paper's evaluation uses single-message outcomes (Figures 6-9), but
its design arguments are about *streams* ("When the sender multicasts a
stream of messages, the load of long-term buffering is spread evenly",
§3.2).  These generators schedule multi-message workloads against an
:class:`~repro.protocol.rrmp.RrmpSimulation` (or any facade with a
``sender.multicast()`` and a ``sim`` engine).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List


class TrafficGenerator(ABC):
    """Schedules a sequence of multicasts onto a simulation."""

    @abstractmethod
    def send_times(self) -> List[float]:
        """Absolute send instants, sorted ascending."""

    def schedule(self, simulation) -> int:
        """Install the sends on *simulation*; returns the message count."""
        times = self.send_times()
        for t in times:
            simulation.sim.at(t, simulation.sender.multicast)
        return len(times)

    def end_time(self) -> float:
        """When the stream is over (used to place tail work such as the
        FEC parity flush).  Default: the last send instant."""
        times = self.send_times()
        return times[-1] if times else 0.0


class UniformStream(TrafficGenerator):
    """*count* messages at a fixed *interval*, starting at *start*."""

    def __init__(self, count: int, interval: float, start: float = 0.0) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.count = count
        self.interval = interval
        self.start = start

    def send_times(self) -> List[float]:
        return [self.start + i * self.interval for i in range(self.count)]

    def end_time(self) -> float:
        return self.start + self.count * self.interval


class PoissonStream(TrafficGenerator):
    """Messages as a Poisson process of *rate* (msgs/ms) over *duration*."""

    def __init__(self, rate: float, duration: float, rng: random.Random,
                 start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration!r}")
        self.rate = rate
        self.duration = duration
        self.start = start
        self._rng = rng

    def send_times(self) -> List[float]:
        times: List[float] = []
        t = self.start
        while True:
            t += self._rng.expovariate(self.rate)
            if t >= self.start + self.duration:
                return times
            times.append(t)

    def end_time(self) -> float:
        return self.start + self.duration


class RampStream(TrafficGenerator):
    """*count* messages whose inter-send gap shrinks linearly from
    *initial_interval* down to *final_interval* — the send rate ramps
    up over the stream, modelling overload onset (the load under which
    feedback-based buffering must keep serving requests while the
    request arrival rate keeps climbing).

    The ``count - 1`` gaps interpolate the two intervals inclusively:
    the first gap is exactly *initial_interval*, the last exactly
    *final_interval* (with a single gap — ``count == 2`` — the ramp
    degenerates to just *initial_interval*).
    """

    def __init__(
        self,
        count: int,
        initial_interval: float,
        final_interval: float,
        start: float = 0.0,
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if initial_interval <= 0 or final_interval <= 0:
            raise ValueError(
                f"intervals must be > 0, got {initial_interval!r}, {final_interval!r}"
            )
        self.count = count
        self.initial_interval = initial_interval
        self.final_interval = final_interval
        self.start = start

    def _gaps(self) -> List[float]:
        gaps = self.count - 1
        if gaps <= 0:
            return []
        if gaps == 1:
            return [self.initial_interval]
        span = self.final_interval - self.initial_interval
        return [
            self.initial_interval + span * (index / (gaps - 1))
            for index in range(gaps)
        ]

    def send_times(self) -> List[float]:
        if self.count == 0:
            return []
        times: List[float] = []
        t = self.start
        for gap in [0.0] + self._gaps():
            t += gap
            times.append(t)
        return times

    def end_time(self) -> float:
        times = self.send_times()
        return (times[-1] + self.final_interval) if times else self.start


class BurstStream(TrafficGenerator):
    """Explicit bursts: ``[(t, size), ...]`` sends *size* messages at *t*.

    Back-to-back sends within a burst exercise the session-message path
    (the last message of a burst has no following gap to reveal it).
    """

    def __init__(self, bursts: List) -> None:
        self.bursts = list(bursts)

    def send_times(self) -> List[float]:
        times: List[float] = []
        for t, size in self.bursts:
            times.extend([t] * size)
        return sorted(times)
