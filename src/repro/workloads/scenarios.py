"""Canned experiment scenarios reproducing the paper's §4 setups.

Two families:

* :func:`run_initial_holders` — the Figure 6/7 workload: a single
  region of *n* members, *k* of which hold a fresh message; everyone
  else detects the loss simultaneously at t = 0 and local recovery +
  feedback-based buffering play out.
* :func:`run_search` — the Figure 8/9 workload: a region where every
  member has received (and all but *b* have discarded) a message, and a
  downstream member's remote request must find one of the *b*
  bufferers via the §3.3 randomized search.
* :func:`run_scale` — the north-star stress workload: a multi-region
  hierarchy an order of magnitude past the paper's 100-member runs
  (default 1,000 members), a lossy message stream, and full recovery +
  two-phase buffering end to end.  Used by the engine benchmarks to
  show optimizations at scale rather than on toy runs.

All return small result objects carrying the simulation plus the
measurements the figures plot, so experiments and tests share one
code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.buffer import DISCARD_IDLE
from repro.net.ipmulticast import BernoulliOutcome
from repro.net.latency import ConstantLatency, HierarchicalLatency
from repro.net.topology import NodeId, chain, single_region, star
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation
from repro.workloads.traffic import UniformStream


@dataclass
class InitialHoldersResult:
    """Outcome of the Figure 6/7 scenario."""

    simulation: RrmpSimulation
    data: DataMessage
    holders: List[NodeId]

    def holder_buffering_durations(self) -> List[float]:
        """Short-term buffering time of each initial holder (receipt →
        idle-discard), the quantity Figure 6 averages.

        Holders still buffering (e.g. promoted to long-term) are
        excluded; run the scenario with ``long_term_c = 0`` — as §4
        does implicitly — to measure every holder.
        """
        durations: List[float] = []
        for node in self.holders:
            member = self.simulation.members[node]
            durations.extend(member.policy.buffer.durations(reason=DISCARD_IDLE))
        return durations

    def all_recovered(self) -> bool:
        """Whether every member eventually received the message."""
        return self.simulation.all_received(self.data.seq)


def run_initial_holders(
    n: int,
    k: int,
    seed: int = 0,
    idle_threshold: float = 40.0,
    long_term_c: float = 0.0,
    rtt: float = 10.0,
    run_for: Optional[float] = None,
    max_recovery_time: Optional[float] = 2_000.0,
) -> InitialHoldersResult:
    """Run the §4 feedback-buffering scenario (Figures 6 and 7).

    Parameters mirror the paper: region of *n* members (100 in §4),
    round-trip time *rtt* between any two members (10 ms), idle
    threshold 40 ms, *k* members drawn uniformly to hold the message
    initially.  All other members detect the loss at t = 0 and start
    local recovery.  ``long_term_c`` defaults to 0 so the measurement
    isolates the short-term (feedback) phase.

    ``max_recovery_time`` bounds the run: with ``long_term_c = 0`` the
    message can (rarely) vanish from every buffer while a receiver
    still misses it — the §3.2 "unlucky receiver" case that long-term
    buffering exists to fix.  Such a receiver gives up after this
    deadline and a ``reliability_violation`` is recorded (§5).
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n], got k={k}, n={n}")
    hierarchy = single_region(n)
    config = RrmpConfig(
        idle_threshold=idle_threshold,
        long_term_c=long_term_c,
        session_interval=None,
        max_recovery_time=max_recovery_time,
    )
    simulation = RrmpSimulation(
        hierarchy,
        config=config,
        seed=seed,
        latency=ConstantLatency(rtt / 2.0),
    )
    sender = simulation.sender.node_id
    data = DataMessage(seq=1, sender=sender)
    rng = simulation.streams.stream("scenario", "holders")
    holders = sorted(rng.sample(hierarchy.nodes, k))
    holder_set: Set[NodeId] = set(holders)
    for node in hierarchy.nodes:
        member = simulation.members[node]
        if node in holder_set:
            member.inject_receive(data, via="multicast")
        else:
            member.inject_loss_detection(data.seq)
    if run_for is None:
        # With long_term_c == 0 and sessions off, the event queue drains
        # once recovery finishes and every idle timer fires.
        simulation.sim.drain()
    else:
        simulation.run(duration=run_for)
    return InitialHoldersResult(simulation=simulation, data=data, holders=holders)


@dataclass
class SearchResult:
    """Outcome of the Figure 8/9 scenario."""

    simulation: RrmpSimulation
    data: DataMessage
    bufferers: List[NodeId]
    requester: NodeId
    request_arrival: Optional[float]
    served_at: Optional[float]
    served_via: Optional[str]

    @property
    def search_time(self) -> Optional[float]:
        """Request arrival in the region → a bufferer serves the repair.

        0 when the request lands directly on a bufferer (footnote 5);
        ``None`` if unserved within the simulated horizon.
        """
        if self.request_arrival is None or self.served_at is None:
            return None
        return self.served_at - self.request_arrival

    @property
    def search_forwards(self) -> int:
        """Number of search hops taken (network traffic of the search)."""
        return self.simulation.trace.count("search_forwarded")


def run_search(
    n: int,
    bufferers: int,
    seed: int = 0,
    intra_one_way: float = 5.0,
    inter_one_way: float = 500.0,
    horizon: float = 2_000.0,
) -> SearchResult:
    """Run the §4 bufferer-search scenario (Figures 8 and 9).

    A region of *n* members has all received message 1; exactly
    *bufferers* of them still hold it (as long-term bufferers).  A
    single downstream member in a child region misses the message and
    sends a remote request to a uniformly-random upstream member
    (λ = 1 with a one-member region makes that probability exactly 1 —
    the same mechanism §2.2 specifies).  The measured search time is
    the interval from the request's arrival in the region until a
    bufferer sends the repair.

    ``inter_one_way`` is set high so the requester's retry timer
    (2 × 500 ms) cannot fire a second request inside the measurement
    window, matching the paper's single-request setup.
    """
    if not 0 <= bufferers <= n:
        raise ValueError(f"bufferers must be in [0, n], got {bufferers}")
    hierarchy = chain([n, 1])
    config = RrmpConfig(session_interval=None, remote_lambda=1.0)
    simulation = RrmpSimulation(
        hierarchy,
        config=config,
        seed=seed,
        latency=HierarchicalLatency(
            hierarchy, intra_one_way=intra_one_way, inter_one_way=inter_one_way
        ),
    )
    region = hierarchy.regions[0]
    requester = hierarchy.regions[1].members[0]
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    rng = simulation.streams.stream("scenario", "bufferers")
    chosen = sorted(rng.sample(region.members, bufferers))
    chosen_set = set(chosen)
    for node in region.members:
        member = simulation.members[node]
        if node in chosen_set:
            member.install_long_term(data)
        else:
            member.force_received(data)
    # The downstream member detects the loss at t = 0; its remote phase
    # fires the single remote request into the region.
    simulation.members[requester].inject_loss_detection(data.seq)
    simulation.run(duration=horizon)

    arrival = simulation.trace.first("remote_request_received")
    served = None
    for record in simulation.trace.of_kind("remote_request_served"):
        served = record
        break
    return SearchResult(
        simulation=simulation,
        data=data,
        bufferers=chosen,
        requester=requester,
        request_arrival=arrival.time if arrival is not None else None,
        served_at=served.time if served is not None else None,
        served_via=served.get("via") if served is not None else None,
    )


@dataclass
class ScaleResult:
    """Outcome of the north-star multi-region stress scenario."""

    simulation: RrmpSimulation
    message_count: int
    member_count: int
    events_fired: int

    def delivered_fraction(self) -> float:
        """Fraction of (member, message) pairs eventually delivered."""
        members = self.simulation.alive_members()
        if not members or self.message_count == 0:
            return 1.0
        delivered = sum(
            1
            for member in members
            for seq in range(1, self.message_count + 1)
            if member.has_received(seq)
        )
        return delivered / (len(members) * self.message_count)

    @property
    def violations(self) -> int:
        """Recoveries that gave up within the horizon."""
        return self.simulation.violation_count()

    @property
    def control_messages(self) -> int:
        """Control-plane transmissions over the whole run."""
        return self.simulation.control_message_count()


def run_scale(
    regions: int = 10,
    members_per_region: int = 100,
    messages: int = 20,
    send_interval: float = 25.0,
    loss_rate: float = 0.05,
    seed: int = 0,
    intra_one_way: float = 5.0,
    inter_one_way: float = 50.0,
    horizon: float = 3_000.0,
    max_recovery_time: float = 2_000.0,
) -> ScaleResult:
    """Run the north-star stress workload: a big lossy multi-region group.

    A root region plus ``regions - 1`` child regions (default 10 × 100
    = 1,000 members — an order of magnitude past the paper's §4 runs)
    receives a uniform stream of *messages* multicasts, each reaching
    every member independently with probability ``1 - loss_rate``.
    Loss detection, local/remote recovery and two-phase buffering then
    run to the *horizon*, which exercises every hot path the engine
    optimizations target (event dispatch, timer push-back churn,
    buffer decisions, packet dispatch, multicast fan-out) at scale.
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    if max_recovery_time >= horizon:
        raise ValueError(
            "max_recovery_time must be shorter than the horizon, or give-ups "
            f"can never be observed (got {max_recovery_time} >= {horizon})"
        )
    hierarchy = star(members_per_region, [members_per_region] * (regions - 1))
    config = RrmpConfig(max_recovery_time=max_recovery_time)
    simulation = RrmpSimulation(
        hierarchy,
        config=config,
        seed=seed,
        latency=HierarchicalLatency(
            hierarchy, intra_one_way=intra_one_way, inter_one_way=inter_one_way
        ),
        outcome=BernoulliOutcome(loss_rate),
    )
    events_before = simulation.sim.events_fired
    UniformStream(messages, send_interval, start=1.0).schedule(simulation)
    simulation.run(duration=horizon)
    return ScaleResult(
        simulation=simulation,
        message_count=messages,
        member_count=len(simulation.members),
        events_fired=simulation.sim.events_fired - events_before,
    )
