"""Canned experiment scenarios reproducing the paper's §4 setups.

Two families:

* :func:`run_initial_holders` — the Figure 6/7 workload: a single
  region of *n* members, *k* of which hold a fresh message; everyone
  else detects the loss simultaneously at t = 0 and local recovery +
  feedback-based buffering play out.
* :func:`run_search` — the Figure 8/9 workload: a region where every
  member has received (and all but *b* have discarded) a message, and a
  downstream member's remote request must find one of the *b*
  bufferers via the §3.3 randomized search.
* :func:`run_scale` — the north-star stress workload: a multi-region
  hierarchy an order of magnitude past the paper's 100-member runs
  (default 1,000 members), a lossy message stream, and full recovery +
  two-phase buffering end to end.  Used by the engine benchmarks to
  show optimizations at scale rather than on toy runs.

Each workload is now a declarative
:class:`~repro.scenario.spec.ScenarioSpec` (built by the factories in
:mod:`repro.scenario.library`, where the same specs are registered as
the named scenarios ``initial_holders``/``search``/``scale``); the
``run_*`` helpers here materialize the spec and wrap the run in a
small result object carrying the measurements the figures plot, so
experiments and tests share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.buffer import DISCARD_IDLE
from repro.net.topology import NodeId
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


@dataclass
class InitialHoldersResult:
    """Outcome of the Figure 6/7 scenario."""

    simulation: RrmpSimulation
    data: DataMessage
    holders: List[NodeId]

    def holder_buffering_durations(self) -> List[float]:
        """Short-term buffering time of each initial holder (receipt →
        idle-discard), the quantity Figure 6 averages.

        Holders still buffering (e.g. promoted to long-term) are
        excluded; run the scenario with ``long_term_c = 0`` — as §4
        does implicitly — to measure every holder.
        """
        durations: List[float] = []
        for node in self.holders:
            member = self.simulation.members[node]
            durations.extend(member.policy.buffer.durations(reason=DISCARD_IDLE))
        return durations

    def all_recovered(self) -> bool:
        """Whether every member eventually received the message."""
        return self.simulation.all_received(self.data.seq)


def run_initial_holders(
    n: int,
    k: int,
    seed: int = 0,
    idle_threshold: float = 40.0,
    long_term_c: float = 0.0,
    rtt: float = 10.0,
    run_for: Optional[float] = None,
    max_recovery_time: Optional[float] = 2_000.0,
) -> InitialHoldersResult:
    """Run the §4 feedback-buffering scenario (Figures 6 and 7).

    Parameters mirror the paper: region of *n* members (100 in §4),
    round-trip time *rtt* between any two members (10 ms), idle
    threshold 40 ms, *k* members drawn uniformly to hold the message
    initially.  All other members detect the loss at t = 0 and start
    local recovery.  ``long_term_c`` defaults to 0 so the measurement
    isolates the short-term (feedback) phase.

    ``max_recovery_time`` bounds the run: with ``long_term_c = 0`` the
    message can (rarely) vanish from every buffer while a receiver
    still misses it — the §3.2 "unlucky receiver" case that long-term
    buffering exists to fix.  Such a receiver gives up after this
    deadline and a ``reliability_violation`` is recorded (§5).
    """
    from repro.scenario.library import initial_holders_spec

    spec = initial_holders_spec(
        n, k, seed=seed, idle_threshold=idle_threshold,
        long_term_c=long_term_c, rtt=rtt, run_for=run_for,
        max_recovery_time=max_recovery_time,
    )
    # With long_term_c == 0 and sessions off, draining terminates once
    # recovery finishes and every idle timer fires.
    built = spec.run()
    assert built.data is not None
    return InitialHoldersResult(
        simulation=built.simulation, data=built.data, holders=built.holders
    )


@dataclass
class SearchResult:
    """Outcome of the Figure 8/9 scenario."""

    simulation: RrmpSimulation
    data: DataMessage
    bufferers: List[NodeId]
    requester: NodeId
    request_arrival: Optional[float]
    served_at: Optional[float]
    served_via: Optional[str]

    @property
    def search_time(self) -> Optional[float]:
        """Request arrival in the region → a bufferer serves the repair.

        0 when the request lands directly on a bufferer (footnote 5);
        ``None`` if unserved within the simulated horizon.
        """
        if self.request_arrival is None or self.served_at is None:
            return None
        return self.served_at - self.request_arrival

    @property
    def search_forwards(self) -> int:
        """Number of search hops taken (network traffic of the search)."""
        return self.simulation.trace.count("search_forwarded")


def run_search(
    n: int,
    bufferers: int,
    seed: int = 0,
    intra_one_way: float = 5.0,
    inter_one_way: float = 500.0,
    horizon: float = 2_000.0,
) -> SearchResult:
    """Run the §4 bufferer-search scenario (Figures 8 and 9).

    A region of *n* members has all received message 1; exactly
    *bufferers* of them still hold it (as long-term bufferers).  A
    single downstream member in a child region misses the message and
    sends a remote request to a uniformly-random upstream member
    (λ = 1 with a one-member region makes that probability exactly 1 —
    the same mechanism §2.2 specifies).  The measured search time is
    the interval from the request's arrival in the region until a
    bufferer sends the repair.

    ``inter_one_way`` is set high so the requester's retry timer
    (2 × 500 ms) cannot fire a second request inside the measurement
    window, matching the paper's single-request setup.
    """
    from repro.scenario.library import search_spec

    spec = search_spec(
        n, bufferers, seed=seed, intra_one_way=intra_one_way,
        inter_one_way=inter_one_way, horizon=horizon,
    )
    # The downstream member detects the loss at t = 0; its remote phase
    # fires the single remote request into the region.
    built = spec.run()
    simulation = built.simulation
    assert built.data is not None and built.requester is not None

    arrival = simulation.trace.first("remote_request_received")
    served = None
    for record in simulation.trace.of_kind("remote_request_served"):
        served = record
        break
    return SearchResult(
        simulation=simulation,
        data=built.data,
        bufferers=built.bufferers,
        requester=built.requester,
        request_arrival=arrival.time if arrival is not None else None,
        served_at=served.time if served is not None else None,
        served_via=served.get("via") if served is not None else None,
    )


@dataclass
class ScaleResult:
    """Outcome of the north-star multi-region stress scenario."""

    simulation: RrmpSimulation
    message_count: int
    member_count: int
    events_fired: int

    def delivered_fraction(self) -> float:
        """Fraction of (member, message) pairs eventually delivered."""
        return self.simulation.delivered_fraction(self.message_count)

    @property
    def violations(self) -> int:
        """Recoveries that gave up within the horizon."""
        return self.simulation.violation_count()

    @property
    def control_messages(self) -> int:
        """Control-plane transmissions over the whole run."""
        return self.simulation.control_message_count()


def run_scale(
    regions: int = 10,
    members_per_region: int = 100,
    messages: int = 20,
    send_interval: float = 25.0,
    loss_rate: float = 0.05,
    seed: int = 0,
    intra_one_way: float = 5.0,
    inter_one_way: float = 50.0,
    horizon: float = 3_000.0,
    max_recovery_time: float = 2_000.0,
) -> ScaleResult:
    """Run the north-star stress workload: a big lossy multi-region group.

    A root region plus ``regions - 1`` child regions (default 10 × 100
    = 1,000 members — an order of magnitude past the paper's §4 runs)
    receives a uniform stream of *messages* multicasts, each reaching
    every member independently with probability ``1 - loss_rate``.
    Loss detection, local/remote recovery and two-phase buffering then
    run to the *horizon*, which exercises every hot path the engine
    optimizations target (event dispatch, timer push-back churn,
    buffer decisions, packet dispatch, multicast fan-out) at scale.
    """
    from repro.scenario.library import scale_spec

    spec = scale_spec(
        regions=regions, members_per_region=members_per_region,
        messages=messages, send_interval=send_interval, loss_rate=loss_rate,
        seed=seed, intra_one_way=intra_one_way, inter_one_way=inter_one_way,
        horizon=horizon, max_recovery_time=max_recovery_time,
    )
    built = spec.build()
    simulation = built.simulation
    events_before = simulation.sim.events_fired
    built.run()
    return ScaleResult(
        simulation=simulation,
        message_count=messages,
        member_count=len(simulation.members),
        events_fired=simulation.sim.events_fired - events_before,
    )
