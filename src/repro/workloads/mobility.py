"""Waypoint mobility: roaming receivers that hand off between regions.

The paper's §3.2 handoff rule exists because "receivers may join or
leave a multicast session dynamically" — but random join/leave is the
gentlest possible version of that stress.  Mobile receivers are the
hard version: a walking node *repeatedly* leaves one region and joins
another, each time draining its long-term buffer through the graceful
handoff path, and the IEEE 802.11 multicast literature (PAPERS.md)
adds distance-driven loss on top.

:class:`MobilityManager` implements a deterministic random-waypoint
model over a square field:

* every region owns a fixed **anchor** point (regions arranged on a
  circle, deterministically from the sorted region ids);
* every node starts near its home region's anchor and walks toward a
  waypoint at ``speed`` field-units per ms, re-drawn **from a
  deterministic per-(node, epoch) seed** when reached — so a node's
  whole trajectory is a pure function of ``(master_seed, node)`` and
  never perturbs any other consumer of randomness;
* every ``epoch`` ms each node re-evaluates its nearest anchor; when
  that differs from its current region the node gracefully leaves
  (§3.2: long-term buffer drains through :func:`plan_handoff`) and
  re-joins the new region as a fresh member, carrying its position.

Handoffs are emitted as ``mobility_handoff`` trace records, and the
handoff-conservation invariant (:mod:`repro.validate.invariants`)
checks the §3.2 ledger across every one of them.

:class:`DistanceLoss` optionally makes per-link data loss follow
sender/receiver distance (0 at co-location, ``max_loss`` at full-field
separation) — the SNR-style loss model that motivates rate-adaptive
multicast work.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Set, Tuple

from repro.net.loss import LossModel
from repro.net.topology import Hierarchy, NodeId, RegionId
from repro.sim.randomness import derive_seed

Point = Tuple[float, float]


def _distance(a: Point, b: Point) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _step_toward(pos: Point, target: Point, step: float) -> Point:
    gap = _distance(pos, target)
    if gap <= step or gap == 0.0:
        return target
    scale = step / gap
    return (pos[0] + (target[0] - pos[0]) * scale,
            pos[1] + (target[1] - pos[1]) * scale)


def region_anchors(hierarchy: Hierarchy, area: float) -> Dict[RegionId, Point]:
    """Fixed anchor point per region: sorted region ids on a circle.

    Deterministic in the hierarchy alone (no randomness), so anchors
    never move even as members come and go.
    """
    region_ids = sorted(hierarchy.regions)
    center = (area / 2.0, area / 2.0)
    if len(region_ids) == 1:
        return {region_ids[0]: center}
    radius = area * 0.35
    anchors: Dict[RegionId, Point] = {}
    for index, region_id in enumerate(region_ids):
        angle = 2.0 * math.pi * index / len(region_ids)
        anchors[region_id] = (
            center[0] + radius * math.cos(angle),
            center[1] + radius * math.sin(angle),
        )
    return anchors


class MobilityManager:
    """Moves members across a square field and hands them off.

    Construct against the *hierarchy* (before the simulation exists, so
    :class:`DistanceLoss` can wrap it into the transport), then
    :meth:`attach` to the built simulation to schedule movement epochs.
    All movement randomness derives from ``(master_seed, "mobility",
    ...)`` named seeds — per-(node, epoch) for waypoints — so adding
    mobility never perturbs protocol or churn draws.
    """

    def __init__(self, hierarchy: Hierarchy, spec, master_seed: int) -> None:
        self.hierarchy = hierarchy
        self.spec = spec
        self.master_seed = int(master_seed)
        self.anchors = region_anchors(hierarchy, spec.area)
        self._center: Point = (spec.area / 2.0, spec.area / 2.0)
        self.positions: Dict[NodeId, Point] = {}
        self.waypoints: Dict[NodeId, Point] = {}
        self.handoff_count = 0
        self.epoch_count = 0
        self.simulation = None
        self._protected: Set[NodeId] = set()
        spread = spec.area * 0.08
        for node in hierarchy.nodes:
            anchor = self.anchors[hierarchy.region_id_of(node)]
            rng = random.Random(derive_seed(self.master_seed, ("mobility", "init", node)))
            self.positions[node] = self._clamp((
                anchor[0] + rng.uniform(-spread, spread),
                anchor[1] + rng.uniform(-spread, spread),
            ))

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, simulation, duration: float) -> "MobilityManager":
        """Schedule movement epochs over ``[0, duration]``; returns self.

        Epochs are pre-scheduled as a finite set of engine events, so a
        draining run terminates without anyone stopping the manager.
        """
        if duration <= 0:
            raise ValueError(f"mobility duration must be > 0, got {duration!r}")
        self.simulation = simulation
        if self.spec.protect_sender:
            self._protected = {simulation.sender.member.node_id}
        ticks = int(duration // self.spec.epoch)
        for index in range(1, ticks + 1):
            simulation.sim.at(index * self.spec.epoch, self._tick, index)
        return self

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def waypoint_for(self, node: NodeId, epoch: int) -> Point:
        """The waypoint drawn for *(node, epoch)* — a pure function of
        the master seed, so trajectories are replayable in isolation."""
        rng = random.Random(derive_seed(self.master_seed, ("mobility", node, epoch)))
        return (rng.uniform(0.0, self.spec.area), rng.uniform(0.0, self.spec.area))

    def position_of(self, node: NodeId) -> Point:
        """Current position; unknown nodes sit at their region anchor."""
        pos = self.positions.get(node)
        if pos is not None:
            return pos
        if self.hierarchy.contains(node):
            return self.anchors.get(self.hierarchy.region_id_of(node), self._center)
        return self._center

    def nearest_region(self, pos: Point) -> RegionId:
        """The region whose anchor is closest to *pos* (ties: lowest id)."""
        return min(sorted(self.anchors),
                   key=lambda region_id: _distance(pos, self.anchors[region_id]))

    def _clamp(self, pos: Point) -> Point:
        area = self.spec.area
        return (min(max(pos[0], 0.0), area), min(max(pos[1], 0.0), area))

    def _tick(self, epoch: int) -> None:
        simulation = self.simulation
        assert simulation is not None
        self.epoch_count = epoch
        step = self.spec.speed * self.spec.epoch
        # Adopt nodes that joined after construction (e.g. via churn):
        # they appear at their region anchor and roam from there.
        for node in sorted(simulation.members):
            member = simulation.members[node]
            if member.alive and node not in self.positions:
                self.positions[node] = self.position_of(node)
        for node in sorted(self.positions):
            member = simulation.members.get(node)
            if member is None or not member.alive:
                self.positions.pop(node, None)
                self.waypoints.pop(node, None)
                continue
            pos = self.positions[node]
            waypoint = self.waypoints.get(node)
            if waypoint is None or _distance(pos, waypoint) <= step:
                waypoint = self.waypoint_for(node, epoch)
                self.waypoints[node] = waypoint
            pos = self._clamp(_step_toward(pos, waypoint, step))
            self.positions[node] = pos
            if node in self._protected:
                continue
            new_region = self.nearest_region(pos)
            if new_region != self.hierarchy.region_id_of(node):
                self._handoff(member, node, new_region, pos)

    def _handoff(self, member, node: NodeId, new_region: RegionId, pos: Point) -> None:
        simulation = self.simulation
        old_region = self.hierarchy.region_id_of(node)
        member.leave()  # graceful: §3.2 long-term handoff to peers
        new_member = simulation.add_member(new_region)
        new_node = new_member.node_id
        self.positions.pop(node, None)
        self.positions[new_node] = pos
        waypoint = self.waypoints.pop(node, None)
        if waypoint is not None:
            self.waypoints[new_node] = waypoint
        self.handoff_count += 1
        simulation.trace.emit(
            simulation.sim.now, "mobility_handoff",
            node=node, new_node=new_node,
            from_region=old_region, to_region=new_region,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Flat metrics for :meth:`BuiltScenario.summary`."""
        return {
            "mobility_handoffs": self.handoff_count,
            "mobility_epochs": self.epoch_count,
        }


class DistanceLoss(LossModel):
    """Per-link data loss growing with the endpoints' field distance.

    Loss probability is ``max_loss * min(1, distance / area)`` — zero
    at co-location, ``max_loss`` at full-field separation — the
    SNR-vs-distance shape from the rate-adaptive multicast literature.
    Composes with an optional *base* model (evaluated first, its
    ``bind_clock``/``new_message`` duck-hooks forwarded).
    """

    def __init__(self, manager: MobilityManager, max_loss: float,
                 base: Optional[LossModel] = None,
                 kinds: Optional[Set[str]] = None) -> None:
        if not 0 <= max_loss <= 1:
            raise ValueError(f"max_loss must be in [0, 1], got {max_loss!r}")
        self.manager = manager
        self.max_loss = max_loss
        self.base = base
        self.kinds = {"data"} if kinds is None else set(kinds)

    def bind_clock(self, clock) -> None:
        bind = getattr(self.base, "bind_clock", None)
        if bind is not None:
            bind(clock)

    def new_message(self) -> None:
        reset = getattr(self.base, "new_message", None)
        if reset is not None:
            reset()

    def probability(self, src: NodeId, dst: NodeId) -> float:
        """The current distance-driven drop probability for the link."""
        gap = _distance(self.manager.position_of(src), self.manager.position_of(dst))
        return self.max_loss * min(1.0, gap / self.manager.spec.area)

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        if self.base is not None and self.base.is_lost(src, dst, kind, rng):
            return True
        if kind not in self.kinds or self.max_loss <= 0:
            return False
        return rng.random() < self.probability(src, dst)
