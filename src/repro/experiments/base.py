"""Shared helpers for the experiment harness.

Every experiment returns a :class:`repro.metrics.report.SeriesTable`
whose rows are directly comparable to the corresponding paper figure;
benchmarks print them and EXPERIMENTS.md quotes them.

Per-seed work lives in **top-level trial functions** — picklable
``(params, seed) -> JSON-serializable dict`` units — which experiments
fan out with :func:`run_sweep` through the ambient
:class:`repro.runner.Runner`.  The default runner executes serially
with no cache (the historical behaviour); the CLI installs a parallel,
cached runner via ``--jobs`` / ``--cache-dir``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.runner import SweepSpec, current_runner

__all__ = ["seed_list", "run_sweep", "run_sweeps"]


def seed_list(seeds: int, base: int = 0) -> List[int]:
    """The canonical seed set for an experiment repetition count."""
    return [base + i for i in range(seeds)]


def run_sweep(
    experiment_id: str,
    trial: Any,
    grid: Sequence[Dict[str, Any]],
    seeds: "int | Sequence[int]",
) -> List[List[Any]]:
    """Fan ``grid`` × ``seeds`` through the ambient runner.

    ``seeds`` may be a repetition count (expanded via :func:`seed_list`,
    the convention every experiment uses) or an explicit seed sequence.
    Returns one result list per grid point, per-seed results in seed
    order — regardless of the backend's parallelism.
    """
    if isinstance(seeds, int):
        seeds = seed_list(seeds)
    sweep = SweepSpec(experiment_id, trial, list(grid), list(seeds))
    return current_runner().run_sweep(sweep)


def run_sweeps(sweeps: Sequence[SweepSpec]) -> List[List[List[Any]]]:
    """Run several sweeps as one batch through the ambient runner."""
    return current_runner().run_sweeps(sweeps)
