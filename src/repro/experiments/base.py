"""Shared helpers for the experiment harness.

Every experiment returns a :class:`repro.metrics.report.SeriesTable`
whose rows are directly comparable to the corresponding paper figure;
benchmarks print them and EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


def seed_list(seeds: int, base: int = 0) -> List[int]:
    """The canonical seed set for an experiment repetition count."""
    return [base + i for i in range(seeds)]


def mean_over_seeds(fn: Callable[[int], float], seeds: Sequence[int]) -> float:
    """Average a scalar measurement over seeds."""
    values = [fn(seed) for seed in seeds]
    if not values:
        raise ValueError("mean_over_seeds() with no seeds")
    return sum(values) / len(values)


def collect_over_seeds(fn: Callable[[int], T], seeds: Sequence[int]) -> List[T]:
    """Run a measurement for each seed and collect the results."""
    return [fn(seed) for seed in seeds]
