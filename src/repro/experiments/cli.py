"""Command-line entry point: regenerate paper figures from a terminal.

Usage::

    rrmp-experiments list
    rrmp-experiments run fig6
    rrmp-experiments run fig8 --param seeds=25 --param n=50
    rrmp-experiments all --quick

``--param key=value`` values are parsed as Python literals (numbers,
tuples, booleans) and passed to the experiment function.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Dict, List, Optional

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment

#: Reduced-cost parameter overrides used by ``all --quick`` (and smoke
#: tests) so the complete suite finishes in seconds.
QUICK_PARAMS: Dict[str, Dict[str, object]] = {
    "fig3": {"trials": 2_000},
    "fig4": {"trials": 2_000},
    "fig6": {"seeds": 5},
    "fig7": {},
    "fig8": {"seeds": 20},
    "fig9": {"ns": (100, 200, 400, 700, 1000), "seeds": 10},
    "ablation_c_tradeoff": {"seeds": 10},
    "ablation_lambda": {"seeds": 10},
    "ablation_search_vs_multicast": {"seeds": 30},
    "ablation_policies": {"seeds": 1, "messages": 15},
    "ablation_hash_vs_random": {"seeds": 15},
    "ablation_idle_threshold": {"seeds": 8},
    "ablation_churn_handoff": {"seeds": 10},
    "ablation_scaling": {"ns": (25, 50, 100, 200), "seeds": 4},
    "ablation_fec": {"points": ((4, 1), (8, 2)), "loss_rates": (0.3,), "seeds": 3},
}


def parse_param(text: str) -> tuple:
    """Parse one ``key=value`` override (value as a Python literal)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"--param expects key=value, got {text!r}")
    key, _, raw = text.partition("=")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw  # fall back to the raw string
    return (key.strip(), value)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rrmp-experiments",
        description="Regenerate the figures of 'Optimizing Buffer Management "
                    "for Reliable Multicast' (DSN 2002).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=experiment_ids())
    run_parser.add_argument(
        "--param", action="append", default=[], type=parse_param,
        help="override an experiment parameter, e.g. --param seeds=10",
    )
    all_parser = commands.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--quick", action="store_true",
        help="use reduced repetition counts (seconds instead of minutes)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(eid) for eid in experiment_ids())
        for eid in experiment_ids():
            print(f"{eid.ljust(width)}  {EXPERIMENTS[eid].description}")
        return 0
    if args.command == "run":
        params = dict(args.param)
        table = run_experiment(args.experiment, **params)
        print(table.to_text())
        return 0
    if args.command == "all":
        for eid in experiment_ids():
            params = QUICK_PARAMS.get(eid, {}) if args.quick else {}
            table = run_experiment(eid, **params)
            print(table.to_text())
            print()
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
