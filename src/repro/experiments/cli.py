"""Command-line entry point: regenerate paper figures from a terminal.

Usage::

    rrmp-experiments list
    rrmp-experiments run fig6
    rrmp-experiments run fig8 --param seeds=25 --param n=50
    rrmp-experiments run ablation_scaling --quick --jobs 4
    rrmp-experiments all --quick --jobs 4 --cache-dir /tmp/rrmp-cache
    rrmp-experiments scenarios list
    rrmp-experiments scenarios run wan_burst_loss --json
    rrmp-experiments validate run scale
    rrmp-experiments validate fuzz --trials 200 --seed 0 --json
    rrmp-experiments live run wan_burst_loss --speedup 4
    rrmp-experiments live diff initial_holders --speedup 2 --json

``--param key=value`` values are parsed as Python literals (numbers,
tuples, booleans; lowercase ``true``/``false``/``none`` coerce too)
and passed to the experiment function.

``scenarios`` lists, describes and runs the named declarative
scenarios of :mod:`repro.scenario` (see ``scenarios --help``);
``validate`` runs scenarios under the protocol invariant oracle and
fuzzes the scenario space (see ``validate --help``).

``run`` and ``all`` execute through the sweep runner: ``--jobs N``
fans trials across N worker processes (byte-identical tables to
``--jobs 1`` at equal seeds), and results are cached on disk keyed by
``(experiment, params, seed, schema version)`` so re-runs are
near-instant.  ``--no-cache`` disables the cache; ``--cache-dir``
relocates it (default: ``$RRMP_CACHE_DIR`` or
``~/.cache/rrmp-experiments``).  Tables go to stdout; the runner's
trial accounting goes to stderr.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import List, Optional

from repro.experiments.quick import QUICK_PARAMS, quick_params_for
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.runner import (
    ProcessPoolBackend,
    ResultCache,
    Runner,
    SerialBackend,
    using_runner,
)
from repro.runner.profiling import maybe_profile
from repro.live.cli import add_live_parser, main_live
from repro.scenario.cli import add_scenarios_parser, main_scenarios
from repro.validate.cli import add_validate_parser, main_validate

__all__ = [
    "QUICK_PARAMS",
    "build_parser",
    "fold_params",
    "main",
    "parse_param",
    "runner_from_args",
]


def parse_param(text: str) -> tuple:
    """Parse one ``key=value`` override.

    The value is parsed as a Python literal; what the literal grammar
    rejects is coerced in stages — lowercase/uppercase ``true``/
    ``false``/``none``/``null`` to their Python values, then a float
    parse (catching spellings like ``1_0e-3``, ``inf`` or ``nan``) —
    before falling back to the raw string.  ``--param fec=true`` must
    arrive as ``True``, not the string ``"true"``.

    Keys may be dotted paths: ``--param congestion.target_loss=0.02``
    addresses a field of a sub-config.  :func:`fold_params` folds the
    parsed pairs into the nested dict shape experiment functions (and
    spec overrides) consume.
    """
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"--param expects key=value, got {text!r}")
    key, _, raw = text.partition("=")
    return (key.strip(), _coerce_value(raw.strip()))


def fold_params(pairs) -> dict:
    """Fold parsed ``(key, value)`` pairs into a (possibly nested) dict.

    Dotted keys become nested dicts: ``("congestion.target_loss", 0.02)``
    lands as ``{"congestion": {"target_loss": 0.02}}``.  Mixing a scalar
    and a nested write under one key (``a=1`` plus ``a.b=2``) is a usage
    error, reported as such rather than silently last-wins.
    """
    params: dict = {}
    for key, value in pairs:
        parts = key.split(".")
        cursor = params
        for index, part in enumerate(parts[:-1]):
            existing = cursor.get(part)
            if existing is None:
                existing = cursor[part] = {}
            elif not isinstance(existing, dict):
                prefix = ".".join(parts[: index + 1])
                raise argparse.ArgumentTypeError(
                    f"--param {key}={value!r} conflicts with the scalar "
                    f"override already given for {prefix!r}"
                )
            cursor = existing
        leaf = parts[-1]
        if isinstance(cursor.get(leaf), dict):
            raise argparse.ArgumentTypeError(
                f"--param {key}={value!r} conflicts with the nested "
                f"overrides already given under {key!r}"
            )
        cursor[leaf] = value
    return params


_WORD_VALUES = {"true": True, "false": False, "none": None, "null": None}


def _coerce_value(raw: str) -> object:
    try:
        return ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        pass
    lowered = raw.lower()
    if lowered in _WORD_VALUES:
        return _WORD_VALUES[lowered]
    try:
        return float(raw)
    except ValueError:
        return raw  # fall back to the raw string


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--jobs``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-runner flags shared by ``run`` and ``all``."""
    parser.add_argument(
        "--quick", action="store_true",
        help="use reduced repetition counts (seconds instead of minutes)",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="run trials across N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always execute trials, never read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: $RRMP_CACHE_DIR or "
             "~/.cache/rrmp-experiments)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the run with cProfile: raw stats to --profile-out, "
             "top-25 cumulative functions to stderr",
    )
    parser.add_argument(
        "--profile-out", default="profile.pstats", metavar="PATH",
        help="where --profile writes the raw pstats file "
             "(default: profile.pstats)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rrmp-experiments",
        description="Regenerate the figures of 'Optimizing Buffer Management "
                    "for Reliable Multicast' (DSN 2002).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=experiment_ids())
    run_parser.add_argument(
        "--param", action="append", default=[], type=parse_param,
        help="override an experiment parameter, e.g. --param seeds=10",
    )
    _add_runner_arguments(run_parser)
    all_parser = commands.add_parser("all", help="run every experiment")
    _add_runner_arguments(all_parser)
    add_scenarios_parser(commands)
    add_validate_parser(commands)
    add_live_parser(commands)
    return parser


def runner_from_args(args: argparse.Namespace) -> Runner:
    """Build the runner the parsed ``run``/``all`` flags describe."""
    if args.jobs > 1:
        backend = ProcessPoolBackend(args.jobs)
    else:
        backend = SerialBackend()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return Runner(backend=backend, cache=cache)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "scenarios":
        return main_scenarios(args)
    if args.command == "validate":
        return main_validate(args)
    if args.command == "live":
        return main_live(args)
    if args.command == "list":
        width = max(len(eid) for eid in experiment_ids())
        for eid in experiment_ids():
            print(f"{eid.ljust(width)}  {EXPERIMENTS[eid].description}")
        return 0
    if args.command == "run":
        params = quick_params_for(args.experiment) if args.quick else {}
        params.update(fold_params(args.param))
        runner = runner_from_args(args)
        try:
            with maybe_profile(args.profile, args.profile_out):
                with using_runner(runner):
                    table = run_experiment(args.experiment, **params)
        finally:
            getattr(runner.backend, "close", lambda: None)()
        print(table.to_text())
        print(f"runner: {runner.stats.summary()} jobs={args.jobs}", file=sys.stderr)
        return 0
    if args.command == "all":
        runner = runner_from_args(args)
        try:
            with maybe_profile(args.profile, args.profile_out):
                with using_runner(runner):
                    for eid in experiment_ids():
                        params = quick_params_for(eid) if args.quick else {}
                        table = run_experiment(eid, **params)
                        print(table.to_text())
                        print()
        finally:
            getattr(runner.backend, "close", lambda: None)()
        print(f"runner: {runner.stats.summary()} jobs={args.jobs}", file=sys.stderr)
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
