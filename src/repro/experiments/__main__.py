"""``python -m repro.experiments`` — same as the ``rrmp-experiments`` CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
