"""Figure 6 — effectiveness of feedback-based short-term buffering.

Paper setup (§4): region of 100 members, RTT 10 ms between any two,
idle threshold T = 40 ms, requests/repairs lossless.  "We simulate the
outcome of an IP multicast by randomly selecting a subset of members to
hold a message initially.  All other members simultaneously detect the
loss and start sending local requests.  We measure how long these
initial members buffer the message."

Expected shape (paper, log-scale y): ~110 ms at k = 1 decreasing
monotonically as the initial multicast reaches more members — more
holders means fewer missing members, a shorter repair epidemic, and
therefore an earlier last-request + T discard point.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import seed_list
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean, stdev
from repro.workloads.scenarios import run_initial_holders


def run_fig6(
    ks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    n: int = 100,
    seeds: int = 20,
    idle_threshold: float = 40.0,
    rtt: float = 10.0,
) -> SeriesTable:
    """Regenerate Figure 6: average holder buffering time vs k."""
    table = SeriesTable(
        title=(
            f"Figure 6 — avg buffering time of initial holders (ms); "
            f"n={n}, T={idle_threshold:g} ms, RTT={rtt:g} ms, {seeds} seeds"
        ),
        x_label="#holders k",
        xs=list(ks),
    )
    means, sds, violations = [], [], []
    for k in ks:
        per_seed = []
        violation_total = 0
        for seed in seed_list(seeds):
            result = run_initial_holders(
                n, k, seed=seed, idle_threshold=idle_threshold, rtt=rtt
            )
            durations = result.holder_buffering_durations()
            per_seed.append(mean(durations))
            violation_total += result.simulation.violation_count()
        means.append(mean(per_seed))
        sds.append(stdev(per_seed))
        violations.append(violation_total)
    table.add_series("avg buffering time (ms)", means)
    table.add_series("stdev over seeds", sds)
    table.add_series("reliability violations", violations)
    table.notes.append("paper: ~110 ms at k=1 decreasing monotonically (log y-axis)")
    table.notes.append(
        "violations arise because this experiment disables long-term buffering (C=0)"
    )
    return table
