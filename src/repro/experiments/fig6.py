"""Figure 6 — effectiveness of feedback-based short-term buffering.

Paper setup (§4): region of 100 members, RTT 10 ms between any two,
idle threshold T = 40 ms, requests/repairs lossless.  "We simulate the
outcome of an IP multicast by randomly selecting a subset of members to
hold a message initially.  All other members simultaneously detect the
loss and start sending local requests.  We measure how long these
initial members buffer the message."

Expected shape (paper, log-scale y): ~110 ms at k = 1 decreasing
monotonically as the initial multicast reaches more members — more
holders means fewer missing members, a shorter repair epidemic, and
therefore an earlier last-request + T discard point.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean, stdev
from repro.workloads.scenarios import run_initial_holders


def trial_holder_buffering(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one Figure 6 run — mean holder buffering + violations."""
    result = run_initial_holders(
        int(params["n"]), int(params["k"]), seed=seed,
        idle_threshold=float(params["idle_threshold"]), rtt=float(params["rtt"]),
    )
    return {
        "mean_buffering_ms": mean(result.holder_buffering_durations()),
        "violations": result.simulation.violation_count(),
    }


def run_fig6(
    ks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    n: int = 100,
    seeds: int = 20,
    idle_threshold: float = 40.0,
    rtt: float = 10.0,
) -> SeriesTable:
    """Regenerate Figure 6: average holder buffering time vs k."""
    table = SeriesTable(
        title=(
            f"Figure 6 — avg buffering time of initial holders (ms); "
            f"n={n}, T={idle_threshold:g} ms, RTT={rtt:g} ms, {seeds} seeds"
        ),
        x_label="#holders k",
        xs=list(ks),
    )
    grid = [
        {"n": n, "k": k, "idle_threshold": idle_threshold, "rtt": rtt} for k in ks
    ]
    per_point = run_sweep("fig6", trial_holder_buffering, grid, seeds)
    means, sds, violations = [], [], []
    for runs in per_point:
        per_seed = [run["mean_buffering_ms"] for run in runs]
        means.append(mean(per_seed))
        sds.append(stdev(per_seed))
        violations.append(sum(run["violations"] for run in runs))
    table.add_series("avg buffering time (ms)", means)
    table.add_series("stdev over seeds", sds)
    table.add_series("reliability violations", violations)
    table.notes.append("paper: ~110 ms at k=1 decreasing monotonically (log y-axis)")
    table.notes.append(
        "violations arise because this experiment disables long-term buffering (C=0)"
    )
    return table
