"""Ablation — NACK-driven congestion control on a capacity-bound link.

The paper's buffer-optimization results assume the sender's offered
load is a given; this ablation asks what happens when it is not.  A
single region shares a :class:`~repro.net.loss.BottleneckLoss` link —
the one loss model whose drop rate answers to offered load, so pushing
harder drops more data *and more repairs*: retries pile up, recoveries
exhaust ``max_recovery_time``, and delivery collapses.  An adaptive
sender (:mod:`repro.cc`) closes the loop instead, throttling to the
worst receiver's loss report.

Per offered-load multiple of the link capacity we run the same
workload and seeds under three controllers:

* ``none``  — the open-loop sender (today's default, the baseline);
* ``tfmcc`` — equation-based worst-receiver tracking (TFMCC/NORM);
* ``aimd``  — additive-increase / multiplicative-decrease.

Measured per point: goodput (messages fully delivered per second of
sim time), delivered fraction, reliability violations at the horizon,
and peak single-node buffer occupancy — the §3.2 pressure the quota
bounds.  A final two-flow duel per controller
(:func:`~repro.cc.fairness.run_fairness_duel`) reports Jain's index
``J = (sum x)^2 / (n * sum x^2)`` and bottleneck utilization: an
adaptive scheme must not just survive overload but share capacity.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cc.fairness import run_fairness_duel
from repro.experiments.base import run_sweeps, seed_list
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.runner import SweepSpec
from repro.scenario.builder import scenario

#: Controllers compared at every sweep point.
_CONTROLLERS = ("none", "tfmcc", "aimd")


def _measure_cc(
    controller: str,
    load: float,
    n: int,
    capacity_per_member: float,
    messages: int,
    base_loss: float,
    seed: int,
    horizon: float,
) -> Dict[str, float]:
    """One run: *load* × the sustainable rate under *controller*."""
    sustainable = capacity_per_member  # capacity / n, in msgs/s
    rate = load * sustainable
    builder = (
        scenario("ablation-cc", seed=seed)
        .single_region(n)
        .uniform(messages, 1000.0 / rate, start=1.0)
        .bottleneck(
            capacity=capacity_per_member * n,
            window=250.0,
            receiver_loss=base_loss,
        )
        .protocol(max_recovery_time=1_500.0)
        .measure(horizon=horizon, probe_period=100.0)
    )
    if controller != "none":
        builder = builder.congestion(
            controller, target_loss=0.02, min_rate=sustainable / 10.0,
            max_rate=rate, feedback_interval=100.0,
        )
    built = builder.build()
    built.run()
    summary = built.summary()
    delivered = float(summary["delivered_fraction"])
    return {
        "goodput": delivered * messages * 1000.0 / horizon,
        "delivered": delivered,
        "violations": float(summary["reliability_violations"]),
        "peak_occupancy": float(summary["peak_node_occupancy"]),
    }


def trial_cc(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one run at one ``(controller, load)`` point."""
    return _measure_cc(
        str(params["controller"]), float(params["load"]), int(params["n"]),
        float(params["capacity_per_member"]), int(params["messages"]),
        float(params["base_loss"]), seed, float(params["horizon"]),
    )


def run_congestion_ablation(
    loads: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    n: int = 30,
    capacity_per_member: float = 100.0,
    messages: int = 300,
    base_loss: float = 0.02,
    seeds: int = 5,
    horizon: float = 12_000.0,
) -> SeriesTable:
    """Sweep offered load (× sustainable rate) for each controller.

    ``capacity_per_member`` is the bottleneck budget per receiver in
    msgs/s, so the sustainable multicast rate is that number and the
    link capacity is ``capacity_per_member * n`` packet deliveries/s.
    All controllers see identical workloads per seed.
    """
    xs = [f"{load:g}x" for load in loads]
    table = SeriesTable(
        title=(
            f"Ablation — congestion control on a bottleneck link; one "
            f"region of {n}, sustainable rate {capacity_per_member:g} "
            f"msgs/s, {messages} messages, {seeds} seeds"
        ),
        x_label="offered load (x sustainable rate)",
        xs=xs,
    )
    grid = [
        {"controller": controller, "load": load, "n": n,
         "capacity_per_member": capacity_per_member, "messages": messages,
         "base_loss": base_loss, "horizon": horizon}
        for load in loads
        for controller in _CONTROLLERS
    ]
    (results,) = run_sweeps([
        SweepSpec("ablation_congestion", trial_cc, grid, seed_list(seeds)),
    ])
    columns: Dict[str, List[float]] = {}
    for offset, controller in enumerate(_CONTROLLERS):
        per_load = [
            results[index * len(_CONTROLLERS) + offset]
            for index in range(len(loads))
        ]
        columns[f"{controller}: goodput (msgs/s)"] = [
            mean([run["goodput"] for run in runs]) for runs in per_load
        ]
        columns[f"{controller}: delivered fraction"] = [
            mean([run["delivered"] for run in runs]) for runs in per_load
        ]
        columns[f"{controller}: peak occupancy"] = [
            mean([run["peak_occupancy"] for run in runs]) for runs in per_load
        ]
    for name, values in columns.items():
        table.add_series(name, values)
    for controller in ("tfmcc", "aimd"):
        duel = run_fairness_duel(controller, capacity=capacity_per_member * 2)
        table.notes.append(
            f"fairness duel ({controller}): two flows on one bottleneck, "
            f"Jain index {duel.jain:.3f}, utilization {duel.utilization:.2f} "
            f"(J=1 is a perfectly fair split)"
        )
    table.notes.append(
        "below capacity (0.5x/1x) all senders deliver everything; past it "
        "the open-loop sender collapses — dropped repairs starve recovery "
        "until give-ups — while the adaptive senders throttle to the "
        "bottleneck and keep the delivered fraction near 1"
    )
    return table
