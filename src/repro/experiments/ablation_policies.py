"""Ablation — buffering policies compared on one WAN workload.

Puts the paper's positioning claims (§1, §5, conclusion) on one table:

* **two-phase** (the contribution): low occupancy, spread evenly, tiny
  control overhead, rare reliability violations;
* **fixed-time** (Bimodal Multicast): occupancy scales with the hold
  time, insensitive to which messages are still needed;
* **stability-gossip** (Guo–Rhee-style): discards only what is globally
  stable — safe, but continuous digest traffic and occupancy gated by
  the slowest member;
* **hash C=6** (the authors' NGC'99 scheme): same expected copy count
  as two-phase, but no short-term phase to serve fresh local requests;
* **never-discard**: the conservative §1 strawman;
* **repair-server** (RMTP-like tree): one member per region holds the
  whole session — the per-node hotspot column is the point.

Workload: three chained regions, a uniform stream of messages, 5%
independent receiver loss at IP-multicast time, session messages on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import run_sweep
from repro.metrics.occupancy import OccupancyProbe
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.ipmulticast import BernoulliOutcome
from repro.net.topology import chain
from repro.scenario.builder import scenario
from repro.tree.rmtp import TreeSimulation


#: The compared schemes, in table order: label -> the PolicySpec kind
#: and knobs the scenario builder applies (or "tree" for the RMTP
#: baseline, which is a different simulation class entirely).  Keeping
#: the mapping here — not in trial params — keeps trial specs
#: picklable: the trial function resolves its policy by label inside
#: the worker process.
_POLICIES: "List[tuple]" = [
    ("two-phase C=6 T=40", ("two_phase", {})),
    ("fixed-time 200ms", ("fixed_time", {"hold_time": 200.0})),
    ("fixed-time 1000ms", ("fixed_time", {"hold_time": 1000.0})),
    ("stability-gossip", ("stability", {})),
    ("hash C=6", ("hash", {"c": 6.0})),
    ("never-discard", ("never_discard", {})),
    ("repair-server tree", ("tree", {})),
]

_POLICY_BY_LABEL: Dict[str, tuple] = {label: entry for label, entry in _POLICIES}


def trial_policy(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one streamed-WAN run under one buffering policy."""
    kind, knobs = _POLICY_BY_LABEL[str(params["policy"])]
    args = (
        int(params["region_size"]), int(params["messages"]),
        float(params["interval"]), float(params["loss"]),
        seed, float(params["horizon"]),
    )
    if kind == "tree":
        return _measure_tree(*args)
    return _measure_rrmp(kind, knobs, *args)


def _measure_rrmp(
    kind: str,
    knobs: Dict[str, float],
    region_size: int,
    messages: int,
    interval: float,
    loss: float,
    seed: int,
    horizon: float,
) -> Dict[str, float]:
    # long_term_ttl enables §3.2's eventual discard so the two-phase
    # row shows the full lifecycle instead of holding C copies forever.
    built = (
        scenario("ablation-policies", seed=seed)
        .chain(region_size, region_size, region_size)
        .uniform(messages, interval)
        .loss(p=loss)
        .policy(kind, long_term_ttl=1_000.0, **knobs)
        .protocol(session_interval=50.0, max_recovery_time=horizon)
        .measure(horizon=horizon, probe_period=10.0)
        .build()
    )
    simulation = built.simulation
    built.run()
    latencies = simulation.recovery_latencies()
    undelivered = sum(
        len(simulation.alive_members()) - simulation.received_count(seq)
        for seq in range(1, messages + 1)
    )
    assert built.total_probe is not None
    return {
        "avg total occupancy": built.total_probe.average(),
        "peak single-node occupancy": built.peak_node_occupancy,
        "mean recovery latency (ms)": mean(latencies) if latencies else 0.0,
        "control messages": float(simulation.control_message_count()),
        "data messages": float(simulation.data_message_count()),
        "undelivered": float(undelivered),
        "violations": float(simulation.violation_count()),
    }


def _measure_tree(
    region_size: int,
    messages: int,
    interval: float,
    loss: float,
    seed: int,
    horizon: float,
) -> Dict[str, float]:
    hierarchy = chain([region_size] * 3)
    simulation = TreeSimulation(
        hierarchy, seed=seed, outcome=BernoulliOutcome(loss), session_interval=50.0
    )
    total_probe = OccupancyProbe(simulation.sim, simulation.buffer_occupancy, period=10.0)
    peak_node = [0.0]

    def sample_peak() -> float:
        per_node = simulation.occupancy_by_node()
        current = max(per_node.values()) if per_node else 0
        peak_node[0] = max(peak_node[0], float(current))
        return float(current)

    node_probe = OccupancyProbe(simulation.sim, sample_peak, period=10.0)
    for index in range(messages):
        simulation.sim.at(index * interval, simulation.multicast)
    simulation.run(until=horizon)
    total_probe.stop()
    node_probe.stop()
    latencies = simulation.recovery_latencies()
    undelivered = sum(
        sum(0 if m.has_received(seq) else 1 for m in simulation.members.values())
        for seq in range(1, messages + 1)
    )
    return {
        "avg total occupancy": total_probe.average(),
        "peak single-node occupancy": peak_node[0],
        "mean recovery latency (ms)": mean(latencies) if latencies else 0.0,
        "control messages": float(simulation.control_message_count()),
        "data messages": float(simulation.data_message_count()),
        "undelivered": float(undelivered),
        "violations": 0.0,
    }


def run_policy_comparison(
    region_size: int = 20,
    messages: int = 30,
    interval: float = 20.0,
    loss: float = 0.05,
    seeds: int = 3,
    settle: float = 1_500.0,
) -> SeriesTable:
    """Compare all buffering schemes on one streamed-WAN workload."""
    horizon = messages * interval + settle
    metric_names = [
        "avg total occupancy",
        "peak single-node occupancy",
        "mean recovery latency (ms)",
        "control messages",
        "data messages",
        "undelivered",
        "violations",
    ]
    labels = [label for label, _policy in _POLICIES]
    grid = [
        {"policy": label, "region_size": region_size, "messages": messages,
         "interval": interval, "loss": loss, "horizon": horizon}
        for label in labels
    ]
    per_point = run_sweep("ablation_policies", trial_policy, grid, seeds)
    columns: Dict[str, List[float]] = {name: [] for name in metric_names}
    for per_seed in per_point:
        for name in metric_names:
            columns[name].append(mean([run[name] for run in per_seed]))
    table = SeriesTable(
        title=(
            f"Ablation — buffering policies; 3x{region_size} members, "
            f"{messages} msgs @ {interval:g} ms, {loss:.0%} loss, {seeds} seeds"
        ),
        x_label="policy",
        xs=labels,
    )
    for name in metric_names:
        table.add_series(name, columns[name])
    table.notes.append(
        "two-phase: low spread-out occupancy; tree: hotspot at repair servers;"
        " stability: digest traffic dominates control messages"
    )
    return table
