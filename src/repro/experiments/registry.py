"""Registry of all reproducible experiments.

Each entry maps an experiment id (the DESIGN.md index) to the callable
that regenerates it and a one-line description.  The CLI and the
benchmark harness both resolve experiments through this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.ablation_adaptive_tree import run_adaptive_tree_ablation
from repro.experiments.ablation_c import run_c_tradeoff
from repro.experiments.ablation_churn import run_churn_handoff
from repro.experiments.ablation_congestion import run_congestion_ablation
from repro.experiments.ablation_fec import run_fec_ablation
from repro.experiments.ablation_hash import run_hash_vs_random
from repro.experiments.ablation_idle import run_idle_threshold
from repro.experiments.ablation_lambda import run_lambda_sweep
from repro.experiments.ablation_policies import run_policy_comparison
from repro.experiments.ablation_scaling import run_scaling
from repro.experiments.ablation_search_storm import run_search_vs_multicast
from repro.experiments.ablation_workloads import run_workloads_ablation
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.metrics.report import SeriesTable


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    experiment_id: str
    description: str
    run: Callable[..., SeriesTable]


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in [
        Experiment("fig3", "P[k long-term bufferers] for C in {5..8} (Poisson)", run_fig3),
        Experiment("fig4", "P[no long-term bufferer] vs C (e^-C)", run_fig4),
        Experiment("fig6", "feedback buffering time vs #initial holders", run_fig6),
        Experiment("fig7", "#received vs #buffered over time (k=1)", run_fig7),
        Experiment("fig8", "search time vs #bufferers (n=100)", run_fig8),
        Experiment("fig9", "search time vs region size (10 bufferers)", run_fig9),
        Experiment("ablation_c_tradeoff", "C: buffer copies vs late recovery", run_c_tradeoff),
        Experiment("ablation_lambda", "lambda: WAN duplicates vs regional recovery",
                   run_lambda_sweep),
        Experiment("ablation_search_vs_multicast",
                   "randomized search vs multicast-request reply storms",
                   run_search_vs_multicast),
        Experiment("ablation_policies", "two-phase vs all baseline policies",
                   run_policy_comparison),
        Experiment("ablation_hash_vs_random",
                   "randomized vs deterministic bufferer selection (3.4)",
                   run_hash_vs_random),
        Experiment("ablation_idle_threshold", "sensitivity to idle threshold T",
                   run_idle_threshold),
        Experiment("ablation_churn_handoff", "graceful handoff vs crash under churn",
                   run_churn_handoff),
        Experiment("ablation_fec", "FEC repair (k, r, loss) vs pull recovery and tree",
                   run_fec_ablation),
        Experiment("ablation_scaling", "per-member costs as the region grows",
                   run_scaling),
        Experiment("ablation_congestion",
                   "adaptive-rate senders vs open loop on a bottleneck link",
                   run_congestion_ablation),
        Experiment("ablation_adaptive_tree",
                   "static vs adaptive repair hierarchy (makespan objective)",
                   run_adaptive_tree_ablation),
        Experiment("ablation_workloads",
                   "workload families: static vs mobility vs regional outage",
                   run_workloads_ablation),
    ]
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, figures first."""
    return list(EXPERIMENTS.keys())


def run_experiment(experiment_id: str, **params: object) -> SeriesTable:
    """Run a registered experiment by id with optional overrides."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    return experiment.run(**params)
