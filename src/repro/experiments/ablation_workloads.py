"""Ablation — workload families: static vs mobile vs outage delivery.

The paper evaluates RRMP under static membership and independent
losses; the workload families added around it (``repro.workloads``)
ask how the same protocol behaves when the *workload* moves instead.
This ablation runs one streaming session — a CBR frame stream judged
against per-receiver playout deadlines — under three conditions:

* ``static``   — the registry's ``streaming_playback`` scenario as-is:
  fixed membership, independent Bernoulli loss;
* ``mobility`` — the same stream with random-waypoint movement layered
  on top: members roam between regions, each region change handing the
  member's buffers off through the §3.2 long-term-holder path;
* ``outage``   — the same stream with a whole-region partition
  mid-session: one region falls off the WAN, accumulates a mass gap
  and recovers after the heal.

The headline numbers are the session makespan and the rebuffer account
(stall events and stalled time across receivers) — the quantities a
playback workload actually experiences.  Every run executes under the
invariant oracle, so the ``handoff-conservation`` and
``rebuffer-accounting`` invariants audit each trial.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.experiments.base import run_sweeps, seed_list
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.runner import SweepSpec
from repro.scenario.registry import get_scenario
from repro.scenario.spec import LossSpec, MobilitySpec, ScenarioSpec

#: Workload conditions compared on the same stream.
_MODES = ("static", "mobility", "outage")

#: The registry scenario every mode perturbs.
_BASE_SCENARIO = "streaming_playback"


def _mode_spec(mode: str, seed: int, speed: float, epoch: float,
               outage_start: float, outage_duration: float) -> ScenarioSpec:
    spec = replace(get_scenario(_BASE_SCENARIO), seed=seed)
    if mode == "mobility":
        return replace(spec, mobility=MobilitySpec(
            kind="waypoint", speed=speed, epoch=epoch, distance_loss=0.10,
        ))
    if mode == "outage":
        # Keep the base receiver-loss floor so the only change is the
        # partition window, not the ambient loss rate.
        return replace(spec, loss=LossSpec(
            kind="outage",
            outage_start=outage_start,
            outage_duration=outage_duration,
            outage_regions=1,
            receiver_loss=spec.loss.p,
        ))
    if mode != "static":  # pragma: no cover - grid guard
        raise ValueError(f"unknown workload mode {mode!r}")
    return spec


def trial_workloads(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: the streaming session under one workload mode."""
    spec = _mode_spec(
        str(params["mode"]), seed,
        speed=float(params["speed"]),
        epoch=float(params["epoch"]),
        outage_start=float(params["outage_start"]),
        outage_duration=float(params["outage_duration"]),
    )
    spec = replace(spec, measurement=replace(spec.measurement, oracle=True))
    built = spec.build().run()
    summary = built.summary()
    return {
        "makespan": float(summary.get("makespan_session_ms", 0.0)),
        "rebuffer_events": float(summary.get("rebuffer_events", 0.0)),
        "rebuffer_time": float(summary.get("rebuffer_time_ms", 0.0)),
        "delivered_fraction": float(summary.get("delivered_fraction", 0.0)),
        "handoffs": float(summary.get("mobility_handoffs", 0.0)),
        "violations": float(summary.get("invariant_violations", 0.0)),
    }


def run_workloads_ablation(
    seeds: int = 5,
    speed: float = 2.0,
    epoch: float = 50.0,
    outage_start: float = 200.0,
    outage_duration: float = 300.0,
) -> SeriesTable:
    """Compare the stream's smoothness across workload conditions."""
    table = SeriesTable(
        title=(
            f"Ablation — workload families on the streaming session; "
            f"{seeds} seeds, waypoint speed {speed:g} @ {epoch:g} ms "
            f"epochs, outage {outage_start:g}+{outage_duration:g} ms"
        ),
        x_label="workload",
        xs=list(_MODES),
    )
    grid = [
        {"mode": mode, "speed": speed, "epoch": epoch,
         "outage_start": outage_start, "outage_duration": outage_duration}
        for mode in _MODES
    ]
    (results,) = run_sweeps([
        SweepSpec("ablation_workloads", trial_workloads, grid,
                  seed_list(seeds)),
    ])
    table.add_series("session makespan (ms)", [
        mean([run["makespan"] for run in runs]) for runs in results
    ])
    table.add_series("rebuffer events", [
        mean([run["rebuffer_events"] for run in runs]) for runs in results
    ])
    table.add_series("rebuffer time (ms)", [
        mean([run["rebuffer_time"] for run in runs]) for runs in results
    ])
    table.add_series("delivered fraction", [
        mean([run["delivered_fraction"] for run in runs]) for runs in results
    ])
    table.add_series("mobility handoffs", [
        mean([run["handoffs"] for run in runs]) for runs in results
    ])
    table.add_series("invariant violations", [
        sum(run["violations"] for run in runs) for runs in results
    ])
    table.notes.append(
        "rebuffer time = sum over receivers of (arrival - deadline) for "
        "every frame that missed its playout deadline; the deadline "
        "resets to the late arrival, so one long gap counts once"
    )
    table.notes.append(
        "mobility hands buffers off through the long-term-holder path on "
        "every region change; fresh member ids join mid-stream, so the "
        "delivered fraction dips below the static run by construction"
    )
    return table
