"""Ablation — scalability with region size.

The paper's abstract claims the scheme suits "large multicast groups";
Figures 6-9 fix n = 100 (and scale only the search).  This ablation
scales the *whole* §4 workload — one message held by 10% of an
n-member region, everyone else recovering — and measures how the costs
every member pays grow with n:

* recovery time (epidemic theory predicts ~log n rounds);
* local requests **per member** (randomized recovery's per-node cost
  should stay flat — that is what "no repair-server bottleneck" buys);
* long-term copies (should stay ≈ C, independent of n — the §3.2
  design goal, versus buffer-everywhere's linear growth).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.epidemic import pull_epidemic_rounds
from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.protocol.messages import DataMessage
from repro.scenario.builder import scenario


def trial_scaling(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one §4 whole-region workload at region size *n*."""
    n = int(params["n"])
    k = max(1, round(float(params["holder_fraction"]) * n))
    built = (
        scenario("ablation-scaling", seed=seed)
        .single_region(n)
        .latency(intra=float(params["rtt"]) / 2.0)
        .policy("two_phase", c=float(params["long_term_c"]))
        .protocol(session_interval=None, max_recovery_time=5_000.0)
        .measure(duration=3_000.0)
        .build()
    )
    simulation = built.simulation
    hierarchy = simulation.hierarchy
    # Holder injection stays bespoke (its own RNG stream predates the
    # scenario API's detect_all workload and keeps old tables stable).
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    rng = simulation.streams.stream("scaling", "holders")
    holders = set(rng.sample(hierarchy.nodes, k))
    for node in hierarchy.nodes:
        member = simulation.members[node]
        if node in holders:
            member.inject_receive(data)
        else:
            member.inject_loss_detection(1)
    built.run()
    received = [record.time for record
                in simulation.trace.of_kind("member_received")]
    stats = simulation.network.stats
    return {
        "recovery_ms": max(received) if len(received) == n else float("nan"),
        "requests_per_member": stats.sent_by_type.get("LocalRequest", 0) / n,
        "copies": float(simulation.buffering_count(1)),
    }


def run_scaling(
    ns: Sequence[int] = (25, 50, 100, 200, 400),
    holder_fraction: float = 0.1,
    long_term_c: float = 6.0,
    seeds: int = 10,
    rtt: float = 10.0,
) -> SeriesTable:
    """Scale the §4 workload and report per-member costs."""
    table = SeriesTable(
        title=(
            f"Ablation — scaling with region size; {holder_fraction:.0%} initial "
            f"holders, C={long_term_c:g}, {seeds} seeds"
        ),
        x_label="region size n",
        xs=list(ns),
    )
    grid = [
        {"n": n, "holder_fraction": holder_fraction,
         "long_term_c": long_term_c, "rtt": rtt}
        for n in ns
    ]
    per_point = run_sweep("ablation_scaling", trial_scaling, grid, seeds)
    recovery_ms, requests_per_member, copies, model_rounds = [], [], [], []
    for n, runs in zip(ns, per_point):
        recovery_per_seed = [run["recovery_ms"] for run in runs]
        recovery_ms.append(mean([v for v in recovery_per_seed if v == v]))
        requests_per_member.append(mean([run["requests_per_member"] for run in runs]))
        copies.append(mean([run["copies"] for run in runs]))
        model_rounds.append(pull_epidemic_rounds(n, max(1, round(holder_fraction * n))) * rtt)
    table.add_series("time to full recovery (ms)", recovery_ms)
    table.add_series("mean-field model (ms)", model_rounds)
    table.add_series("local requests per member", requests_per_member)
    table.add_series("long-term copies (expect ~C)", copies)
    table.add_series("copies if everyone buffered", [float(n) for n in ns])
    table.notes.append(
        "per-member request cost and copy count stay ~flat while n grows 16x;"
        " recovery time grows ~logarithmically (epidemic spreading)"
    )
    return table
