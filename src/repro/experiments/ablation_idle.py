"""Ablation — sensitivity to the idle threshold T (§3.1).

"The choice of T depends on the maximum round trip time within a
region and the confidence interval."  Too small a T discards messages
while requests are still in flight (late requesters find nothing —
with C = 0, a reliability violation); too large a T wastes buffer
space.  The paper fixes T = 4 × max-RTT; this sweep shows why that
region of the knob is the right one.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import seed_list
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.workloads.scenarios import run_initial_holders


def run_idle_threshold(
    thresholds: Sequence[float] = (10.0, 20.0, 40.0, 80.0, 160.0),
    n: int = 100,
    k: int = 4,
    seeds: int = 20,
    rtt: float = 10.0,
) -> SeriesTable:
    """Sweep T for the Figure 6 workload (k initial holders)."""
    table = SeriesTable(
        title=(
            f"Ablation — idle threshold sweep; n={n}, k={k}, RTT={rtt:g} ms, "
            f"{seeds} seeds (paper value: T = 40 ms = 4x RTT)"
        ),
        x_label="idle threshold T (ms)",
        xs=list(thresholds),
    )
    buffering, violations, requests = [], [], []
    for threshold in thresholds:
        buffering_per_seed, violation_total, request_per_seed = [], 0, []
        for seed in seed_list(seeds):
            result = run_initial_holders(
                n, k, seed=seed, idle_threshold=threshold, rtt=rtt
            )
            durations = result.holder_buffering_durations()
            if durations:
                buffering_per_seed.append(mean(durations))
            violation_total += result.simulation.violation_count()
            stats = result.simulation.network.stats
            request_per_seed.append(float(stats.sent_by_type.get("LocalRequest", 0)))
        buffering.append(mean(buffering_per_seed) if buffering_per_seed else float("nan"))
        violations.append(violation_total)
        requests.append(mean(request_per_seed))
    table.add_series("mean holder buffering time (ms)", buffering)
    table.add_series("reliability violations", violations)
    table.add_series("mean local requests per run", requests)
    table.notes.append(
        "small T discards while requests are in flight -> violations and extra"
        " request traffic; large T only adds buffering time"
    )
    return table
