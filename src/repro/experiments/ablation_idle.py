"""Ablation — sensitivity to the idle threshold T (§3.1).

"The choice of T depends on the maximum round trip time within a
region and the confidence interval."  Too small a T discards messages
while requests are still in flight (late requesters find nothing —
with C = 0, a reliability violation); too large a T wastes buffer
space.  The paper fixes T = 4 × max-RTT; this sweep shows why that
region of the knob is the right one.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.workloads.scenarios import run_initial_holders


def trial_idle_threshold(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """Runner trial: one Figure-6-style run at a given idle threshold."""
    result = run_initial_holders(
        int(params["n"]), int(params["k"]), seed=seed,
        idle_threshold=float(params["threshold"]), rtt=float(params["rtt"]),
    )
    durations = result.holder_buffering_durations()
    stats = result.simulation.network.stats
    return {
        "mean_buffering_ms": mean(durations) if durations else None,
        "violations": result.simulation.violation_count(),
        "local_requests": float(stats.sent_by_type.get("LocalRequest", 0)),
    }


def run_idle_threshold(
    thresholds: Sequence[float] = (10.0, 20.0, 40.0, 80.0, 160.0),
    n: int = 100,
    k: int = 4,
    seeds: int = 20,
    rtt: float = 10.0,
) -> SeriesTable:
    """Sweep T for the Figure 6 workload (k initial holders)."""
    table = SeriesTable(
        title=(
            f"Ablation — idle threshold sweep; n={n}, k={k}, RTT={rtt:g} ms, "
            f"{seeds} seeds (paper value: T = 40 ms = 4x RTT)"
        ),
        x_label="idle threshold T (ms)",
        xs=list(thresholds),
    )
    grid = [
        {"n": n, "k": k, "threshold": threshold, "rtt": rtt}
        for threshold in thresholds
    ]
    per_point = run_sweep("ablation_idle_threshold", trial_idle_threshold, grid, seeds)
    buffering, violations, requests = [], [], []
    for runs in per_point:
        buffering_per_seed = [
            run["mean_buffering_ms"] for run in runs
            if run["mean_buffering_ms"] is not None
        ]
        buffering.append(mean(buffering_per_seed) if buffering_per_seed else float("nan"))
        violations.append(sum(run["violations"] for run in runs))
        requests.append(mean([run["local_requests"] for run in runs]))
    table.add_series("mean holder buffering time (ms)", buffering)
    table.add_series("reliability violations", violations)
    table.add_series("mean local requests per run", requests)
    table.notes.append(
        "small T discards while requests are in flight -> violations and extra"
        " request traffic; large T only adds buffering time"
    )
    return table
