"""Ablation — the λ trade-off in remote recovery (§2.2).

λ is the expected number of remote requests a region sends per round
when the entire region missed a message.  Small λ risks rounds in which
*nobody* asks upstream (probability ≈ e^{-λ}), stretching regional
recovery; large λ duplicates remote requests — and every duplicate
repair crossing the WAN link costs bandwidth.

Scenario: a two-region chain; the parent region holds the message, the
entire child region misses it at t = 0 (a *regional loss*).  Per λ we
measure remote requests actually sent, remote repairs crossing the
inter-region link, and the time until the whole child region has
recovered (remote repair + regional re-multicast).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


def trial_lambda(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one full-region-loss recovery at a given λ."""
    region_size = int(params["region_size"])
    horizon = float(params["horizon"])
    hierarchy = chain([region_size, region_size])
    config = RrmpConfig(
        remote_lambda=float(params["lam"]),
        session_interval=None,
        max_recovery_time=horizon,
    )
    simulation = RrmpSimulation(
        hierarchy, config=config, seed=seed,
        latency=HierarchicalLatency(
            hierarchy, inter_one_way=float(params["inter_one_way"])
        ),
    )
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    for node in hierarchy.regions[0].members:
        simulation.members[node].inject_receive(data)
    for node in hierarchy.regions[1].members:
        simulation.members[node].inject_loss_detection(1)
    simulation.run(until=horizon)
    stats = simulation.network.stats
    child = hierarchy.regions[1].members
    recovered = [
        record.time
        for record in simulation.trace.of_kind("member_received")
        if record["node"] in set(child)
    ]
    latencies = simulation.recovery_latencies()
    return {
        "remote_requests": stats.sent_by_type.get("RemoteRequest", 0),
        # Remote repairs = repairs unicast across the link (scope
        # remote/relay) observed as served remote requests.
        "remote_repairs": simulation.trace.count("remote_request_served"),
        "full_recovery_ms": (
            max(recovered) if len(recovered) == len(child) else float("nan")
        ),
        "mean_latency_ms": mean(latencies) if latencies else float("nan"),
    }


def run_lambda_sweep(
    lams: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    region_size: int = 50,
    seeds: int = 30,
    inter_one_way: float = 40.0,
    horizon: float = 3_000.0,
) -> SeriesTable:
    """Sweep λ for a full-region loss and measure the §2.2 trade-off."""
    table = SeriesTable(
        title=(
            f"Ablation — λ sweep (regional loss recovery); two regions of "
            f"{region_size}, inter one-way {inter_one_way:g} ms, {seeds} seeds"
        ),
        x_label="lambda",
        xs=list(lams),
    )
    grid = [
        {"lam": lam, "region_size": region_size,
         "inter_one_way": inter_one_way, "horizon": horizon}
        for lam in lams
    ]
    per_point = run_sweep("ablation_lambda", trial_lambda, grid, seeds)
    remote_requests, remote_repairs, full_recovery, mean_latency = [], [], [], []
    for runs in per_point:
        recover_per_seed = [run["full_recovery_ms"] for run in runs]
        latency_per_seed = [run["mean_latency_ms"] for run in runs]
        remote_requests.append(mean([run["remote_requests"] for run in runs]))
        remote_repairs.append(mean([run["remote_repairs"] for run in runs]))
        full_recovery.append(mean([v for v in recover_per_seed if v == v] or [float("nan")]))
        mean_latency.append(mean([v for v in latency_per_seed if v == v] or [float("nan")]))
    table.add_series("mean remote requests sent", remote_requests)
    table.add_series("mean remote repairs (WAN crossings)", remote_repairs)
    table.add_series("mean time to full region recovery (ms)", full_recovery)
    table.add_series("mean per-member recovery latency (ms)", mean_latency)
    table.notes.append(
        "larger lambda: more duplicate WAN traffic, slightly faster regional recovery"
    )
    return table
