"""Ablation — the λ trade-off in remote recovery (§2.2).

λ is the expected number of remote requests a region sends per round
when the entire region missed a message.  Small λ risks rounds in which
*nobody* asks upstream (probability ≈ e^{-λ}), stretching regional
recovery; large λ duplicates remote requests — and every duplicate
repair crossing the WAN link costs bandwidth.

Scenario: a two-region chain; the parent region holds the message, the
entire child region misses it at t = 0 (a *regional loss*).  Per λ we
measure remote requests actually sent, remote repairs crossing the
inter-region link, and the time until the whole child region has
recovered (remote repair + regional re-multicast).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import seed_list
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


def run_lambda_sweep(
    lams: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    region_size: int = 50,
    seeds: int = 30,
    inter_one_way: float = 40.0,
    horizon: float = 3_000.0,
) -> SeriesTable:
    """Sweep λ for a full-region loss and measure the §2.2 trade-off."""
    table = SeriesTable(
        title=(
            f"Ablation — λ sweep (regional loss recovery); two regions of "
            f"{region_size}, inter one-way {inter_one_way:g} ms, {seeds} seeds"
        ),
        x_label="lambda",
        xs=list(lams),
    )
    remote_requests, remote_repairs, full_recovery, mean_latency = [], [], [], []
    for lam in lams:
        requests_per_seed, repairs_per_seed, recover_per_seed, latency_per_seed = [], [], [], []
        for seed in seed_list(seeds):
            hierarchy = chain([region_size, region_size])
            config = RrmpConfig(
                remote_lambda=lam,
                session_interval=None,
                max_recovery_time=horizon,
            )
            simulation = RrmpSimulation(
                hierarchy, config=config, seed=seed,
                latency=HierarchicalLatency(hierarchy, inter_one_way=inter_one_way),
            )
            data = DataMessage(seq=1, sender=simulation.sender.node_id)
            for node in hierarchy.regions[0].members:
                simulation.members[node].inject_receive(data)
            for node in hierarchy.regions[1].members:
                simulation.members[node].inject_loss_detection(1)
            simulation.run(until=horizon)
            stats = simulation.network.stats
            requests_per_seed.append(stats.sent_by_type.get("RemoteRequest", 0))
            # Remote repairs = repairs unicast across the link (scope
            # remote/relay) observed as served remote requests.
            repairs_per_seed.append(simulation.trace.count("remote_request_served"))
            child = hierarchy.regions[1].members
            recovered = [
                record.time
                for record in simulation.trace.of_kind("member_received")
                if record["node"] in set(child)
            ]
            recover_per_seed.append(
                max(recovered) if len(recovered) == len(child) else float("nan")
            )
            latencies = simulation.recovery_latencies()
            latency_per_seed.append(mean(latencies) if latencies else float("nan"))
        remote_requests.append(mean(requests_per_seed))
        remote_repairs.append(mean(repairs_per_seed))
        full_recovery.append(mean([v for v in recover_per_seed if v == v] or [float("nan")]))
        mean_latency.append(mean([v for v in latency_per_seed if v == v] or [float("nan")]))
    table.add_series("mean remote requests sent", remote_requests)
    table.add_series("mean remote repairs (WAN crossings)", remote_repairs)
    table.add_series("mean time to full region recovery (ms)", full_recovery)
    table.add_series("mean per-member recovery latency (ms)", mean_latency)
    table.notes.append(
        "larger lambda: more duplicate WAN traffic, slightly faster regional recovery"
    )
    return table
