"""Figure 7 — #received vs #buffered as error recovery proceeds.

Paper (§4, zooming into the k = 1 point of Figure 6): "when only a
small percentage of members have received the message, almost all of
them buffer the message.  The number of short-term bufferers decline
rapidly when an overwhelming majority of members (96% in this case)
have received the message."

We rebuild both step curves from the trace (``member_received`` for the
received count; ``buffer_add`` / ``buffer_discard`` for the buffered
count) and emit them on the paper's 5 ms-ish sampling grid.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.timeseries import StepSeries
from repro.workloads.scenarios import run_initial_holders


def trial_coverage_curves(params: Dict[str, object], seed: int) -> Dict[str, List[float]]:
    """Runner trial: one run's #received / #buffered step curves, sampled."""
    result = run_initial_holders(int(params["n"]), int(params["k"]), seed=seed)
    trace = result.simulation.trace
    received = StepSeries()
    buffered = StepSeries()
    received_count = 0
    buffered_count = 0
    for record in trace.records:
        if record.kind == "member_received":
            received_count += 1
            received.record(record.time, received_count)
        elif record.kind == "buffer_add":
            buffered_count += 1
            buffered.record(record.time, buffered_count)
        elif record.kind == "buffer_discard":
            buffered_count -= 1
            buffered.record(record.time, buffered_count)
    xs = []
    received_samples = []
    buffered_samples = []
    t = 0.0
    while t <= float(params["horizon"]) + 1e-9:
        xs.append(t)
        received_samples.append(received.value_at(t))
        buffered_samples.append(buffered.value_at(t))
        t += float(params["sample_dt"])
    return {"xs": xs, "received": received_samples, "buffered": buffered_samples}


def run_fig7(
    n: int = 100,
    k: int = 1,
    seed: int = 0,
    sample_dt: float = 5.0,
    horizon: float = 160.0,
) -> SeriesTable:
    """Regenerate Figure 7: the two curves for one representative run."""
    grid = [{"n": n, "k": k, "sample_dt": sample_dt, "horizon": horizon}]
    (per_seed,) = run_sweep("fig7", trial_coverage_curves, grid, [seed])
    curves = per_seed[0]
    xs = curves["xs"]
    received_samples = curves["received"]
    buffered_samples = curves["buffered"]
    table = SeriesTable(
        title=(
            f"Figure 7 — members received vs members buffering; "
            f"n={n}, k={k}, seed={seed}"
        ),
        x_label="time (ms)",
        xs=xs,
    )
    table.add_series("#received", received_samples)
    table.add_series("#buffered", buffered_samples)
    table.notes.append(
        "paper: #buffered tracks #received until ~96% coverage, then drops rapidly"
    )
    return table
