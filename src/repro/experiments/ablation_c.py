"""Ablation — the C trade-off (§3.2).

"The choice of C reflects a tradeoff between buffer requirements and
recovery latency.  With large C more members buffer an idle message,
and hence an unlucky receiver … will recover the loss faster.  On the
other hand, small C reduces buffer requirements but may lead to longer
recovery latency.  In particular, it is possible that an idle message
is buffered nowhere."

Protocol-level version of Figures 3/4/8 combined: a region receives a
message, the idle threshold passes with no requests (so the coin flips
happen for real), and *then* a downstream remote request arrives.  Per
C we measure the realized long-term copies (buffer cost), the search
latency the late requester pays, and how often the message had vanished
entirely.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.formulas import prob_no_bufferer_binomial
from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


def trial_c_tradeoff(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """Runner trial: one late-request run at a given C."""
    n = int(params["n"])
    request_at = float(params["request_at"])
    hierarchy = chain([n, 1])
    config = RrmpConfig(
        long_term_c=float(params["c"]),
        session_interval=None,
        max_search_rounds=300,
    )
    simulation = RrmpSimulation(
        hierarchy, config=config, seed=seed,
        latency=HierarchicalLatency(hierarchy, inter_one_way=500.0),
    )
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    for node in hierarchy.regions[0].members:
        simulation.members[node].inject_receive(data)
    requester = hierarchy.regions[1].members[0]
    simulation.sim.at(
        request_at, simulation.members[requester].inject_loss_detection, 1
    )
    # Let the idle transition settle, then count surviving copies.
    simulation.run(until=request_at - 1.0)
    copies = simulation.buffering_count(1)
    simulation.run(until=float(params["horizon"]))
    arrival = simulation.trace.first("remote_request_received")
    served = simulation.trace.first("remote_request_served")
    search_time = (
        served.time - arrival.time
        if arrival is not None and served is not None
        else None
    )
    return {"copies": copies, "search_time": search_time}


def run_c_tradeoff(
    cs: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0),
    n: int = 100,
    seeds: int = 30,
    request_at: float = 200.0,
    horizon: float = 1_500.0,
) -> SeriesTable:
    """Sweep C and measure buffer cost vs late-request recovery."""
    table = SeriesTable(
        title=(
            f"Ablation — C trade-off: buffer copies vs late-request latency; "
            f"n={n}, request at t={request_at:g} ms, {seeds} seeds"
        ),
        x_label="C",
        xs=list(cs),
    )
    grid = [
        {"n": n, "c": c, "request_at": request_at, "horizon": horizon} for c in cs
    ]
    per_point = run_sweep("ablation_c_tradeoff", trial_c_tradeoff, grid, seeds)
    mean_copies, mean_search, unserved_counts, analytic_none = [], [], [], []
    for c, runs in zip(cs, per_point):
        search_times = [
            run["search_time"] for run in runs if run["search_time"] is not None
        ]
        mean_copies.append(mean([run["copies"] for run in runs]))
        mean_search.append(mean(search_times) if search_times else float("nan"))
        unserved_counts.append(sum(1 for run in runs if run["search_time"] is None))
        analytic_none.append(100.0 * prob_no_bufferer_binomial(n, c))
    table.add_series("mean long-term copies (buffer cost)", mean_copies)
    table.add_series("mean late-request search time (ms)", mean_search)
    table.add_series("unserved within horizon", unserved_counts)
    table.add_series("analytic P[no bufferer] %", analytic_none)
    table.notes.append(
        "larger C: more buffered copies, faster late recovery, fewer total losses"
    )
    return table
