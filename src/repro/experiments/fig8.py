"""Figure 8 — search time vs number of bufferers.

Paper (§4): "We assume that a remote request arrives at a randomly
chosen member in a region with 100 members.  The simulation is repeated
100 times with different random seeds and the average is taken. …
the search time decreases as the number of bufferers increases.  With
10 bufferers, for example, the average search time is 20 ms (i.e.
twice the round trip time)."  Footnote 5: "The search time is 0 if the
request arrives at a bufferer."
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.epidemic import search_time_estimate
from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.workloads.scenarios import run_search


def trial_search(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one §4 bufferer search (shared by Figures 8 and 9)."""
    n, b = int(params["n"]), int(params["b"])
    result = run_search(n, b, seed=seed)
    if result.search_time is None:
        raise RuntimeError(f"search unserved for n={n}, b={b}, seed={seed}")
    return {"time": result.search_time, "forwards": result.search_forwards}


def run_fig8(
    bs: Sequence[int] = tuple(range(1, 11)),
    n: int = 100,
    seeds: int = 100,
) -> SeriesTable:
    """Regenerate Figure 8: mean search time vs #bufferers."""
    table = SeriesTable(
        title=f"Figure 8 — search time (ms) vs #bufferers; n={n}, {seeds} seeds",
        x_label="#bufferers",
        xs=list(bs),
    )
    per_point = run_sweep(
        "fig8", trial_search, [{"n": n, "b": b} for b in bs], seeds
    )
    mean_times, direct_hits, mean_forwards = [], [], []
    for runs in per_point:
        mean_times.append(mean([run["time"] for run in runs]))
        direct_hits.append(sum(1 for run in runs if run["time"] == 0.0))
        mean_forwards.append(mean([run["forwards"] for run in runs]))
    table.add_series("mean search time (ms)", mean_times)
    table.add_series("model estimate (ms)",
                     [search_time_estimate(n, b) for b in bs])
    table.add_series("direct hits (time=0)", direct_hits)
    table.add_series("mean search hops", mean_forwards)
    table.notes.append("paper: ~45-50 ms at 1 bufferer down to ~20 ms at 10 bufferers")
    return table
