"""Ablation — static vs adaptive repair hierarchies, makespan objective.

The paper fixes the region hierarchy for the whole session; the
makespan literature (PAPERS.md, "Reducing the Makespan in Hierarchical
Reliable Multicast Tree") re-optimizes it online so repair traffic
routes around degraded links.  This ablation runs three repair modes
over the registry's stress scenarios and reports the makespan — time
until the *last* receiver completes — alongside mean recovery latency
and the maintenance overhead the adaptation costs:

* ``tree``     — the RMTP-like static repair-server baseline
  (:mod:`repro.tree.rmtp`): one server per region, fixed parents;
* ``static``   — RRMP with the hierarchy frozen at construction
  (today's default, ``AdaptSpec`` off);
* ``adaptive`` — RRMP plus the :mod:`repro.adapt` subsystem: passive
  link-state estimation and hysteresis-thresholded re-parenting.

Scenarios: ``heterogeneous_regions`` (unequal chain, regional losses —
the slow tail the optimizer can route around), ``wan_burst_loss``
(two-region chain; no alternative parent exists, so adaptive must
match static, a no-regression guard) and ``flash_crowd`` (churn; the
tree baseline runs its traffic without churn, noted on the table,
because :class:`~repro.tree.rmtp.TreeSimulation` has no member
lifecycle).  Adaptive runs execute under the invariant oracle, so the
``adaptive-topology`` invariant audits every re-parent.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.experiments.base import run_sweeps, seed_list
from repro.metrics.makespan import MakespanTracker
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.ipmulticast import RegionCorrelatedOutcome
from repro.net.latency import HierarchicalLatency
from repro.runner import SweepSpec
from repro.scenario.materialize import (
    build_hierarchy,
    outcome_for,
    transport_loss_for,
)
from repro.scenario.registry import get_scenario
from repro.scenario.spec import AdaptSpec, ChurnSpec, ScenarioSpec
from repro.tree.rmtp import TreeSimulation

#: Repair modes compared at every scenario point.
_MODES = ("tree", "static", "adaptive")

#: Registry scenarios the ablation stresses.
_SCENARIOS = ("heterogeneous_regions", "wan_burst_loss", "flash_crowd")


def _base_spec(scenario_name: str, seed: int) -> ScenarioSpec:
    spec = get_scenario(scenario_name)
    return replace(spec, seed=seed)


def _run_tree(spec: ScenarioSpec) -> Dict[str, float]:
    """The static-tree baseline on the spec's topology and loss.

    Churn is dropped (TreeSimulation has no member lifecycle) — the
    table notes it for the churn scenario.
    """
    hierarchy = build_hierarchy(spec.topology)
    tree = TreeSimulation(
        hierarchy,
        seed=spec.seed,
        latency=HierarchicalLatency(
            hierarchy,
            intra_one_way=spec.topology.intra_one_way,
            inter_one_way=spec.topology.inter_one_way,
            inter_up_one_way=spec.topology.inter_up_one_way,
            inter_down_one_way=spec.topology.inter_down_one_way,
        ),
        loss=transport_loss_for(spec.loss),
        outcome=outcome_for(spec.loss),
        timer_factor=spec.policy.timer_factor,
    )
    if spec.loss.kind == "region_correlated":
        tree.outcome = RegionCorrelatedOutcome(
            hierarchy,
            region_loss=spec.loss.region_loss,
            receiver_loss=spec.loss.receiver_loss,
            sender=tree.sender_node,
        )
    makespan = MakespanTracker().attach(tree.trace)
    traffic = spec.traffic
    if traffic.kind != "uniform":  # pragma: no cover - registry guard
        raise ValueError(
            f"tree mode only supports uniform traffic, got {traffic.kind!r}"
        )
    for index in range(traffic.count):
        tree.sim.at(traffic.start + index * traffic.interval,
                    lambda: tree.multicast())
    horizon = spec.measurement.horizon or spec.measurement.duration
    tree.run(until=horizon)
    tree.stop_session()
    latencies = tree.recovery_latencies()
    return {
        "makespan": makespan.session_makespan(),
        "makespan_p90": makespan.summary()["makespan_seq_p90_ms"],
        "mean_recovery": mean(latencies) if latencies else 0.0,
        "violations": 0.0,
        "reparents": 0.0,
        "updates": 0.0,
    }


def _run_rrmp(spec: ScenarioSpec, adaptive: bool,
              update_interval: float, hysteresis: float,
              max_reparents: int) -> Dict[str, float]:
    spec = replace(spec, measurement=replace(spec.measurement, oracle=True))
    if adaptive:
        spec = replace(spec, adapt=AdaptSpec(
            mode="passive",
            update_interval=update_interval,
            hysteresis=hysteresis,
            max_reparents=max_reparents,
        ))
    built = spec.build().run()
    summary = built.summary()
    return {
        "makespan": float(summary.get("makespan_session_ms", 0.0)),
        "makespan_p90": float(summary.get("makespan_seq_p90_ms", 0.0)),
        "mean_recovery": float(summary["mean_recovery_latency_ms"]),
        "violations": float(summary.get("invariant_violations", 0.0)),
        "reparents": float(summary.get("adapt_reparents", 0.0)),
        "updates": float(summary.get("adapt_updates", 0.0)),
    }


def trial_adaptive_tree(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one run at one ``(scenario, mode)`` point."""
    mode = str(params["mode"])
    spec = _base_spec(str(params["scenario"]), seed)
    if mode == "tree":
        return _run_tree(replace(spec, churn=ChurnSpec()))
    return _run_rrmp(
        spec,
        adaptive=(mode == "adaptive"),
        update_interval=float(params["update_interval"]),
        hysteresis=float(params["hysteresis"]),
        max_reparents=int(params["max_reparents"]),
    )


def run_adaptive_tree_ablation(
    scenarios: Sequence[str] = _SCENARIOS,
    seeds: int = 5,
    update_interval: float = 150.0,
    hysteresis: float = 0.1,
    max_reparents: int = 8,
) -> SeriesTable:
    """Compare repair modes per scenario; makespan is the headline."""
    table = SeriesTable(
        title=(
            f"Ablation — static vs adaptive repair hierarchy; "
            f"{seeds} seeds, re-optimize every {update_interval:g} ms, "
            f"hysteresis {hysteresis:g}, budget {max_reparents} re-parents"
        ),
        x_label="scenario",
        xs=list(scenarios),
    )
    grid = [
        {"scenario": scenario, "mode": mode,
         "update_interval": update_interval, "hysteresis": hysteresis,
         "max_reparents": max_reparents}
        for scenario in scenarios
        for mode in _MODES
    ]
    (results,) = run_sweeps([
        SweepSpec("ablation_adaptive_tree", trial_adaptive_tree, grid,
                  seed_list(seeds)),
    ])
    for offset, mode in enumerate(_MODES):
        per_scenario = [
            results[index * len(_MODES) + offset]
            for index in range(len(scenarios))
        ]
        table.add_series(f"{mode}: session makespan (ms)", [
            mean([run["makespan"] for run in runs]) for runs in per_scenario
        ])
        table.add_series(f"{mode}: mean recovery latency (ms)", [
            mean([run["mean_recovery"] for run in runs]) for runs in per_scenario
        ])
        if mode == "adaptive":
            table.add_series("adaptive: re-parents", [
                mean([run["reparents"] for run in runs]) for runs in per_scenario
            ])
            table.add_series("adaptive: invariant violations", [
                sum(run["violations"] for run in runs) for runs in per_scenario
            ])
    table.notes.append(
        "makespan = time from the first delivery to the last delivery in "
        "the session; the adaptive mode re-parents slow regions onto "
        "cheaper (ETX x RTT) parents, which shortens the tail on "
        "heterogeneous_regions; wan_burst_loss has no alternative parent, "
        "so adaptive matching static there is the expected no-op"
    )
    table.notes.append(
        "tree mode runs flash_crowd's traffic without its churn "
        "(the RMTP baseline has no member lifecycle)"
    )
    return table
