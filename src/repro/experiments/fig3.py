"""Figure 3 — distribution of the number of long-term bufferers.

Paper: "The probability that k members buffer an idle message is
e^{-C} C^k / k!" — the Poisson(C) approximation of Binomial(n, C/n) —
plotted for C ∈ {5, 6, 7, 8}.

We regenerate both the analytic curves and a Monte-Carlo estimate that
exercises the *actual mechanism*
(:class:`repro.core.long_term.RandomizedLongTermSelector` coin flips
across a region), so the figure doubles as a validation that the code
implements the math.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.formulas import bufferer_pmf_poisson
from repro.core.long_term import RandomizedLongTermSelector
from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.sim import RandomStreams, Simulator


def sample_bufferer_counts(
    n: int, c: float, trials: int, seed: int = 0
) -> list:
    """Monte-Carlo: per trial, flip the §3.2 coin at each of *n* members."""
    streams = RandomStreams(seed)
    sim = Simulator()
    selector = RandomizedLongTermSelector(
        sim, streams.stream("fig3", "coins"), expected_bufferers=c
    )
    counts = []
    for _ in range(trials):
        counts.append(sum(1 for _member in range(n) if selector.decide(n)))
    return counts


def trial_bufferer_counts(params: Dict[str, object], seed: int) -> Dict[str, List[int]]:
    """Runner trial: one Monte-Carlo batch of §3.2 coin flips."""
    counts = sample_bufferer_counts(
        int(params["n"]), float(params["c"]), int(params["trials"]), seed=seed
    )
    return {"counts": counts}


def run_fig3(
    cs: Sequence[float] = (5.0, 6.0, 7.0, 8.0),
    n: int = 100,
    max_k: int = 20,
    trials: int = 20_000,
    seed: int = 0,
    simulate_c: float = 6.0,
) -> SeriesTable:
    """Regenerate Figure 3.

    Columns: analytic Poisson pmf (%) per C, plus the Monte-Carlo
    estimate for ``simulate_c`` from the real coin-flip mechanism on an
    *n*-member region.
    """
    table = SeriesTable(
        title=f"Figure 3 — P[k long-term bufferers] (%), region n={n}",
        x_label="k",
        xs=list(range(max_k + 1)),
    )
    for c in cs:
        table.add_series(
            f"analytic C={c:g}",
            [100.0 * bufferer_pmf_poisson(c, k) for k in range(max_k + 1)],
        )
    grid = [{"n": n, "c": simulate_c, "trials": trials}]
    (per_seed,) = run_sweep("fig3", trial_bufferer_counts, grid, [seed])
    counts = per_seed[0]["counts"]
    histogram = [0] * (max_k + 1)
    for count in counts:
        if count <= max_k:
            histogram[count] += 1
    table.add_series(
        f"simulated C={simulate_c:g} (n={n}, {trials} trials)",
        [100.0 * h / trials for h in histogram],
    )
    table.notes.append(
        "paper: peak probability ~15-18% at k≈C, curves shift right as C grows"
    )
    return table
