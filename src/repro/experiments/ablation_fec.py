"""Ablation — FEC-based repair vs pure pull recovery (and the RMTP tree).

The two-phase buffer scheme minimizes how long members *hold* messages,
but every loss still costs at least one pull round trip — and a
*regional* loss costs a WAN round trip throttled by λ.  NORM-style
erasure coding attacks the other side of that trade-off: the sender
spends ``r/k`` extra data-plane bandwidth on parity so receivers can
fill gaps locally, without a request.

Scenario: a two-region chain.  The sender's region always holds each
message (the sender keeps its own copy); the child region suffers a
*regional loss* with probability ``region_loss`` per message, so every
recovery must either cross the WAN (λ-throttled remote requests, the
paper's §2.2 path) or decode from parity.  Per ``(k, r, region_loss)``
point we run four systems on identical workloads and seeds:

* ``off`` — pure RRMP (the paper's protocol);
* ``proactive`` — parity multicast as each block of *k* fills;
* ``reactive`` — parity multicast on the first request the sender sees;
* ``tree`` — the RMTP-like repair-server baseline (NACK aggregation up
  a server tree; no FEC), for external calibration.

Measured: mean recovery latency, upstream requests crossing the WAN
(remote requests for RRMP, NACKs for the tree), gaps filled by
decoding, and the parity bytes spent — the overhead that buys the
other columns.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.base import run_sweeps, seed_list
from repro.metrics.fec import summarize_fec
from repro.runner import SweepSpec
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.ipmulticast import RegionCorrelatedOutcome
from repro.net.topology import chain
from repro.scenario.builder import scenario
from repro.tree.rmtp import TreeSimulation

#: RRMP variants compared at every sweep point.
_RRMP_MODES = ("off", "proactive", "reactive")


def _measure_rrmp(
    mode: str,
    k: int,
    r: int,
    region_loss: float,
    region_size: int,
    messages: int,
    interval: float,
    remote_lambda: float,
    seed: int,
    horizon: float,
) -> Dict[str, float]:
    built = (
        scenario("ablation-fec", seed=seed)
        .chain(region_size, region_size)
        .uniform(messages, interval)
        .regional_loss(region=region_loss)
        .fec(mode, block_size=k, parity=r, flush_after=1.0)
        .protocol(
            remote_lambda=remote_lambda, session_interval=50.0,
            max_recovery_time=horizon,
        )
        .measure(horizon=horizon)
        .build()
    )
    simulation = built.simulation
    built.run()
    latencies = simulation.recovery_latencies()
    report = summarize_fec(simulation.trace)
    return {
        "latency": mean(latencies) if latencies else float("nan"),
        "upstream": float(
            simulation.network.stats.sent_by_type.get("RemoteRequest", 0)
        ),
        "fec_recovered": float(report.recovered),
        "parity_bytes": float(report.parity_bytes),
    }


def _measure_tree(
    region_loss: float,
    region_size: int,
    messages: int,
    interval: float,
    seed: int,
    horizon: float,
) -> Dict[str, float]:
    hierarchy = chain([region_size, region_size])
    simulation = TreeSimulation(hierarchy, seed=seed, session_interval=50.0)
    simulation.outcome = RegionCorrelatedOutcome(
        hierarchy, region_loss=region_loss, sender=simulation.sender_node
    )
    for index in range(messages):
        simulation.sim.at(index * interval, simulation.multicast)
    simulation.run(until=horizon)
    latencies = simulation.recovery_latencies()
    return {
        "latency": mean(latencies) if latencies else float("nan"),
        "upstream": float(simulation.network.stats.sent_by_type.get("Nack", 0)),
    }


def trial_fec_rrmp(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one RRMP run at one ``(mode, k, r, loss)`` point."""
    return _measure_rrmp(
        str(params["mode"]), int(params["k"]), int(params["r"]),
        float(params["loss"]), int(params["region_size"]),
        int(params["messages"]), float(params["interval"]),
        float(params["remote_lambda"]), seed, float(params["horizon"]),
    )


def trial_fec_tree(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one RMTP-tree baseline run at one loss rate."""
    return _measure_tree(
        float(params["loss"]), int(params["region_size"]),
        int(params["messages"]), float(params["interval"]),
        seed, float(params["horizon"]),
    )


def run_fec_ablation(
    points: Sequence[Tuple[int, int]] = ((4, 1), (8, 1), (8, 2)),
    loss_rates: Sequence[float] = (0.1, 0.3),
    region_size: int = 25,
    messages: int = 24,
    interval: float = 5.0,
    remote_lambda: float = 4.0,
    seeds: int = 10,
    horizon: float = 4_000.0,
) -> SeriesTable:
    """Sweep ``(k, r, region_loss)`` for each repair system.

    ``points`` are ``(k, r)`` block geometries; ``loss_rates`` are the
    per-message probabilities that the entire child region misses the
    multicast.  All systems see identical workloads per seed.
    """
    xs: List[str] = [
        f"k={k},r={r},p={loss:g}" for k, r in points for loss in loss_rates
    ]
    table = SeriesTable(
        title=(
            f"Ablation — FEC repair vs pull recovery; two regions of "
            f"{region_size}, {messages} messages at {interval:g} ms, "
            f"lambda={remote_lambda:g}, {seeds} seeds"
        ),
        x_label="(k, r, region loss)",
        xs=list(xs),
    )
    columns: Dict[str, List[float]] = {
        "off: mean latency (ms)": [],
        "off: remote requests": [],
        "proactive: mean latency (ms)": [],
        "proactive: remote requests": [],
        "proactive: gaps decoded": [],
        "proactive: parity KB": [],
        "reactive: mean latency (ms)": [],
        "reactive: remote requests": [],
        "tree: mean latency (ms)": [],
        "tree: nacks": [],
    }
    shared = {
        "region_size": region_size, "messages": messages,
        "interval": interval, "horizon": horizon,
    }
    sweep_points = [(k, r, loss) for k, r in points for loss in loss_rates]
    rrmp_grid = [
        {"mode": mode, "k": k, "r": r, "loss": loss,
         "remote_lambda": remote_lambda, **shared}
        for k, r, loss in sweep_points
        for mode in _RRMP_MODES
    ]
    # The tree baseline ignores (k, r); duplicate loss points coalesce
    # into one execution per (loss, seed) inside the runner.
    tree_grid = [{"loss": loss, **shared} for _k, _r, loss in sweep_points]
    seeds_list = seed_list(seeds)
    rrmp_results, tree_results = run_sweeps([
        SweepSpec("ablation_fec", trial_fec_rrmp, rrmp_grid, seeds_list),
        SweepSpec("ablation_fec", trial_fec_tree, tree_grid, seeds_list),
    ])
    for index, (k, r, loss) in enumerate(sweep_points):
        per_mode: Dict[str, List[Dict[str, float]]] = {
            mode: rrmp_results[index * len(_RRMP_MODES) + offset]
            for offset, mode in enumerate(_RRMP_MODES)
        }
        tree_runs: List[Dict[str, float]] = tree_results[index]

        def avg(runs: List[Dict[str, float]], key: str) -> float:
            values = [run[key] for run in runs if run[key] == run[key]]
            return mean(values) if values else float("nan")

        columns["off: mean latency (ms)"].append(avg(per_mode["off"], "latency"))
        columns["off: remote requests"].append(avg(per_mode["off"], "upstream"))
        columns["proactive: mean latency (ms)"].append(
            avg(per_mode["proactive"], "latency")
        )
        columns["proactive: remote requests"].append(
            avg(per_mode["proactive"], "upstream")
        )
        columns["proactive: gaps decoded"].append(
            avg(per_mode["proactive"], "fec_recovered")
        )
        columns["proactive: parity KB"].append(
            avg(per_mode["proactive"], "parity_bytes") / 1024.0
        )
        columns["reactive: mean latency (ms)"].append(
            avg(per_mode["reactive"], "latency")
        )
        columns["reactive: remote requests"].append(
            avg(per_mode["reactive"], "upstream")
        )
        columns["tree: mean latency (ms)"].append(avg(tree_runs, "latency"))
        columns["tree: nacks"].append(avg(tree_runs, "upstream"))
    for name, values in columns.items():
        table.add_series(name, values)
    table.notes.append(
        "proactive FEC trades r/k parity bandwidth for fewer WAN requests "
        "and faster regional recovery; reactive spends parity only on "
        "blocks whose loss a request revealed to the sender — with "
        "randomly-addressed remote requests that signal usually arrives "
        "after pull recovery has already won, so reactive tracks 'off'"
    )
    return table
