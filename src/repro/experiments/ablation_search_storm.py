"""Ablation — randomized search vs multicast-the-request (§3.3).

The paper rejects the obvious alternative to searching: multicast the
remote request in the region and let bufferers reply with a randomized
back-off.  "Because of randomization, it is possible that a message has
become idle and been discarded at one member but is still being
buffered at many other members … If a multicast request is sent in this
case, the back-off period will be too short to suppress duplicate
responses effectively" — a reply storm.

We model the alternative exactly as described: the back-off window is
sized for the *expected idle-state* population (C bufferers), i.e.
``W = C · RTT``; each of the *actual* bufferers draws a uniform delay
in [0, W] and multicasts its reply unless it hears another reply first
(one one-way latency of warning).  When the true bufferer population is
much larger than C — the message not yet idle everywhere — duplicate
replies blow up, while RRMP's randomized search always yields exactly
one "I have the message" reply.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple

from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.workloads.scenarios import run_search


def simulate_multicast_replies(
    n: int,
    actual_bufferers: int,
    backoff_c: float = 6.0,
    rtt: float = 10.0,
    rng: random.Random = random.Random(0),
) -> Tuple[int, float]:
    """One multicast-search round: (#replies multicast, first-reply time).

    The request is multicast at t = 0 and reaches every member one
    one-way latency later.  Each bufferer draws a back-off delay
    uniform in ``[0, C · RTT]``; a bufferer suppresses its reply iff
    another reply's multicast could reach it before its own timer
    fires (one one-way latency after the earliest reply).
    """
    one_way = rtt / 2.0
    window = backoff_c * rtt
    if actual_bufferers <= 0:
        return (0, float("inf"))
    delays = sorted(rng.uniform(0.0, window) for _ in range(actual_bufferers))
    earliest = delays[0]
    replies = sum(1 for delay in delays if delay < earliest + one_way)
    return (replies, one_way + earliest)


def trial_storm(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one multicast-request round plus one randomized search."""
    n = int(params["n"])
    bufferers = int(params["bufferers"])
    rng = random.Random((seed << 16) ^ 0x5EED)
    replies, first = simulate_multicast_replies(
        n, bufferers, backoff_c=float(params["backoff_c"]), rng=rng
    )
    result = run_search(n, bufferers, seed=seed)
    # Search traffic: forwarded hops + the single HaveReply
    # regional multicast (counted as 1 logical message).
    return {
        "replies": float(replies),
        "first_reply_ms": first,
        "search_messages": float(result.search_forwards + 1),
        "search_time_ms": result.search_time or 0.0,
    }


def run_search_vs_multicast(
    buffering_fractions: Sequence[float] = (0.06, 0.1, 0.25, 0.5, 1.0),
    n: int = 100,
    seeds: int = 100,
    backoff_c: float = 6.0,
) -> SeriesTable:
    """Compare duplicate replies and latency across the two mechanisms.

    ``buffering_fractions`` is the fraction of the region still holding
    the message when the request arrives; 0.06 ≈ the intended idle
    steady state (C = 6 of 100), 1.0 = the message just arrived and
    *everyone* still buffers it (the §3.3 storm case).
    """
    table = SeriesTable(
        title=(
            f"Ablation — randomized search vs multicast request; n={n}, "
            f"back-off window C·RTT with C={backoff_c:g}, {seeds} seeds"
        ),
        x_label="buffering fraction",
        xs=list(buffering_fractions),
    )
    grid = [
        {"n": n, "bufferers": max(1, round(fraction * n)), "backoff_c": backoff_c}
        for fraction in buffering_fractions
    ]
    per_point = run_sweep("ablation_search_vs_multicast", trial_storm, grid, seeds)
    multicast_replies, multicast_latency = [], []
    search_messages, search_latency = [], []
    for runs in per_point:
        multicast_replies.append(mean([run["replies"] for run in runs]))
        multicast_latency.append(mean([run["first_reply_ms"] for run in runs]))
        search_messages.append(mean([run["search_messages"] for run in runs]))
        search_latency.append(mean([run["search_time_ms"] for run in runs]))
    table.add_series("multicast: duplicate replies", multicast_replies)
    table.add_series("multicast: first-reply time (ms)", multicast_latency)
    table.add_series("search: messages", search_messages)
    table.add_series("search: time (ms)", search_latency)
    table.notes.append(
        "paper: multicast replies implode when the message is not yet idle everywhere;"
        " randomized search always produces exactly one reply"
    )
    return table
