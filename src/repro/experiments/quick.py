"""The single source of truth for reduced-cost experiment parameters.

``rrmp-experiments run --quick``, ``rrmp-experiments all --quick``, the
smoke tests and CI all read this table, so the quick path cannot drift
between entry points.  Every registered experiment id must have an
entry (enforced by ``tests/experiments/test_cli.py``).
"""

from __future__ import annotations

from typing import Dict

#: Reduced-repetition overrides that make the complete suite finish in
#: seconds instead of minutes.
QUICK_PARAMS: Dict[str, Dict[str, object]] = {
    "fig3": {"trials": 2_000},
    "fig4": {"trials": 2_000},
    "fig6": {"seeds": 5},
    "fig7": {},
    "fig8": {"seeds": 20},
    "fig9": {"ns": (100, 200, 400, 700, 1000), "seeds": 10},
    "ablation_c_tradeoff": {"seeds": 10},
    "ablation_lambda": {"seeds": 10},
    "ablation_search_vs_multicast": {"seeds": 30},
    "ablation_policies": {"seeds": 1, "messages": 15},
    "ablation_hash_vs_random": {"seeds": 15},
    "ablation_idle_threshold": {"seeds": 8},
    "ablation_churn_handoff": {"seeds": 10},
    "ablation_scaling": {"ns": (25, 50, 100, 200), "seeds": 4},
    "ablation_fec": {"points": ((4, 1), (8, 2)), "loss_rates": (0.3,), "seeds": 3},
    "ablation_congestion": {"loads": (0.5, 2.0), "seeds": 2},
    "ablation_adaptive_tree": {"seeds": 2},
    "ablation_workloads": {"seeds": 2},
}


def quick_params_for(experiment_id: str) -> Dict[str, object]:
    """The quick overrides for one experiment (a fresh copy)."""
    return dict(QUICK_PARAMS.get(experiment_id, {}))
