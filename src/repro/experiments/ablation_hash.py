"""Ablation — randomized vs deterministic bufferer selection (§3.4).

"We believe the choice between them reflects a trade-off between
network traffic and computation overhead.  Under the deterministic
algorithm, a receiver can find out the set of bufferers for a message
by applying the hash function to the network address of each member in
its region.  This avoids the latency and network traffic incurred
during the search process but has higher computation overhead."

Both schemes hold the same expected number of copies (C).  A late
remote request arrives after the region has gone idle; we measure how
each scheme locates a copy: the randomized scheme searches (network
hops, RTT-scale latency), the deterministic scheme hashes every known
address (CPU) and forwards once.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import run_sweep
from repro.hashing.deterministic import (
    HashBuffererPolicy,
    hash_evaluations,
    reset_hash_counter,
)
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.net.latency import HierarchicalLatency
from repro.net.topology import chain
from repro.protocol.config import RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation


def _one_run(use_hash: bool, n: int, c: float, seed: int,
             request_at: float, horizon: float) -> Dict[str, float]:
    hierarchy = chain([n, 1])
    config = RrmpConfig(long_term_c=c, session_interval=None, max_search_rounds=300)
    policy_factory = (lambda _node: HashBuffererPolicy(c)) if use_hash else None
    simulation = RrmpSimulation(
        hierarchy, config=config, seed=seed,
        latency=HierarchicalLatency(hierarchy, inter_one_way=500.0),
        policy_factory=policy_factory,
    )
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    for node in hierarchy.regions[0].members:
        simulation.members[node].inject_receive(data)
    requester = hierarchy.regions[1].members[0]
    simulation.sim.at(request_at, simulation.members[requester].inject_loss_detection, 1)
    reset_hash_counter()
    simulation.run(until=horizon)
    arrival = simulation.trace.first("remote_request_received")
    served = simulation.trace.first("remote_request_served")
    locate_time = (
        served.time - arrival.time
        if arrival is not None and served is not None
        else float("nan")
    )
    search_hops = simulation.trace.count("search_forwarded")
    lookup_hops = simulation.trace.count("lookup_forwarded")
    return {
        "locate time (ms)": locate_time,
        "locate messages": float(search_hops + lookup_hops),
        "hash evaluations": float(hash_evaluations()),
        "copies held": float(simulation.buffering_count(1)),
        "unserved": 0.0 if served is not None else 1.0,
    }


def trial_hash_vs_random(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one late-request locate under one selection scheme."""
    return _one_run(
        bool(params["use_hash"]), int(params["n"]), float(params["c"]),
        seed, float(params["request_at"]), float(params["horizon"]),
    )


def run_hash_vs_random(
    n: int = 100,
    c: float = 6.0,
    seeds: int = 50,
    request_at: float = 200.0,
    horizon: float = 1_500.0,
) -> SeriesTable:
    """Compare the two bufferer-selection schemes head to head."""
    metric_names = [
        "locate time (ms)", "locate messages", "hash evaluations",
        "copies held", "unserved",
    ]
    schemes = (("randomized + search (RRMP)", False),
               ("deterministic hash (NGC'99)", True))
    grid = [
        {"use_hash": use_hash, "n": n, "c": c,
         "request_at": request_at, "horizon": horizon}
        for _label, use_hash in schemes
    ]
    per_point = run_sweep("ablation_hash_vs_random", trial_hash_vs_random, grid, seeds)
    rows: Dict[str, List[float]] = {name: [] for name in metric_names}
    labels = [label for label, _use_hash in schemes]
    for per_seed in per_point:
        for name in metric_names:
            values = [run[name] for run in per_seed if run[name] == run[name]]
            rows[name].append(mean(values) if values else float("nan"))
    table = SeriesTable(
        title=(
            f"Ablation — randomized vs deterministic bufferer selection; "
            f"n={n}, C={c:g}, request at t={request_at:g} ms, {seeds} seeds"
        ),
        x_label="scheme",
        xs=labels,
    )
    for name in metric_names:
        table.add_series(name, rows[name])
    table.notes.append(
        "hash scheme: ~n hash evaluations and 1 forward; randomized: a few"
        " network hops and no per-member hashing (the §3.4 trade-off)"
    )
    return table
