"""Figure 4 — probability that *no* member long-term-buffers a message.

Paper: "it is possible that an idle message is buffered nowhere due to
randomization.  The probability of this happening decreases
exponentially with C … When C = 6, for example, the probability is
only 0.25%."

Regenerated three ways: the Poisson limit ``e^{-C}``, the exact
Binomial value ``(1 - C/n)^n`` for a finite region, and a Monte-Carlo
run of the real coin-flip mechanism.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.formulas import prob_no_bufferer, prob_no_bufferer_binomial
from repro.experiments.base import run_sweep
from repro.experiments.fig3 import trial_bufferer_counts
from repro.metrics.report import SeriesTable


def run_fig4(
    cs: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    n: int = 100,
    trials: int = 20_000,
    seed: int = 0,
) -> SeriesTable:
    """Regenerate Figure 4 (probabilities in %)."""
    table = SeriesTable(
        title=f"Figure 4 — P[no long-term bufferer] (%), region n={n}",
        x_label="C",
        xs=list(cs),
    )
    table.add_series("poisson e^-C", [100.0 * prob_no_bufferer(c) for c in cs])
    table.add_series(
        f"binomial (1-C/n)^n, n={n}",
        [100.0 * prob_no_bufferer_binomial(n, c) for c in cs],
    )
    grid = [{"n": n, "c": c, "trials": trials} for c in cs]
    per_point = run_sweep("fig4", trial_bufferer_counts, grid, [seed])
    simulated = []
    for per_seed in per_point:
        counts = per_seed[0]["counts"]
        simulated.append(100.0 * sum(1 for count in counts if count == 0) / trials)
    table.add_series(f"simulated ({trials} trials)", simulated)
    table.notes.append("paper: ~37% at C=1 decreasing exponentially to 0.25% at C=6")
    return table
