"""Experiment harness (system S12 in DESIGN.md).

One module per paper figure (fig3, fig4, fig6-fig9), one per ablation,
a registry keyed by experiment id and a CLI
(``rrmp-experiments`` / ``python -m repro.experiments``).
"""

from repro.experiments.ablation_c import run_c_tradeoff
from repro.experiments.ablation_churn import run_churn_handoff
from repro.experiments.ablation_hash import run_hash_vs_random
from repro.experiments.ablation_idle import run_idle_threshold
from repro.experiments.ablation_lambda import run_lambda_sweep
from repro.experiments.ablation_policies import run_policy_comparison
from repro.experiments.ablation_scaling import run_scaling
from repro.experiments.ablation_search_storm import run_search_vs_multicast
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    experiment_ids,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_c_tradeoff",
    "run_churn_handoff",
    "run_experiment",
    "run_fig3",
    "run_fig4",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_hash_vs_random",
    "run_idle_threshold",
    "run_lambda_sweep",
    "run_policy_comparison",
    "run_scaling",
    "run_search_vs_multicast",
]
