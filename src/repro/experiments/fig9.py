"""Figure 9 — search time vs region size (bufferers fixed at 10).

Paper (§4): "when the region size increases by a factor of 10, the
corresponding search time only increases by a factor of 2.2.  With 1000
members, the percentage of bufferers is only 1%.  Compared with the
case where every member buffers the message, our algorithm reduces the
amount of buffer space by a factor of 100."
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.epidemic import search_time_estimate
from repro.experiments.base import run_sweep
from repro.experiments.fig8 import trial_search
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean


def run_fig9(
    ns: Sequence[int] = tuple(range(100, 1001, 100)),
    bufferers: int = 10,
    seeds: int = 100,
) -> SeriesTable:
    """Regenerate Figure 9: mean search time vs region size."""
    table = SeriesTable(
        title=(
            f"Figure 9 — search time (ms) vs region size; "
            f"{bufferers} bufferers, {seeds} seeds"
        ),
        x_label="region size",
        xs=list(ns),
    )
    per_point = run_sweep(
        "fig9", trial_search, [{"n": n, "b": bufferers} for n in ns], seeds
    )
    mean_times = [mean([run["time"] for run in runs]) for runs in per_point]
    table.add_series("mean search time (ms)", mean_times)
    table.add_series("model estimate (ms)",
                     [search_time_estimate(n, bufferers) for n in ns])
    baseline = mean_times[0] if mean_times and mean_times[0] > 0 else 1.0
    table.add_series("growth vs smallest n", [t / baseline for t in mean_times])
    table.add_series("buffer-space saving vs buffer-everywhere",
                     [n / bufferers for n in ns])
    table.notes.append(
        "paper: 10x region growth -> only ~2.2x search time; 100x buffer saving at n=1000"
    )
    return table
