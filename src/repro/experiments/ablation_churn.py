"""Ablation — buffer handoff under churn (§3.2).

"When a receiver voluntarily leaves the group, it transfers each
message in its long-term buffer to a randomly selected receiver in the
region.  This avoids the situation where all long-term bufferers decide
to leave the group, making a message loss unrecoverable."

Scenario: a region receives a message and goes idle, leaving ≈C
long-term copies.  Every member that holds a copy then departs —
gracefully (handoff) in one arm, by crashing (no handoff) in the other.
A late downstream request then probes whether the message survived.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import run_sweep
from repro.metrics.report import SeriesTable
from repro.metrics.stats import mean
from repro.protocol.messages import DataMessage
from repro.scenario.builder import scenario


def _one_run(graceful: bool, n: int, c: float, seed: int,
             depart_at: float, request_at: float, horizon: float) -> Dict[str, float]:
    built = (
        scenario("ablation-churn", seed=seed)
        .chain(n, 1)
        .latency(inter=500.0)
        .policy("two_phase", c=c)
        .protocol(session_interval=None, max_search_rounds=200)
        .measure(horizon=horizon)
        .build()
    )
    simulation = built.simulation
    hierarchy = simulation.hierarchy
    data = DataMessage(seq=1, sender=simulation.sender.node_id)
    region_nodes = list(hierarchy.regions[0].members)
    for node in region_nodes:
        simulation.members[node].inject_receive(data)

    def depart_bufferers() -> None:
        # Whoever ended up long-term-buffering the message leaves (or
        # crashes) now, staggered 10 ms apart so graceful handoffs can
        # land on members that might themselves be about to leave.
        holders = [
            node for node in region_nodes
            if simulation.members[node].alive and simulation.members[node].is_buffering(1)
        ]
        for index, node in enumerate(holders):
            member = simulation.members[node]
            action = member.leave if graceful else member.crash
            simulation.sim.after(index * 10.0, lambda act=action: act())

    simulation.sim.at(depart_at, depart_bufferers)
    requester = hierarchy.regions[1].members[0]
    simulation.sim.at(request_at, simulation.members[requester].inject_loss_detection, 1)
    built.run()
    served = simulation.trace.first("remote_request_served")
    return {
        "message survived (%)": 100.0 if served is not None else 0.0,
        "handoff transfers": float(simulation.trace.count("handoff_sent")),
        "copies after churn": float(simulation.buffering_count(1)),
    }


def trial_churn(params: Dict[str, object], seed: int) -> Dict[str, float]:
    """Runner trial: one departure-mode run (graceful leave vs crash)."""
    return _one_run(
        bool(params["graceful"]), int(params["n"]), float(params["c"]),
        seed, float(params["depart_at"]), float(params["request_at"]),
        float(params["horizon"]),
    )


def run_churn_handoff(
    n: int = 50,
    c: float = 4.0,
    seeds: int = 30,
    depart_at: float = 100.0,
    request_at: float = 600.0,
    horizon: float = 2_000.0,
) -> SeriesTable:
    """Graceful leave (handoff) vs crash: does the message survive?"""
    metric_names = ["message survived (%)", "handoff transfers", "copies after churn"]
    modes = (("graceful leave + handoff", True), ("crash (no handoff)", False))
    grid = [
        {"graceful": graceful, "n": n, "c": c, "depart_at": depart_at,
         "request_at": request_at, "horizon": horizon}
        for _label, graceful in modes
    ]
    per_point = run_sweep("ablation_churn_handoff", trial_churn, grid, seeds)
    rows: Dict[str, List[float]] = {name: [] for name in metric_names}
    labels = [label for label, _graceful in modes]
    for per_seed in per_point:
        for name in metric_names:
            rows[name].append(mean([run[name] for run in per_seed]))
    table = SeriesTable(
        title=(
            f"Ablation — handoff under churn; n={n}, C={c:g}, all bufferers "
            f"depart at t={depart_at:g} ms, late request at t={request_at:g} ms, "
            f"{seeds} seeds"
        ),
        x_label="departure mode",
        xs=labels,
    )
    for name in metric_names:
        table.add_series(name, rows[name])
    table.notes.append(
        "handoff keeps the copy count intact across departures; crashes lose"
        " every copy and the late request goes unserved"
    )
    return table
