"""Deterministic hash-based bufferer selection (baseline; paper ref [11]).

The authors' earlier scheme (Ozkasap, van Renesse, Birman, Xiao —
"Efficient buffering in reliable multicast protocols", NGC 1999):
every member applies a hash to ``(its network address, the message id)``
and buffers the message iff the hash selects it.  A member missing the
message applies the *same* hash to every address it knows, obtaining
the bufferer set directly — no search traffic, at the cost of O(n) hash
evaluations (§3.4 frames the trade-off as network traffic vs
computation overhead).

§3.4 also notes the drawback RRMP's randomized scheme fixes: a
deterministic mapping cannot re-home a leaver's buffering duty ("It is
not clear how this can be done with a deterministic algorithm"), which
the churn experiments demonstrate.

The hash is SHA-256 based, so selection is stable across processes and
platforms — a property the original relies on (requester and bufferer
must agree without communicating).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.core.policies import BufferPolicy
from repro.net.topology import NodeId
from repro.protocol.messages import DataMessage, Seq

#: Number of hash evaluations performed, by consumer label.  The §3.4
#: "computation overhead" metric; reset per experiment via
#: :func:`reset_hash_counter`.
_HASH_EVALUATIONS = {"total": 0}


def reset_hash_counter() -> None:
    """Zero the global hash-evaluation counter (per-experiment)."""
    _HASH_EVALUATIONS["total"] = 0


def hash_evaluations() -> int:
    """Hash evaluations since the last reset."""
    return _HASH_EVALUATIONS["total"]


def hash_unit(member: NodeId, seq: Seq) -> float:
    """Uniform-[0,1) hash of (member address, message id)."""
    _HASH_EVALUATIONS["total"] += 1
    digest = hashlib.sha256(f"bufferer:{member}:{seq}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def is_selected(member: NodeId, seq: Seq, expected_bufferers: float, region_size: int) -> bool:
    """Whether the hash selects *member* to buffer message *seq*.

    Threshold C/n, mirroring the randomized scheme's expectation so the
    two policies hold the same expected number of copies.
    """
    if region_size <= 0:
        return False
    threshold = min(1.0, expected_bufferers / region_size)
    return hash_unit(member, seq) < threshold


def bufferers_for(
    seq: Seq,
    members: Sequence[NodeId],
    expected_bufferers: float,
) -> List[NodeId]:
    """The full bufferer set for *seq* — what a requester computes.

    Costs one hash evaluation per known member (the §3.4 computation
    overhead); returns members in hash order so requesters probe the
    same bufferer first and requests coalesce.
    """
    region_size = len(members)
    selected = [
        (hash_unit(member, seq), member)
        for member in members
    ]
    threshold = min(1.0, expected_bufferers / region_size) if region_size else 0.0
    chosen = sorted((unit, member) for unit, member in selected if unit < threshold)
    return [member for _unit, member in chosen]


class HashBuffererPolicy(BufferPolicy):
    """Buffer a message iff the deterministic hash selects this member.

    Selected members keep the message for the whole session (the NGC'99
    scheme has no feedback phase); unselected members do not buffer at
    all, so they cannot serve even fresh local requests — the trade-off
    against RRMP's short-term phase shows up as longer local-recovery
    latency in the comparison experiments.
    """

    def __init__(self, expected_bufferers: float = 6.0) -> None:
        super().__init__()
        if expected_bufferers < 0:
            raise ValueError(f"expected_bufferers must be >= 0, got {expected_bufferers!r}")
        self.expected_bufferers = expected_bufferers

    def on_receive(self, data: DataMessage) -> None:
        now = self.host.sim.now
        if data.seq in self.buffer:
            return
        if is_selected(self.host.node_id, data.seq, self.expected_bufferers,
                       self.host.region_size()):
            self.buffer.add(data, now)
            self.host.trace.emit(now, "buffer_add", node=self.host.node_id, seq=data.seq)

    def locate_bufferers(self, seq: Seq, members: Sequence[NodeId]) -> List[NodeId]:
        """Requester-side direct lookup of the bufferer set (§3.4).

        The member state machine consults this instead of running the
        randomized search when the policy provides it.
        """
        return bufferers_for(seq, members, self.expected_bufferers)
