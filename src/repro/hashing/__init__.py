"""Deterministic hash-based bufferer selection (system S5; ref [11]).

The authors' earlier NGC'99 scheme, reproduced as the §3.4 comparison
baseline: hash-selected bufferers, requester-side direct lookup, no
search traffic, O(n) hash computation, and no story for churn handoff.
"""

from repro.hashing.deterministic import (
    HashBuffererPolicy,
    bufferers_for,
    hash_evaluations,
    hash_unit,
    is_selected,
    reset_hash_counter,
)

__all__ = [
    "HashBuffererPolicy",
    "bufferers_for",
    "hash_evaluations",
    "hash_unit",
    "is_selected",
    "reset_hash_counter",
]
