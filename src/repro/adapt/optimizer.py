"""Online repair-tree re-optimizer (makespan objective).

Every ``update_interval`` ms the optimizer re-evaluates the parent
assignment of each region against the link-state table.  The predicted
contribution of a region to the session makespan is the summed
``etx · rtt`` edge cost along its repair path to the root; the region
whose path is currently most expensive is considered first (the
makespan bottleneck).  A candidate parent is adopted only when it cuts
the region's predicted path cost by more than the ``hysteresis``
fraction — the ETX-thresholded update rule of the MTP design cited in
PAPERS.md — and at most one re-parent is applied per pass, with a hard
session budget (``max_reparents``), so tree-maintenance churn stays
bounded no matter how noisy the estimates get.

Re-parenting mutates ``Region.parent_id`` in place; the recovery
protocol re-reads parent membership every remote round, so in-flight
recoveries redirect to the new parent on their next round without any
extra signalling.  Every applied change is validated
(:meth:`Hierarchy.validate`) and emitted as a ``tree_reparent`` trace
record, which the ``adaptive-topology`` oracle invariant audits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.adapt.linkstate import LinkStateEstimator
from repro.net.topology import Hierarchy, RegionId
from repro.sim import PeriodicTask, Simulator, TraceLog


class TreeOptimizer:
    """Periodically re-parent regions to shrink predicted makespan."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: Hierarchy,
        linkstate: LinkStateEstimator,
        trace: TraceLog,
        update_interval: float = 250.0,
        hysteresis: float = 0.1,
        max_reparents: int = 8,
        cooldown_passes: int = 3,
    ) -> None:
        if update_interval <= 0:
            raise ValueError(f"update_interval must be > 0, got {update_interval!r}")
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis!r}")
        if max_reparents < 0:
            raise ValueError(f"max_reparents must be >= 0, got {max_reparents!r}")
        self.sim = sim
        self.hierarchy = hierarchy
        self.linkstate = linkstate
        self.trace = trace
        self.hysteresis = hysteresis
        self.max_reparents = max_reparents
        #: A freshly-moved region sits out this many passes before it
        #: may move again — link estimates for its new edge need time
        #: to accumulate, and without the cool-down a region can flap
        #: between two similarly-priced parents as samples trickle in.
        self.cooldown_passes = cooldown_passes
        #: Optimization passes run so far.
        self.update_count = 0
        #: Re-parent events applied so far (never exceeds the budget).
        self.reparent_count = 0
        self._last_moved: Dict[RegionId, int] = {}
        self._task = PeriodicTask(sim, update_interval, self._update)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic optimization passes."""
        self._task.start()

    def stop(self) -> None:
        """Stop ticking (idempotent)."""
        self._task.stop()

    @property
    def running(self) -> bool:
        """Whether optimization passes are scheduled."""
        return self._task.running

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def path_costs(self) -> Dict[RegionId, float]:
        """Predicted repair-path cost to the root for every region.

        The cost of a region is the sum of ``edge_cost`` over each
        parent hop on its way to a root region.  Roots cost 0.
        """
        costs: Dict[RegionId, float] = {}

        def cost_of(region_id: RegionId) -> float:
            if region_id in costs:
                return costs[region_id]
            parent = self.hierarchy.regions[region_id].parent_id
            if parent is None:
                value = 0.0
            else:
                value = self.linkstate.edge_cost(region_id, parent) + cost_of(parent)
            costs[region_id] = value
            return value

        for region_id in sorted(self.hierarchy.regions):
            cost_of(region_id)
        return costs

    def _ancestry_ids(self, region_id: RegionId) -> List[RegionId]:
        chain: List[RegionId] = []
        current: Optional[RegionId] = region_id
        while current is not None:
            chain.append(current)
            current = self.hierarchy.regions[current].parent_id
        return chain

    # ------------------------------------------------------------------
    # Optimization pass
    # ------------------------------------------------------------------
    def _update(self) -> None:
        self.update_count += 1
        if self.reparent_count >= self.max_reparents:
            return
        costs = self.path_costs()
        # Bottleneck first: the most expensive repair path bounds the
        # predicted makespan, so improving it pays the most.
        candidates_order = sorted(
            (rid for rid, region in self.hierarchy.regions.items()
             if region.parent_id is not None),
            key=lambda rid: (-costs[rid], rid),
        )
        for region_id in candidates_order:
            last = self._last_moved.get(region_id)
            if last is not None and self.update_count - last < self.cooldown_passes:
                continue
            move = self._best_move(region_id, costs)
            if move is None:
                continue
            new_parent, predicted = move
            self._apply(region_id, new_parent, costs[region_id], predicted)
            return  # at most one re-parent per pass

    def _best_move(
        self, region_id: RegionId, costs: Dict[RegionId, float]
    ) -> Optional[tuple]:
        region = self.hierarchy.regions[region_id]
        current_cost = costs[region_id]
        threshold = current_cost * (1.0 - self.hysteresis)
        best: Optional[tuple] = None
        for candidate_id in sorted(self.hierarchy.regions):
            if candidate_id == region_id or candidate_id == region.parent_id:
                continue
            candidate = self.hierarchy.regions[candidate_id]
            if not candidate.members:
                continue  # an empty region cannot serve repairs
            # Acyclicity: the new parent must not descend from us.
            if region_id in self._ancestry_ids(candidate_id):
                continue
            predicted = self.linkstate.edge_cost(region_id, candidate_id) + costs[candidate_id]
            if predicted >= threshold:
                continue
            if best is None or predicted < best[1]:
                best = (candidate_id, predicted)
        return best

    def _apply(
        self,
        region_id: RegionId,
        new_parent: RegionId,
        previous_cost: float,
        predicted_cost: float,
    ) -> None:
        region = self.hierarchy.regions[region_id]
        old_parent = region.parent_id
        region.parent_id = new_parent
        self.hierarchy.validate()
        self.reparent_count += 1
        self._last_moved[region_id] = self.update_count
        self.trace.emit(
            self.sim.now,
            "tree_reparent",
            region=region_id,
            old_parent=old_parent,
            new_parent=new_parent,
            previous_cost=previous_cost,
            predicted_cost=predicted_cost,
        )
