"""Passive per region-pair link-quality estimation.

The optimizer needs to know, for any pair of regions, roughly how lossy
and how slow the path between them is.  Rather than introducing probe
messages, :class:`LinkStateEstimator` subscribes to trace records the
protocol already emits and interprets them as link samples:

* ``remote_request_received`` — a request crossed the requester→server
  region edge, so that pair saw a *successful* transmission;
* ``recovery_completed`` (with remote rounds) — the recovery latency,
  spread over the remote rounds taken, is an RTT sample for the
  member's parent edge; extra rounds beyond the first count as loss
  samples (each timed-out round is a request or repair that did not
  make it);
* ``reliability_violation`` — the parent edge failed a whole recovery,
  the strongest loss signal available;
* ``cc_feedback`` — the congestion-control path already carries a
  receiver's smoothed loss estimate and RTT to the sender, which is a
  direct sample for the receiver-region ↔ root-region pair.

Quality is summarized ETX-style: ``etx = 1 / (1 - loss)²`` (expected
transmissions for a request/repair exchange), and the routing cost of
an edge is ``etx · rtt`` — the expected time to complete one recovery
exchange across it.  Pairs never sampled fall back to a configurable
RTT prior so the optimizer can still reason about edges no repair has
crossed yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.topology import Hierarchy, RegionId
from repro.sim.tracing import TraceLog, TraceRecord

#: Loss estimates are clamped below 1.0 so ETX stays finite.
_MAX_LOSS = 0.99

#: Cap on ETX so one dead edge cannot dominate every path sum.
_MAX_ETX = 100.0

PairKey = Tuple[RegionId, RegionId]


def pair_key(a: RegionId, b: RegionId) -> PairKey:
    """Canonical undirected key for a region pair."""
    return (a, b) if a <= b else (b, a)


@dataclass
class PairState:
    """EWMA link state for one (undirected) region pair."""

    loss: float = 0.0
    rtt_ms: Optional[float] = None
    samples: int = 0

    def observe_loss(self, sample: float, alpha: float) -> None:
        """Fold in a loss sample (0.0 = success, 1.0 = failure)."""
        if self.samples == 0:
            self.loss = sample
        else:
            self.loss = alpha * sample + (1.0 - alpha) * self.loss
        self.samples += 1

    def observe_rtt(self, rtt_ms: float, alpha: float) -> None:
        """Fold in an RTT sample (ms)."""
        if self.rtt_ms is None:
            self.rtt_ms = rtt_ms
        else:
            self.rtt_ms = alpha * rtt_ms + (1.0 - alpha) * self.rtt_ms

    def etx(self) -> float:
        """Expected transmissions for a request/repair exchange."""
        loss = min(self.loss, _MAX_LOSS)
        return min(_MAX_ETX, 1.0 / ((1.0 - loss) ** 2))


@dataclass
class LinkStateEstimator:
    """Passive region-pair link-state table fed by a :class:`TraceLog`.

    ``default_rtt_ms`` is the prior for unsampled pairs — scenarios set
    it to one inter-region RTT so untested edges look like typical WAN
    hops rather than free ones.
    """

    hierarchy: Hierarchy
    ewma_alpha: float = 0.2
    default_rtt_ms: float = 80.0
    pairs: Dict[PairKey, PairState] = field(default_factory=dict)

    def attach(self, trace: TraceLog) -> "LinkStateEstimator":
        """Subscribe to the trace kinds that carry link samples."""
        trace.subscribe(self._on_remote_request, kind="remote_request_received")
        trace.subscribe(self._on_recovery_completed, kind="recovery_completed")
        trace.subscribe(self._on_violation, kind="reliability_violation")
        trace.subscribe(self._on_cc_feedback, kind="cc_feedback")
        return self

    # ------------------------------------------------------------------
    # Queries (what the optimizer consumes)
    # ------------------------------------------------------------------
    def state(self, a: RegionId, b: RegionId) -> PairState:
        """The (possibly empty) state for a region pair."""
        return self.pairs.setdefault(pair_key(a, b), PairState())

    def etx(self, a: RegionId, b: RegionId) -> float:
        """ETX estimate for the pair (1.0 when never sampled)."""
        existing = self.pairs.get(pair_key(a, b))
        return existing.etx() if existing is not None else 1.0

    def rtt_ms(self, a: RegionId, b: RegionId) -> float:
        """RTT estimate for the pair, falling back to the prior."""
        existing = self.pairs.get(pair_key(a, b))
        if existing is not None and existing.rtt_ms is not None:
            return existing.rtt_ms
        return self.default_rtt_ms

    def edge_cost(self, a: RegionId, b: RegionId) -> float:
        """Predicted cost of one recovery exchange across the edge.

        ``etx · rtt``: the expected number of transmissions times the
        time each attempt takes.  This is the per-hop term the
        optimizer sums along repair paths to predict makespan.
        """
        return self.etx(a, b) * self.rtt_ms(a, b)

    # ------------------------------------------------------------------
    # Trace subscribers
    # ------------------------------------------------------------------
    def _region_of(self, node: int) -> Optional[RegionId]:
        if not self.hierarchy.contains(node):
            return None  # departed under churn between emit and here
        return self.hierarchy.region_id_of(node)

    def _parent_of(self, region_id: RegionId) -> Optional[RegionId]:
        region = self.hierarchy.regions.get(region_id)
        return region.parent_id if region is not None else None

    def _on_remote_request(self, record: TraceRecord) -> None:
        server = self._region_of(record["node"])
        requester = self._region_of(record["requester"])
        if server is None or requester is None or server == requester:
            return
        self.state(server, requester).observe_loss(0.0, self.ewma_alpha)

    def _on_recovery_completed(self, record: TraceRecord) -> None:
        remote_rounds = record.get("remote_rounds", 0)
        if not remote_rounds:
            return
        region = self._region_of(record["node"])
        if region is None:
            return
        parent = self._parent_of(region)
        if parent is None:
            return
        state = self.state(region, parent)
        state.observe_rtt(record["latency"] / remote_rounds, self.ewma_alpha)
        # Rounds beyond the first are timed-out attempts: loss samples.
        state.observe_loss(0.0, self.ewma_alpha)
        for _ in range(min(remote_rounds - 1, 8)):
            state.observe_loss(1.0, self.ewma_alpha)

    def _on_violation(self, record: TraceRecord) -> None:
        region = self._region_of(record["node"])
        if region is None:
            return
        parent = self._parent_of(region)
        if parent is None:
            return
        self.state(region, parent).observe_loss(1.0, self.ewma_alpha)

    def _on_cc_feedback(self, record: TraceRecord) -> None:
        region = self._region_of(record["receiver"])
        if region is None:
            return
        # Feedback flows receiver → sender; the sender sits in a root
        # region (no parent).  Attribute the sample to the receiver's
        # edge toward that root along its ancestry.
        parent = self._parent_of(region)
        if parent is None:
            return
        state = self.state(region, parent)
        state.observe_loss(min(1.0, max(0.0, record["loss"])), self.ewma_alpha)
        state.observe_rtt(record["rtt"], self.ewma_alpha)
