"""Adaptive repair-hierarchy subsystem (makespan-aware routing).

The paper's protocol assumes a *fixed* region hierarchy; this package
makes it a live structure.  :class:`LinkStateEstimator` passively
derives per region-pair link quality (EWMA loss + RTT, ETX-style cost)
from the trace records the protocol already emits — no new message
types.  :class:`TreeOptimizer` periodically re-evaluates parent
assignments against a predicted-makespan objective and re-parents a
region only when the improvement clears a hysteresis threshold, with a
hard budget on re-parent events so maintenance stays bounded (the
ETX-thresholded update scheme of the MTP design cited in PAPERS.md).

Both pieces are constructed by the scenario layer only when
``ScenarioSpec.adapt`` is enabled, so default runs schedule no extra
events and every existing trace digest is unchanged.
"""

from repro.adapt.linkstate import LinkStateEstimator, PairState
from repro.adapt.optimizer import TreeOptimizer

__all__ = ["LinkStateEstimator", "PairState", "TreeOptimizer"]
