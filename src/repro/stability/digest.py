"""History digests for stability detection.

Stability-detection protocols (Guo & Rhee [8], cited in §1/§3.1) have
members "periodically exchange message history information about the
set of messages they have received".  We represent a member's history
compactly as its *low watermark* — the largest sequence number below
which it has received everything — which is sufficient for the
single-sender, dense-sequence setting RRMP targets.

A :class:`WatermarkTable` accumulates the watermarks a member has
learned about the group; the minimum over the *full* membership is the
stability frontier.  Needing full membership knowledge is precisely the
drawback the paper contrasts RRMP against (§1: "no single receiver has
complete membership information about the group").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.net.packet import KIND_CONTROL
from repro.net.topology import NodeId
from repro.protocol.messages import CONTROL_WIRE_SIZE, Seq


@dataclass(frozen=True)
class WatermarkDigest:
    """Gossiped history summary: "*member* has everything up to *watermark*".

    Carries the sender's whole known table piggybacked (``table``) so
    gossip converges in O(log n) rounds rather than O(n).
    """

    member: NodeId
    watermark: Seq
    table: tuple = ()  # tuple of (member, watermark) pairs
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


class WatermarkTable:
    """Per-member view of everyone's low watermark."""

    def __init__(self) -> None:
        self._watermarks: Dict[NodeId, Seq] = {}

    def update(self, member: NodeId, watermark: Seq) -> bool:
        """Merge one observation (keep the max); returns True if it advanced."""
        current = self._watermarks.get(member)
        if current is None or watermark > current:
            self._watermarks[member] = watermark
            return True
        return False

    def merge(self, pairs: Iterable) -> bool:
        """Merge a gossiped table; returns True if anything advanced."""
        advanced = False
        for member, watermark in pairs:
            if self.update(member, watermark):
                advanced = True
        return advanced

    def get(self, member: NodeId) -> Optional[Seq]:
        """Known watermark of *member*, or ``None``."""
        return self._watermarks.get(member)

    def as_pairs(self) -> tuple:
        """The table as a gossip-able tuple of pairs."""
        return tuple(sorted(self._watermarks.items()))

    def stability_frontier(self, group: Iterable[NodeId]) -> Seq:
        """Messages ≤ this seq are stable: received by every *group* member.

        Any member we have no watermark for pins the frontier at 0 —
        without full-group information nothing can be declared stable,
        which is the conservative (and correct) behaviour.
        """
        frontier: Optional[Seq] = None
        for member in group:
            watermark = self._watermarks.get(member, 0)
            if frontier is None or watermark < frontier:
                frontier = watermark
        return frontier if frontier is not None else 0
