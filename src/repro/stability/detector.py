"""Gossip-based stability detection and its buffer policy (baseline [8]).

Each member periodically gossips its low watermark (plus its whole
known table) to a few random group members.  When the minimum watermark
across the *entire group* advances, messages below it are stable —
received everywhere — and can be discarded.

This is the baseline the paper positions itself against (§1, §3.1,
conclusion): it only ever discards genuinely-stable messages (no
reliability risk), but it

* requires complete group membership knowledge,
* costs continuous control traffic (counted by the harness), and
* holds *every* message at *every* member until global stability,
  which in a heterogeneous WAN is gated by the slowest region.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.buffer import DISCARD_STABLE
from repro.core.policies import BufferPolicy
from repro.net.topology import NodeId
from repro.protocol.member import RrmpMember
from repro.protocol.messages import DataMessage, Seq
from repro.sim import PeriodicTask
from repro.stability.digest import WatermarkDigest, WatermarkTable


class StabilityBufferPolicy(BufferPolicy):
    """Buffer everything until the stability detector clears it."""

    def on_receive(self, data: DataMessage) -> None:
        self.buffer.add(data, self.host.sim.now)
        self.host.trace.emit(self.host.sim.now, "buffer_add",
                             node=self.host.node_id, seq=data.seq)

    def notify_stable(self, frontier: Seq) -> int:
        """Discard every buffered message with seq ≤ *frontier*.

        Returns the number of messages discarded.
        """
        now = self.host.sim.now
        discarded = 0
        for seq in list(self.buffer.seqs()):
            if seq <= frontier:
                entry = self.buffer.discard(seq, now, DISCARD_STABLE)
                if entry is not None:
                    discarded += 1
                    self.host.trace.emit(
                        now, "buffer_discard", node=self.host.node_id, seq=seq,
                        reason=DISCARD_STABLE, was_long_term=False,
                        duration=now - entry.receive_time,
                    )
        return discarded


class StabilityAgent:
    """The gossip side of stability detection, attached to one member.

    The agent shares the member's network endpoint (via the member's
    ``extra_handlers`` hook), so digest traffic flows through the same
    simulated network and is counted in the same traffic statistics as
    protocol messages — that is what makes the overhead comparison
    against RRMP meaningful.
    """

    def __init__(
        self,
        member: RrmpMember,
        group_provider: Callable[[], Sequence[NodeId]],
        gossip_interval: float = 50.0,
        fanout: int = 2,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.member = member
        self.group_provider = group_provider
        self.fanout = fanout
        self.table = WatermarkTable()
        self.stable_frontier: Seq = 0
        self._rng = member.streams.stream("stability", member.node_id)
        member.extra_handlers[WatermarkDigest] = self._on_digest
        self._task = PeriodicTask(member.sim, gossip_interval, self._gossip)
        self._task.start(phase=gossip_interval * self._rng.random())

    def stop(self) -> None:
        """Stop gossiping (member left or simulation tear-down)."""
        self._task.stop()

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def _own_watermark(self) -> Seq:
        return self.member.gap.contiguous_prefix()

    def _gossip(self) -> None:
        if not self.member.alive:
            self._task.stop()
            return
        watermark = self._own_watermark()
        self.table.update(self.member.node_id, watermark)
        digest = WatermarkDigest(
            member=self.member.node_id,
            watermark=watermark,
            table=self.table.as_pairs(),
        )
        peers = [n for n in self.group_provider() if n != self.member.node_id]
        if not peers:
            return
        targets = self._rng.sample(peers, min(self.fanout, len(peers)))
        for target in targets:
            self.member.network.unicast(self.member.node_id, target, digest)
        self._check_stability()

    def _on_digest(self, digest: WatermarkDigest) -> None:
        advanced = self.table.update(digest.member, digest.watermark)
        advanced |= self.table.merge(digest.table)
        if advanced:
            self._check_stability()

    def _check_stability(self) -> None:
        frontier = self.table.stability_frontier(self.group_provider())
        if frontier <= self.stable_frontier:
            return
        self.stable_frontier = frontier
        self.member.trace.emit(
            self.member.sim.now, "stability_advanced",
            node=self.member.node_id, frontier=frontier,
        )
        notify = getattr(self.member.policy, "notify_stable", None)
        if notify is not None:
            notify(frontier)


def attach_stability(
    members: List[RrmpMember],
    gossip_interval: float = 50.0,
    fanout: int = 2,
) -> List[StabilityAgent]:
    """Attach a stability agent to every member of a simulation.

    The group-provider closes over the live hierarchy, so members that
    leave stop gating stability.  Members should have been built with
    :class:`StabilityBufferPolicy` for discards to actually happen.
    """
    if not members:
        return []
    hierarchy = members[0].hierarchy
    provider = lambda: hierarchy.nodes  # noqa: E731 - tiny closure
    return [
        StabilityAgent(member, provider, gossip_interval=gossip_interval, fanout=fanout)
        for member in members
    ]
