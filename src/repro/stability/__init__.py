"""Stability-detection baseline (system S6 in DESIGN.md; paper ref [8]).

Members periodically gossip low-watermark history digests; a message is
discarded only once it is known to be received by the entire group.
Safe but membership-hungry and traffic-hungry — the contrast class for
RRMP's feedback-based scheme.
"""

from repro.stability.detector import (
    StabilityAgent,
    StabilityBufferPolicy,
    attach_stability,
)
from repro.stability.digest import WatermarkDigest, WatermarkTable

__all__ = [
    "StabilityAgent",
    "StabilityBufferPolicy",
    "WatermarkDigest",
    "WatermarkTable",
    "attach_stability",
]
