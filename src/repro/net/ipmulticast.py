"""IP-multicast outcome models (which receivers the initial multicast reaches).

The paper's §4 evaluation "simulate[s] the outcome of an IP multicast by
randomly selecting a subset of members to hold a message initially".
:class:`MulticastOutcome` captures that abstraction: given a message and
the group, it returns the set of receivers the unreliable IP multicast
actually reaches.  Everything downstream (loss detection, recovery,
buffering) is the protocol's job.

This is the documented substitution for real IP multicast: we model the
*per-receiver outcome distribution* rather than routers and DVMRP trees,
which is exactly the fidelity level the paper itself evaluates at.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence, Set

from repro.net.topology import Hierarchy, NodeId


class MulticastOutcome(ABC):
    """Strategy deciding which group members receive an IP multicast."""

    @abstractmethod
    def holders(self, seq: int, group: Sequence[NodeId], rng: random.Random) -> Set[NodeId]:
        """Receivers that get message *seq* from the initial multicast."""


class PerfectOutcome(MulticastOutcome):
    """Every member receives every multicast (no initial loss)."""

    def holders(self, seq: int, group: Sequence[NodeId], rng: random.Random) -> Set[NodeId]:
        return set(group)


class FixedHolders(MulticastOutcome):
    """An explicit holder set, the same for every message (tests)."""

    def __init__(self, holders: Iterable[NodeId]) -> None:
        self._holders = set(holders)

    def holders(self, seq: int, group: Sequence[NodeId], rng: random.Random) -> Set[NodeId]:
        return self._holders & set(group)


class FixedHolderCount(MulticastOutcome):
    """Exactly *k* uniformly-chosen members hold each message.

    This is the paper's Figure 6/7 workload generator ("randomly
    selecting a subset of members to hold a message initially").
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.k = k

    def holders(self, seq: int, group: Sequence[NodeId], rng: random.Random) -> Set[NodeId]:
        members = list(group)
        if self.k >= len(members):
            return set(members)
        return set(rng.sample(members, self.k))


class BernoulliOutcome(MulticastOutcome):
    """Each receiver independently misses a message with ``loss_rate``."""

    def __init__(self, loss_rate: float) -> None:
        if not 0 <= loss_rate <= 1:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate!r}")
        self.loss_rate = loss_rate

    def holders(self, seq: int, group: Sequence[NodeId], rng: random.Random) -> Set[NodeId]:
        return {member for member in group if rng.random() >= self.loss_rate}


class RegionCorrelatedOutcome(MulticastOutcome):
    """Whole regions miss a message with ``region_loss`` (a *regional
    loss*, repairable only via remote recovery); surviving regions lose
    receivers independently with ``receiver_loss`` (*local losses*).

    The sender's region never suffers a regional loss: the sender holds
    its own message, so at least one copy exists in that region.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        region_loss: float = 0.0,
        receiver_loss: float = 0.0,
        sender: Optional[NodeId] = None,
    ) -> None:
        for name, p in (("region_loss", region_loss), ("receiver_loss", receiver_loss)):
            if not 0 <= p <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        self.hierarchy = hierarchy
        self.region_loss = region_loss
        self.receiver_loss = receiver_loss
        self.sender = sender

    def holders(self, seq: int, group: Sequence[NodeId], rng: random.Random) -> Set[NodeId]:
        sender_region = (
            self.hierarchy.region_id_of(self.sender) if self.sender is not None else None
        )
        lost_regions = set()
        for region_id in sorted(self.hierarchy.regions):
            if region_id == sender_region:
                continue
            if rng.random() < self.region_loss:
                lost_regions.add(region_id)
        result: Set[NodeId] = set()
        for member in group:
            if self.hierarchy.region_id_of(member) in lost_regions:
                continue
            if member != self.sender and rng.random() < self.receiver_loss:
                continue
            result.add(member)
        return result
