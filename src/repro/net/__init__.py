"""Network substrate (system S2 in DESIGN.md).

Regions and the error-recovery hierarchy (:mod:`repro.net.topology`),
one-way latency models (:mod:`repro.net.latency`), loss models
(:mod:`repro.net.loss`), the packet-level transport
(:mod:`repro.net.transport`) and IP-multicast outcome models
(:mod:`repro.net.ipmulticast`).
"""

from repro.net.ipmulticast import (
    BernoulliOutcome,
    FixedHolderCount,
    FixedHolders,
    MulticastOutcome,
    PerfectOutcome,
    RegionCorrelatedOutcome,
)
from repro.net.latency import (
    ConstantLatency,
    HierarchicalLatency,
    JitteredLatency,
    LatencyModel,
    PairwiseLatency,
)
from repro.net.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    ReceiverSetLoss,
    RegionCorrelatedLoss,
)
from repro.net.packet import KIND_CONTROL, KIND_DATA, Packet
from repro.net.topology import (
    Hierarchy,
    NodeId,
    Region,
    RegionId,
    TopologyError,
    balanced_tree,
    chain,
    single_region,
    star,
)
from repro.net.transport import Endpoint, Network, NetworkStats

__all__ = [
    "BernoulliLoss",
    "BernoulliOutcome",
    "ConstantLatency",
    "Endpoint",
    "FixedHolderCount",
    "FixedHolders",
    "GilbertElliottLoss",
    "Hierarchy",
    "HierarchicalLatency",
    "JitteredLatency",
    "KIND_CONTROL",
    "KIND_DATA",
    "LatencyModel",
    "LossModel",
    "MulticastOutcome",
    "Network",
    "NetworkStats",
    "NoLoss",
    "NodeId",
    "Packet",
    "PairwiseLatency",
    "PerfectOutcome",
    "Region",
    "RegionCorrelatedLoss",
    "RegionCorrelatedOutcome",
    "RegionId",
    "ReceiverSetLoss",
    "TopologyError",
    "balanced_tree",
    "chain",
    "single_region",
    "star",
]
