"""The simulated network: unicast and multicast delivery with latency/loss.

:class:`Network` connects protocol endpoints (anything with an
``on_packet(packet)`` method) through a :class:`~repro.net.latency.LatencyModel`
and an optional :class:`~repro.net.loss.LossModel`.  All traffic is
counted in :class:`NetworkStats`, which the experiment harness reads to
report overhead (e.g. RRMP's claim of lower traffic than stability
detection).

A multicast is modelled as an independent delivery per receiver — the
standard abstraction for IP multicast over a dissemination tree, where
each receiver observes its own delay and loss outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.net.latency import LatencyModel
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet, payload_kind, payload_size, payload_type_name
from repro.net.topology import NodeId
from repro.sim import RandomStreams, Simulator, TraceLog


class Endpoint(Protocol):
    """Anything that can receive packets from the network."""

    def on_packet(self, packet: Packet) -> None:
        """Handle a delivered packet."""
        ...


@dataclass
class NetworkStats:
    """Aggregate traffic counters maintained by :class:`Network`."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    #: Sends addressed to a destination with no registered endpoint
    #: (the node left, crashed, or never existed).  A subset of
    #: ``dropped``, counted separately so a misrouted deployment is
    #: distinguishable from transport loss.
    send_dropped: int = 0
    bytes_sent: int = 0
    sent_by_type: Dict[str, int] = field(default_factory=dict)
    bytes_by_type: Dict[str, int] = field(default_factory=dict)
    sent_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_send(self, type_name: str, kind: str, size: int) -> None:
        """Count one transmission attempt."""
        self.sent += 1
        self.bytes_sent += size
        self.sent_by_type[type_name] = self.sent_by_type.get(type_name, 0) + 1
        self.bytes_by_type[type_name] = self.bytes_by_type.get(type_name, 0) + size
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1

    def control_messages(self) -> int:
        """Total control-plane transmissions."""
        return self.sent_by_kind.get("control", 0)

    def data_messages(self) -> int:
        """Total data-plane transmissions."""
        return self.sent_by_kind.get("data", 0)


class Network:
    """Delivers payloads between registered endpoints via the simulator.

    Parameters
    ----------
    sim:
        The event engine that provides time and scheduling.
    latency:
        One-way delay model.
    loss:
        Drop model; defaults to :class:`~repro.net.loss.NoLoss` (the
        paper's assumption for requests and repairs).
    streams:
        RNG factory; the network draws from the ``("net", "loss")``
        substream, so loss outcomes never perturb protocol randomness.
    trace:
        Optional trace log; emits ``packet_sent`` / ``packet_dropped`` /
        ``send_dropped`` / ``packet_delivered`` records when provided.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        loss: Optional[LossModel] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.loss = loss if loss is not None else NoLoss()
        bind_clock = getattr(self.loss, "bind_clock", None)
        if bind_clock is not None:
            bind_clock(sim)  # rate-sensitive models need a time source
        self._loss_rng = (streams or RandomStreams(0)).stream("net", "loss")
        self.trace = trace
        self.stats = NetworkStats()
        self._endpoints: Dict[NodeId, Endpoint] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, endpoint: Endpoint) -> None:
        """Attach *endpoint* so it can receive packets addressed to it."""
        self._endpoints[node_id] = endpoint

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node (packets in flight to it are silently dropped)."""
        self._endpoints.pop(node_id, None)

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether *node_id* currently has an attached endpoint."""
        return node_id in self._endpoints

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def unicast(self, src: NodeId, dst: NodeId, payload: Any) -> Optional[Packet]:
        """Send *payload* from *src* to *dst*.

        Returns the scheduled :class:`Packet`, or ``None`` if the loss
        model dropped it.  Sending to an unregistered destination counts
        as a send but delivers nothing (the node left or crashed).
        """
        return self._send(src, dst, payload, group=None)

    def multicast(
        self,
        src: NodeId,
        dsts: Iterable[NodeId],
        payload: Any,
        group: str = "group",
        include_sender: bool = False,
    ) -> int:
        """Fan *payload* out to every node in *dsts*.

        Returns the number of deliveries actually scheduled (excluding
        losses).  ``include_sender=False`` skips *src* itself, matching
        a host that does not loop back its own multicast.
        """
        # Give region-correlated models a fresh coin for this fan-out.
        new_message = getattr(self.loss, "new_message", None)
        if new_message is not None:
            new_message()
        scheduled = 0
        # Same-tick batching: consecutive deliveries of one fan-out that
        # share a deliver_time (the common case under constant-latency
        # models) ride a single engine event instead of one heap entry
        # per receiver.  Only *adjacent* equal times are merged, so the
        # relative delivery order is exactly what per-packet events
        # would have produced.
        batch: List[Packet] = []
        batch_time = 0.0
        for dst in dsts:
            if dst == src and not include_sender:
                continue
            packet = self._send(src, dst, payload, group=group, schedule=False)
            if packet is None:
                continue
            scheduled += 1
            if batch and packet.deliver_time != batch_time:
                self._schedule_delivery(batch)
                batch = []
            batch.append(packet)
            batch_time = packet.deliver_time
        if batch:
            self._schedule_delivery(batch)
        return scheduled

    def _schedule_delivery(self, packets: List[Packet]) -> None:
        """Schedule one engine event for a run of same-time packets."""
        if len(packets) == 1:
            packet = packets[0]
            self.sim.at(packet.deliver_time, self._deliver, packet)
        else:
            self.sim.at(packets[0].deliver_time, self._deliver_batch, tuple(packets))

    def _deliver_batch(self, packets: Tuple[Packet, ...]) -> None:
        for packet in packets:
            self._deliver(packet)

    def _send(self, src: NodeId, dst: NodeId, payload: Any, group: Optional[str],
              schedule: bool = True) -> Optional[Packet]:
        kind = payload_kind(payload)
        size = payload_size(payload)
        type_name = payload_type_name(payload)
        self.stats.record_send(type_name, kind, size)
        now = self.sim.now
        if self.trace is not None:
            self.trace.emit(now, "packet_sent", src=src, dst=dst,
                            type=type_name, packet_kind=kind)
        if dst not in self._endpoints:
            # The destination already left or crashed: the send happens
            # (and is accounted) but the packet goes nowhere — checked
            # before the latency model, which cannot place a node the
            # hierarchy no longer contains.  The loss RNG is untouched
            # so surviving traffic keeps its sample path.  Counted under
            # its own kind: a `send_dropped` is a membership fact, not a
            # loss-model outcome, and deployments watch it to catch
            # stale directories.
            self.stats.dropped += 1
            self.stats.send_dropped += 1
            if self.trace is not None:
                self.trace.emit(now, "send_dropped", src=src, dst=dst,
                                type=type_name, reason="unregistered")
            return None
        if self.loss.is_lost(src, dst, kind, self._loss_rng):
            self.stats.dropped += 1
            if self.trace is not None:
                self.trace.emit(now, "packet_dropped", src=src, dst=dst, type=type_name)
            return None
        delay = self.latency.one_way(src, dst)
        packet = Packet(
            src=src,
            dst=dst,
            payload=payload,
            kind=kind,
            send_time=now,
            deliver_time=now + delay,
            multicast_group=group,
        )
        if schedule:
            self.sim.at(packet.deliver_time, self._deliver, packet)
        return packet

    def _deliver(self, packet: Packet) -> None:
        endpoint = self._endpoints.get(packet.dst)
        if endpoint is None:
            # Destination departed while the packet was in flight.
            self.stats.dropped += 1
            return
        self.stats.delivered += 1
        if self.trace is not None:
            self.trace.emit(
                packet.deliver_time,
                "packet_delivered",
                src=packet.src,
                dst=packet.dst,
                type=payload_type_name(packet.payload),
            )
        endpoint.on_packet(packet)

    # ------------------------------------------------------------------
    # Timer helpers
    # ------------------------------------------------------------------
    def rtt(self, src: NodeId, dst: NodeId) -> float:
        """Round-trip estimate protocol timers use (paper §2.2)."""
        return self.latency.rtt(src, dst)
