"""Latency models: one-way delays between nodes.

The paper's §4 evaluation fixes the round-trip time between any two
members of a region at 10 ms, i.e. 5 ms one-way
(:class:`HierarchicalLatency` with the default ``intra_one_way=5.0``).
Inter-region latency "can be much larger than the latency within a
region" (§3.2); the hierarchical model scales one-way delay with the
region-hop distance so WAN experiments exhibit exactly that gap.

Protocol timers use :meth:`LatencyModel.rtt`, mirroring the paper's
"sets a timer according to its estimated round trip time".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Tuple

from repro.net.topology import Hierarchy, NodeId


class LatencyModel(ABC):
    """One-way latency between a source and destination node, in ms."""

    @abstractmethod
    def one_way(self, src: NodeId, dst: NodeId) -> float:
        """One-way delay for a packet from *src* to *dst*."""

    def rtt(self, src: NodeId, dst: NodeId) -> float:
        """Round-trip estimate used for protocol timers."""
        return self.one_way(src, dst) + self.one_way(dst, src)


class ConstantLatency(LatencyModel):
    """The same one-way delay between every pair of nodes."""

    def __init__(self, one_way_ms: float = 5.0) -> None:
        if one_way_ms < 0:
            raise ValueError(f"latency must be >= 0, got {one_way_ms!r}")
        self.one_way_ms = one_way_ms

    def one_way(self, src: NodeId, dst: NodeId) -> float:
        return self.one_way_ms


class HierarchicalLatency(LatencyModel):
    """Latency scaling with the hierarchy distance between regions.

    * same region: ``intra_one_way`` (default 5 ms → 10 ms RTT, §4);
    * different regions: ``inter_one_way`` per region hop, so a request
      to the parent region costs one hop and recovery across the tree
      costs proportionally more.

    ``inter_up_one_way`` / ``inter_down_one_way`` optionally price the
    two directions of an inter-region hop separately (netem-style
    asymmetry): hops from the source's region toward the closest common
    ancestor use the *up* delay, hops from the ancestor down to the
    destination's region the *down* delay.  Left ``None``, both fall
    back to the symmetric ``inter_one_way`` and the historical
    ``inter_one_way * hops`` formula is used verbatim.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        intra_one_way: float = 5.0,
        inter_one_way: float = 40.0,
        inter_up_one_way: float | None = None,
        inter_down_one_way: float | None = None,
    ) -> None:
        if intra_one_way < 0 or inter_one_way < 0:
            raise ValueError("latencies must be >= 0")
        for value in (inter_up_one_way, inter_down_one_way):
            if value is not None and value < 0:
                raise ValueError("latencies must be >= 0")
        self.hierarchy = hierarchy
        self.intra_one_way = intra_one_way
        self.inter_one_way = inter_one_way
        self.inter_up_one_way = inter_up_one_way
        self.inter_down_one_way = inter_down_one_way

    @property
    def asymmetric(self) -> bool:
        """Whether directional per-hop delays are configured."""
        return (
            self.inter_up_one_way is not None
            or self.inter_down_one_way is not None
        )

    def one_way(self, src: NodeId, dst: NodeId) -> float:
        hops = self.hierarchy.region_distance(src, dst)
        if hops == 0:
            return self.intra_one_way
        if not self.asymmetric:
            return self.inter_one_way * hops
        up_delay = (
            self.inter_up_one_way if self.inter_up_one_way is not None
            else self.inter_one_way
        )
        down_delay = (
            self.inter_down_one_way if self.inter_down_one_way is not None
            else self.inter_one_way
        )
        up, down = self.hierarchy.region_hop_split(src, dst)
        return up * up_delay + down * down_delay


class JitteredLatency(LatencyModel):
    """Wrap a base model with multiplicative uniform jitter.

    Each packet's delay is ``base * U(1 - jitter, 1 + jitter)`` drawn
    from a dedicated RNG stream, modelling queueing variance without
    changing timer estimates (``rtt`` still reports the base value, as a
    real protocol's smoothed estimator would).
    """

    def __init__(self, base: LatencyModel, jitter: float, rng: random.Random) -> None:
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self.base = base
        self.jitter = jitter
        self._rng = rng

    def one_way(self, src: NodeId, dst: NodeId) -> float:
        factor = self._rng.uniform(1 - self.jitter, 1 + self.jitter)
        return self.base.one_way(src, dst) * factor

    def rtt(self, src: NodeId, dst: NodeId) -> float:
        return self.base.rtt(src, dst)


class PairwiseLatency(LatencyModel):
    """Explicit per-pair one-way latencies, with a default for the rest.

    Useful for adversarial topologies in tests (one distant straggler in
    an otherwise tight region).
    """

    def __init__(self, default_one_way: float = 5.0) -> None:
        self.default_one_way = default_one_way
        self._pairs: Dict[Tuple[NodeId, NodeId], float] = {}

    def set_pair(self, src: NodeId, dst: NodeId, one_way_ms: float, symmetric: bool = True) -> None:
        """Set the delay for *src*→*dst* (and the reverse if symmetric)."""
        self._pairs[(src, dst)] = one_way_ms
        if symmetric:
            self._pairs[(dst, src)] = one_way_ms

    def one_way(self, src: NodeId, dst: NodeId) -> float:
        return self._pairs.get((src, dst), self.default_one_way)
