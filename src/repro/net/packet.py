"""Packet envelope and the payload protocol.

The transport wraps every protocol message in a :class:`Packet` that
records addressing and timing.  Payloads declare two attributes the
network model consults:

* ``kind`` — ``"data"`` for packets that carry message bodies (original
  multicasts, repairs, handoffs) and ``"control"`` for everything else
  (requests, session messages, digests).  Loss models key off this, so
  the paper's "requests and repairs are not lost" assumption is the
  default configuration rather than a hard-coded rule.
* ``wire_size`` — nominal bytes on the wire, used for traffic-overhead
  accounting when comparing against stability-detection baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net.topology import NodeId

KIND_DATA = "data"
KIND_CONTROL = "control"


@dataclass(frozen=True)
class Packet:
    """One point-to-point delivery (multicasts become one per receiver)."""

    src: NodeId
    dst: NodeId
    payload: Any
    kind: str
    send_time: float
    deliver_time: float
    multicast_group: Optional[str] = None

    @property
    def latency(self) -> float:
        """One-way delay this packet experienced."""
        return self.deliver_time - self.send_time


def payload_kind(payload: Any) -> str:
    """Classification of a payload (defaults to control)."""
    return getattr(payload, "kind", KIND_CONTROL)


def payload_size(payload: Any) -> int:
    """Nominal wire size of a payload in bytes (default 64)."""
    return int(getattr(payload, "wire_size", 64))


def payload_type_name(payload: Any) -> str:
    """Short type name used for per-message-type traffic accounting."""
    return type(payload).__name__
