"""Regions and the error-recovery hierarchy (paper §2.1).

The paper's system model groups receivers into *local regions* and
organizes regions into a hierarchy by distance from the sender.  Each
receiver knows the membership of its own region and of its *parent
region* (its least upstream region).  Receivers in the sender's region
have no parent region.

:class:`Region` is mutable (members join and leave); :class:`Hierarchy`
owns the regions and answers the membership queries the protocol needs:
"who are my neighbours?", "who is in my parent region?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

NodeId = int
RegionId = int


class TopologyError(ValueError):
    """Raised on malformed hierarchy construction or unknown ids."""


@dataclass
class Region:
    """A local region: an id, an optional parent region, and its members.

    ``members`` preserves insertion order so random selection by index
    is deterministic given a seeded RNG.
    """

    region_id: RegionId
    parent_id: Optional[RegionId] = None
    members: List[NodeId] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Current number of members in the region."""
        return len(self.members)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._member_set()

    def _member_set(self) -> set:
        # Regions are small (tens to ~1000 members); a set view built on
        # demand keeps the common path (iteration / indexing) cheap and
        # the mutation path simple.
        return set(self.members)


class Hierarchy:
    """The error-recovery hierarchy: all regions plus node→region lookup.

    Build one with :func:`single_region`, :func:`chain`, :func:`star` or
    :func:`balanced_tree`, or assemble it manually via :meth:`add_region`
    and :meth:`add_member`.
    """

    def __init__(self) -> None:
        self.regions: Dict[RegionId, Region] = {}
        self._node_region: Dict[NodeId, RegionId] = {}
        self._next_node_id: NodeId = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_region(self, region_id: RegionId, parent_id: Optional[RegionId] = None) -> Region:
        """Create an empty region.  The parent region must already exist."""
        if region_id in self.regions:
            raise TopologyError(f"region {region_id} already exists")
        if parent_id is not None and parent_id not in self.regions:
            raise TopologyError(f"parent region {parent_id} does not exist")
        region = Region(region_id=region_id, parent_id=parent_id)
        self.regions[region_id] = region
        return region

    def add_member(self, region_id: RegionId, node_id: Optional[NodeId] = None) -> NodeId:
        """Add a node to *region_id*; auto-assigns an id when not given."""
        if region_id not in self.regions:
            raise TopologyError(f"region {region_id} does not exist")
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._node_region:
            raise TopologyError(f"node {node_id} already placed")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        self.regions[region_id].members.append(node_id)
        self._node_region[node_id] = region_id
        return node_id

    def add_members(self, region_id: RegionId, count: int) -> List[NodeId]:
        """Add *count* auto-numbered nodes to *region_id*."""
        return [self.add_member(region_id) for _ in range(count)]

    def remove_member(self, node_id: NodeId) -> None:
        """Remove a node (on leave or crash)."""
        region_id = self._node_region.pop(node_id, None)
        if region_id is None:
            raise TopologyError(f"node {node_id} not in topology")
        self.regions[region_id].members.remove(node_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        """All node ids across all regions (region order, then insertion)."""
        result: List[NodeId] = []
        for region_id in sorted(self.regions):
            result.extend(self.regions[region_id].members)
        return result

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return len(self._node_region)

    def contains(self, node_id: NodeId) -> bool:
        """Whether *node_id* is currently placed in some region."""
        return node_id in self._node_region

    def region_of(self, node_id: NodeId) -> Region:
        """The region containing *node_id*."""
        try:
            return self.regions[self._node_region[node_id]]
        except KeyError:
            raise TopologyError(f"node {node_id} not in topology") from None

    def region_id_of(self, node_id: NodeId) -> RegionId:
        """The region id containing *node_id*."""
        try:
            return self._node_region[node_id]
        except KeyError:
            raise TopologyError(f"node {node_id} not in topology") from None

    def parent_region_of(self, node_id: NodeId) -> Optional[Region]:
        """The node's parent region (its least upstream region), if any."""
        region = self.region_of(node_id)
        if region.parent_id is None:
            return None
        return self.regions[region.parent_id]

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Other members of the node's own region."""
        region = self.region_of(node_id)
        return [member for member in region.members if member != node_id]

    def parent_members(self, node_id: NodeId) -> List[NodeId]:
        """Members of the node's parent region (empty if no parent)."""
        parent = self.parent_region_of(node_id)
        return list(parent.members) if parent is not None else []

    def same_region(self, a: NodeId, b: NodeId) -> bool:
        """Whether two nodes share a region."""
        return self.region_id_of(a) == self.region_id_of(b)

    def region_distance(self, a: NodeId, b: NodeId) -> int:
        """Number of parent hops separating the regions of *a* and *b*.

        0 for same region; for nodes on different branches this is the
        hop distance through the closest common ancestor region.  Used
        by latency models that scale with hierarchy distance.
        """
        ra, rb = self.region_id_of(a), self.region_id_of(b)
        if ra == rb:
            return 0
        ancestry_a = self._ancestry(ra)
        ancestry_b = self._ancestry(rb)
        depth_a = {region: index for index, region in enumerate(ancestry_a)}
        for hops_b, region in enumerate(ancestry_b):
            if region in depth_a:
                return depth_a[region] + hops_b
        # Disjoint trees (no common ancestor): treat as the sum of both
        # depths plus one logical hop between the roots.
        return len(ancestry_a) + len(ancestry_b) - 1

    def region_hop_split(self, a: NodeId, b: NodeId) -> "Tuple[int, int]":
        """``(up, down)`` region hops for a packet from *a* to *b*.

        *up* counts hops from *a*'s region toward the closest common
        ancestor, *down* the hops from that ancestor to *b*'s region —
        so ``up + down == region_distance(a, b)``.  Latency models use
        the split to price asymmetric per-hop delays.
        """
        ra, rb = self.region_id_of(a), self.region_id_of(b)
        if ra == rb:
            return (0, 0)
        ancestry_a = self._ancestry(ra)
        ancestry_b = self._ancestry(rb)
        depth_a = {region: index for index, region in enumerate(ancestry_a)}
        for hops_b, region in enumerate(ancestry_b):
            if region in depth_a:
                return (depth_a[region], hops_b)
        # Disjoint trees: up to a's root plus the logical root-to-root
        # hop, then down b's whole ancestry (matches region_distance).
        return (len(ancestry_a), len(ancestry_b) - 1)

    def _ancestry(self, region_id: RegionId) -> List[RegionId]:
        chain: List[RegionId] = []
        current: Optional[RegionId] = region_id
        while current is not None:
            chain.append(current)
            current = self.regions[current].parent_id
        return chain

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        Invariants: parent links acyclic, every node in exactly one
        region, membership maps consistent.
        """
        for region_id, region in self.regions.items():
            seen = set()
            current = region.parent_id
            while current is not None:
                if current == region_id or current in seen:
                    raise TopologyError(f"cycle in parent links at region {region_id}")
                seen.add(current)
                current = self.regions[current].parent_id
        placed: Dict[NodeId, RegionId] = {}
        for region_id, region in self.regions.items():
            for node in region.members:
                if node in placed:
                    raise TopologyError(f"node {node} in regions {placed[node]} and {region_id}")
                placed[node] = region_id
        if placed != self._node_region:
            raise TopologyError("node→region index out of sync with region member lists")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def single_region(n: int) -> Hierarchy:
    """One region of *n* members — the paper's §4 local-region setting."""
    hierarchy = Hierarchy()
    hierarchy.add_region(0)
    hierarchy.add_members(0, n)
    return hierarchy


def chain(region_sizes: Sequence[int]) -> Hierarchy:
    """Regions in a line; region *i* is the parent of region *i+1*.

    ``chain([4, 5, 6])`` reproduces the three-region Figure 1 layout:
    region 0 holds the sender, region 1 is downstream of it, region 2
    downstream of region 1.
    """
    hierarchy = Hierarchy()
    for index, size in enumerate(region_sizes):
        parent = index - 1 if index > 0 else None
        hierarchy.add_region(index, parent_id=parent)
        hierarchy.add_members(index, size)
    return hierarchy


def star(root_size: int, leaf_sizes: Sequence[int]) -> Hierarchy:
    """A root region with several child regions hanging off it."""
    hierarchy = Hierarchy()
    hierarchy.add_region(0)
    hierarchy.add_members(0, root_size)
    for index, size in enumerate(leaf_sizes, start=1):
        hierarchy.add_region(index, parent_id=0)
        hierarchy.add_members(index, size)
    return hierarchy


def balanced_tree(depth: int, fanout: int, region_size: int) -> Hierarchy:
    """A balanced hierarchy: *fanout* children per region, *depth* levels.

    Level 0 is the sender's region.  Total regions =
    ``(fanout**(depth+1) - 1) / (fanout - 1)`` for fanout > 1.
    """
    if depth < 0:
        raise TopologyError(f"depth must be >= 0, got {depth}")
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    hierarchy = Hierarchy()
    hierarchy.add_region(0)
    hierarchy.add_members(0, region_size)
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier: List[RegionId] = []
        for parent in frontier:
            for _ in range(fanout):
                hierarchy.add_region(next_id, parent_id=parent)
                hierarchy.add_members(next_id, region_size)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return hierarchy


def regions_of(hierarchy: Hierarchy, node_ids: Iterable[NodeId]) -> List[RegionId]:
    """Map each node id to its region id (convenience for tests/metrics)."""
    return [hierarchy.region_id_of(node) for node in node_ids]
