"""Packet-loss models.

The paper's §4 simulations assume "retransmission requests and repairs
are not lost" and model loss only at initial IP-multicast time, but the
protocol itself must tolerate arbitrary loss, so the transport accepts a
pluggable :class:`LossModel` consulted per (src, dst, kind) delivery.

``kind`` is the packet classification from :mod:`repro.net.packet`
(``"data"``, ``"control"`` …), letting a model drop data while keeping
control traffic reliable — exactly the paper's evaluation assumption.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.net.topology import Hierarchy, NodeId


class LossModel(ABC):
    """Decides, per delivery attempt, whether a packet is dropped."""

    @abstractmethod
    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        """Return ``True`` to drop the packet from *src* to *dst*."""


class NoLoss(LossModel):
    """A perfectly reliable network (the §4 control-plane assumption)."""

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent loss with a fixed probability per delivery.

    ``kinds`` restricts which packet kinds are droppable (default: only
    ``"data"``, preserving the paper's reliable-control assumption).
    """

    def __init__(self, probability: float, kinds: Optional[Set[str]] = None) -> None:
        if not 0 <= probability <= 1:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        self.probability = probability
        self.kinds = {"data"} if kinds is None else set(kinds)

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        if kind not in self.kinds:
            return False
        return rng.random() < self.probability


class ReceiverSetLoss(LossModel):
    """Drop packets destined to an explicit set of receivers.

    Deterministic; used by tests to script exact loss patterns.
    """

    def __init__(self, lost_receivers: Set[NodeId], kinds: Optional[Set[str]] = None) -> None:
        self.lost_receivers = set(lost_receivers)
        self.kinds = {"data"} if kinds is None else set(kinds)

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        return kind in self.kinds and dst in self.lost_receivers


class RegionCorrelatedLoss(LossModel):
    """Loss correlated within regions (models a lossy upstream link).

    With probability ``region_loss`` an entire region loses the packet
    (a *regional loss* in the paper's terminology — recoverable only via
    remote recovery); independently, each receiver additionally loses it
    with probability ``receiver_loss`` (a *local loss*).

    The per-region coin is flipped once per (src-burst, region) pair the
    first time any member of that region is evaluated, then cached until
    :meth:`new_message` resets it; the transport calls ``new_message``
    before each multicast fan-out.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        region_loss: float = 0.0,
        receiver_loss: float = 0.0,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        for name, p in (("region_loss", region_loss), ("receiver_loss", receiver_loss)):
            if not 0 <= p <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        self.hierarchy = hierarchy
        self.region_loss = region_loss
        self.receiver_loss = receiver_loss
        self.kinds = {"data"} if kinds is None else set(kinds)
        self._region_outcome: Dict[int, bool] = {}

    def new_message(self) -> None:
        """Reset cached per-region outcomes for the next multicast."""
        self._region_outcome.clear()

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        if kind not in self.kinds:
            return False
        region_id = self.hierarchy.region_id_of(dst)
        region_lost = self._region_outcome.get(region_id)
        if region_lost is None:
            region_lost = rng.random() < self.region_loss
            self._region_outcome[region_id] = region_lost
        if region_lost:
            return True
        return rng.random() < self.receiver_loss


class BottleneckLoss(LossModel):
    """Congestion loss at a capacity-constrained shared link.

    Models the regime adaptive senders exist for: the data plane shares
    a bottleneck of ``capacity`` packet deliveries per second — counted
    per (src, dst) attempt, so a multicast to *n* receivers spends *n*
    units, and repairs spend from the same budget (overload degrades
    recovery too).  Every droppable delivery attempt is timestamped;
    when the attempt rate over the trailing ``window_ms`` exceeds
    capacity, each data packet drops with the excess ratio
    ``1 - capacity/rate`` (random early drop at the queue) on top of
    the independent ``base_loss``.  Below capacity only ``base_loss``
    applies.

    Needs a clock: the owning transport calls :meth:`bind_clock` with
    its time source (the simulator or a live clock — anything with a
    ``now`` property).
    """

    def __init__(
        self,
        capacity: float,
        window_ms: float = 250.0,
        base_loss: float = 0.0,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0 msgs/s, got {capacity!r}")
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms!r}")
        if not 0 <= base_loss <= 1:
            raise ValueError(f"base_loss must be in [0, 1], got {base_loss!r}")
        self.capacity = capacity
        self.window_ms = window_ms
        self.base_loss = base_loss
        self.kinds = {"data"} if kinds is None else set(kinds)
        self.clock = None
        self._attempts: deque = deque()

    def bind_clock(self, clock) -> None:
        """Attach the time source (called by the transport)."""
        self.clock = clock

    def current_rate(self) -> float:
        """Offered data-plane rate over the trailing window, msgs/s."""
        return len(self._attempts) * 1000.0 / self.window_ms

    def excess_ratio(self) -> float:
        """The fraction of offered load beyond capacity (0 when under)."""
        rate = self.current_rate()
        if rate <= self.capacity:
            return 0.0
        return 1.0 - self.capacity / rate

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        if kind not in self.kinds:
            return False
        if self.clock is None:
            raise RuntimeError(
                "BottleneckLoss has no clock; the transport must call "
                "bind_clock() before traffic flows"
            )
        now = self.clock.now
        cutoff = now - self.window_ms
        attempts = self._attempts
        while attempts and attempts[0] <= cutoff:
            attempts.popleft()
        attempts.append(now)
        p = self.base_loss + (1.0 - self.base_loss) * self.excess_ratio()
        return rng.random() < p


class GilbertElliottLoss(LossModel):
    """Two-state (good/bad) bursty loss per directed link.

    Classic Gilbert–Elliott channel: in the *good* state packets drop
    with ``p_good`` (usually ~0), in the *bad* state with ``p_bad``;
    the state flips per packet with transition probabilities
    ``p_good_to_bad`` and ``p_bad_to_good``.  Models the bursty loss that
    motivates buffering a message until the *burst* has been repaired,
    not just the first request.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.3,
        p_good: float = 0.0,
        p_bad: float = 0.5,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0 <= p <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self.kinds = {"data"} if kinds is None else set(kinds)
        self._bad_state: Dict[Tuple[NodeId, NodeId], bool] = {}

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        if kind not in self.kinds:
            return False
        link = (src, dst)
        bad = self._bad_state.get(link, False)
        flip = self.p_bad_to_good if bad else self.p_good_to_bad
        if rng.random() < flip:
            bad = not bad
        self._bad_state[link] = bad
        return rng.random() < (self.p_bad if bad else self.p_good)


class RegionalOutageLoss(LossModel):
    """A correlated whole-region partition that later heals.

    During ``[start, start + duration)`` every packet crossing the
    boundary of an outaged region drops — data *and* control by
    default, because a partition severs the link itself, not one
    traffic class.  Members inside an outaged region keep talking to
    each other; everyone else keeps talking around them.  After the
    heal, the stranded members discover their accumulated gaps through
    normal session messages and recover en masse — the mass-gap
    recovery regime the two-phase buffer rule must survive.

    An independent ``receiver_loss`` floor applies to data packets for
    the whole run (outside and during the outage).

    Needs a clock: the owning transport calls :meth:`bind_clock` with
    its time source.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        regions: Set[int],
        start: float,
        duration: float,
        receiver_loss: float = 0.0,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        if start < 0 or duration <= 0:
            raise ValueError(
                f"outage needs start >= 0 and duration > 0, got {start!r}/{duration!r}"
            )
        if not 0 <= receiver_loss <= 1:
            raise ValueError(f"receiver_loss must be in [0, 1], got {receiver_loss!r}")
        self.hierarchy = hierarchy
        self.regions = set(regions)
        self.start = start
        self.end = start + duration
        self.receiver_loss = receiver_loss
        self.kinds = {"data", "control"} if kinds is None else set(kinds)
        self.clock = None
        self.partition_drops = 0

    def bind_clock(self, clock) -> None:
        """Attach the time source (called by the transport)."""
        self.clock = clock

    def active(self, now: float) -> bool:
        """Whether the partition is in force at *now*."""
        return self.start <= now < self.end

    def is_lost(self, src: NodeId, dst: NodeId, kind: str, rng: random.Random) -> bool:
        if self.clock is None:
            raise RuntimeError(
                "RegionalOutageLoss has no clock; the transport must call "
                "bind_clock() before traffic flows"
            )
        if (kind in self.kinds and self.regions and self.active(self.clock.now)
                and self.hierarchy.contains(src) and self.hierarchy.contains(dst)):
            src_region = self.hierarchy.region_id_of(src)
            dst_region = self.hierarchy.region_id_of(dst)
            if src_region != dst_region and (
                src_region in self.regions or dst_region in self.regions
            ):
                self.partition_drops += 1
                return True
        if kind == "data" and self.receiver_loss > 0:
            return rng.random() < self.receiver_loss
        return False
