"""Closed-form analysis of the paper's probabilistic claims (system S9).

Formulas from §3.1/§3.2 (request-silence probability, long-term
bufferer distribution) and mean-field models of the recovery and search
dynamics used to sanity-check the simulator.
"""

from repro.analysis.epidemic import (
    pull_epidemic_curve,
    pull_epidemic_rounds,
    search_time_estimate,
)
from repro.analysis.formulas import (
    bufferer_distribution_poisson,
    bufferer_pmf_binomial,
    bufferer_pmf_poisson,
    expected_remote_requests,
    prob_no_bufferer,
    prob_no_bufferer_binomial,
    prob_no_request,
    prob_no_request_limit,
)

__all__ = [
    "bufferer_distribution_poisson",
    "bufferer_pmf_binomial",
    "bufferer_pmf_poisson",
    "expected_remote_requests",
    "prob_no_bufferer",
    "prob_no_bufferer_binomial",
    "prob_no_request",
    "prob_no_request_limit",
    "pull_epidemic_curve",
    "pull_epidemic_rounds",
    "search_time_estimate",
]
