"""Closed-form results from the paper (§3.1 and §3.2).

These formulas are what the mechanism in :mod:`repro.core` is designed
around; the experiment suite cross-checks them against Monte-Carlo and
full-protocol simulation (Figures 3 and 4 are direct plots of them).

* :func:`prob_no_request` — §3.1: the probability that a member holding
  a message receives *no* local retransmission request in a round,
  ``(1 - 1/(n-1))^{np}``, which tends to ``e^{-p}`` as n → ∞.
* :func:`bufferer_pmf_binomial` / :func:`bufferer_pmf_poisson` — §3.2:
  the number of long-term bufferers is Binomial(n, C/n) ≈ Poisson(C)
  (Figure 3 plots the Poisson pmf for C ∈ {5, 6, 7, 8}).
* :func:`prob_no_bufferer` — §3.2/Figure 4: ``e^{-C}`` (0.25 % at
  C = 6, the paper's example).
"""

from __future__ import annotations

import math
from typing import List


def prob_no_request(n: int, p: float) -> float:
    """P[a holder receives no request] in one recovery round (§3.1, exact).

    Parameters
    ----------
    n:
        Region size; must be at least 2 (with one member there is
        nobody to request from).
    p:
        Fraction of the region missing the message, in [0, 1].  ``np``
        members each send one request to a uniformly-random other
        member, so a given holder is spared with probability
        ``(1 - 1/(n-1))^{np}``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p!r}")
    return (1.0 - 1.0 / (n - 1)) ** (n * p)


def prob_no_request_limit(p: float) -> float:
    """The large-n limit ``e^{-p}`` of :func:`prob_no_request` (§3.1)."""
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p!r}")
    return math.exp(-p)


def bufferer_pmf_binomial(n: int, c: float, k: int) -> float:
    """P[k long-term bufferers] under the exact Binomial(n, C/n) law (§3.2)."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    if c < 0:
        raise ValueError(f"c must be >= 0, got {c!r}")
    if not 0 <= k <= n:
        return 0.0
    probability = min(1.0, c / n)
    return math.comb(n, k) * probability**k * (1.0 - probability) ** (n - k)


def bufferer_pmf_poisson(c: float, k: int) -> float:
    """P[k long-term bufferers] under the Poisson(C) approximation (§3.2).

    This is the law Figure 3 plots: ``e^{-C} C^k / k!``.
    """
    if c < 0:
        raise ValueError(f"c must be >= 0, got {c!r}")
    if k < 0:
        return 0.0
    return math.exp(-c) * c**k / math.factorial(k)


def bufferer_distribution_poisson(c: float, max_k: int) -> List[float]:
    """The Poisson(C) pmf for k = 0..max_k (one Figure 3 curve)."""
    return [bufferer_pmf_poisson(c, k) for k in range(max_k + 1)]


def prob_no_bufferer(c: float) -> float:
    """P[no member long-term-buffers an idle message] ≈ ``e^{-C}`` (Figure 4)."""
    if c < 0:
        raise ValueError(f"c must be >= 0, got {c!r}")
    return math.exp(-c)


def prob_no_bufferer_binomial(n: int, c: float) -> float:
    """Exact no-bufferer probability ``(1 - C/n)^n`` for a finite region."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    probability = min(1.0, c / n)
    return (1.0 - probability) ** n


def expected_remote_requests(region_size: int, remote_lambda: float) -> float:
    """Expected remote requests per round when a whole region misses (§2.2).

    Each of the *n* missing members sends with probability λ/n, so the
    expectation is ``n · min(1, λ/n) = min(n, λ)``.
    """
    if region_size <= 0:
        return 0.0
    if remote_lambda < 0:
        raise ValueError(f"remote_lambda must be >= 0, got {remote_lambda!r}")
    return region_size * min(1.0, remote_lambda / region_size)
