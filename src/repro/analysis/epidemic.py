"""Mean-field models of the randomized recovery dynamics.

The paper grounds local recovery in epidemic theory ("As long as at
least one local receiver has the message, p is able to recover the loss
eventually.  This has been shown in previous work on epidemic theory",
§2.2, citing Bailey and the Xerox Clearinghouse work).  These
deterministic mean-field recurrences predict the *shape* of the curves
the simulator produces — the Figure 7 S-curve and the Figure 8/9 search
times — and the test-suite checks simulation against them within
tolerance.

All models advance in *rounds* of one intra-region RTT (10 ms in §4),
since a missing member re-asks a new random neighbour each RTT.
"""

from __future__ import annotations

from typing import List


def pull_epidemic_curve(n: int, initial_holders: int, max_rounds: int = 200) -> List[float]:
    """Expected holder counts per round for randomized pull recovery.

    Each missing member asks one uniformly-random other member per
    round; the pull succeeds iff the target currently holds the
    message.  In expectation, with ``I_t`` holders out of *n*:

        I_{t+1} = I_t + (n - I_t) * (I_t / (n - 1))

    Returns the sequence ``[I_0, I_1, ...]`` until saturation (within
    0.5 of n) or *max_rounds*.
    """
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    if not 0 <= initial_holders <= n:
        raise ValueError(f"initial_holders must be in [0, n], got {initial_holders}")
    curve = [float(initial_holders)]
    if initial_holders == 0 or n == 1:
        return curve
    holders = float(initial_holders)
    for _ in range(max_rounds):
        missing = n - holders
        if missing < 0.5:
            break
        hit_probability = holders / (n - 1)
        holders = holders + missing * hit_probability
        curve.append(min(holders, float(n)))
    return curve


def pull_epidemic_rounds(n: int, initial_holders: int, coverage: float = 1.0) -> int:
    """Rounds until the expected holder count reaches ``coverage · n``."""
    if not 0 < coverage <= 1:
        raise ValueError(f"coverage must be in (0, 1], got {coverage!r}")
    target = coverage * n - 0.5
    curve = pull_epidemic_curve(n, initial_holders)
    for round_index, holders in enumerate(curve):
        if holders >= target:
            return round_index
    return len(curve)


def search_time_estimate(
    n: int,
    bufferers: int,
    one_way_latency: float = 5.0,
    max_rounds: int = 500,
) -> float:
    """Mean-field estimate of the §3.3 search time, in milliseconds.

    Model: the remote request lands on a uniformly-random member.  With
    probability ``b/n`` that member is a bufferer (search time 0 — the
    paper's footnote 5).  Otherwise a searcher population grows: each
    active searcher forwards the request to one random member per RTT;
    a forward reaches a bufferer with probability ``b/(n-1)`` and ends
    the search one one-way latency later; a miss recruits the target
    into the search at the next half-round.

    We track the expected number of searchers ``s_r`` and the survival
    probability across rounds; the returned value is the expectation of
    (first-success time + one-way delay for the reply/repair to leave
    the bufferer), matching how the simulator measures "search time"
    (request arrival at the region → bufferer serves the repair).
    """
    if n <= 1:
        return 0.0
    if bufferers < 0:
        raise ValueError(f"bufferers must be >= 0, got {bufferers}")
    if bufferers >= n:
        return 0.0
    if bufferers == 0:
        return float("inf")
    p_direct = bufferers / n
    rtt = 2.0 * one_way_latency
    hit = bufferers / (n - 1)
    expected = 0.0
    survive = 1.0  # P[search still running | not a direct hit]
    searchers = 1.0
    non_bufferers = n - bufferers
    for round_index in range(max_rounds):
        # Each searcher forwards once this round; a hit is detected by
        # the bufferer one one-way latency after the forward.
        p_found_this_round = 1.0 - (1.0 - hit) ** searchers
        time_of_service = round_index * rtt + one_way_latency
        expected += survive * p_found_this_round * time_of_service
        survive *= 1.0 - p_found_this_round
        if survive < 1e-9:
            break
        # Misses recruit their targets (if not already searching).
        misses = searchers * (1.0 - hit)
        recruitable = max(0.0, non_bufferers - searchers)
        searchers = min(non_bufferers, searchers + misses * recruitable / max(1, n - 1))
        searchers = max(searchers, 1.0)
    return (1.0 - p_direct) * expected
