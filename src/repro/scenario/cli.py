"""The ``scenarios`` CLI subcommand: list / describe / run named specs.

Wired into the ``rrmp-experiments`` entry point::

    rrmp-experiments scenarios list
    rrmp-experiments scenarios describe wan_burst_loss
    rrmp-experiments scenarios run overload_onset --seed 3 --json
    rrmp-experiments scenarios run scale_100k --shards 4
    rrmp-experiments scenarios run initial_holders --shards 2 --jobs 2

``describe`` prints the spec's JSON form (the exact payload
``ScenarioSpec.from_json`` accepts) plus its digest; ``run``
materializes, runs to the measurement end and prints the summary
metrics — as aligned text or, with ``--json``, as one JSON object for
pipelines.

Two scenario tiers resolve here.  Classic registry names run on the
object engine; ``--shards N`` runs them mirror-sharded
(:mod:`repro.scale.sharding`) with a merged trace digest byte-identical
to the serial run.  Scale-tier names (``scale_10k``, ``scale_100k``)
always run on the flat array engine (:mod:`repro.scale.engine`), where
``--shards`` partitions regions across engines and ``--jobs`` > 1
moves each shard into its own worker process.

``--profile`` wraps the run in cProfile: raw stats land in
``profile.pstats`` (override with ``--profile-out``) and the top 25
functions by cumulative time go to stderr, leaving stdout clean for
``--json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.metrics.runreport import RunReport
from repro.runner.profiling import maybe_profile
from repro.scale.engine import run_flat
from repro.scale.scenarios import get_scale_scenario, scale_scenarios
from repro.scale.sharding import run_mirror_sharded
from repro.scenario.registry import get_scenario, registered_scenarios


def add_scenarios_parser(commands) -> None:
    """Attach the ``scenarios`` subcommand tree to *commands*."""
    parser = commands.add_parser(
        "scenarios", help="list, describe or run registered named scenarios"
    )
    actions = parser.add_subparsers(dest="scenario_command", required=True)
    actions.add_parser("list", help="list registered scenarios")
    describe = actions.add_parser("describe", help="print one scenario's spec JSON")
    describe.add_argument("name")
    run = actions.add_parser("run", help="build and run one scenario")
    run.add_argument("name")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's master seed")
    run.add_argument("--param", action="append", default=[], metavar="K=V",
                     help="override a spec field by dotted path, e.g. "
                          "--param congestion.controller=tfmcc "
                          "--param congestion.target_loss=0.02")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the run summary as JSON")
    run.add_argument("--shards", type=int, default=1, metavar="N",
                     help="partition the run across N shards (classic names: "
                          "mirror-sharded with a digest identical to serial; "
                          "scale-tier names: region-partitioned flat engines)")
    run.add_argument("--jobs", type=int, default=None, metavar="M",
                     help="worker processes for sharded runs (default: in-"
                          "process for scale tier, one per shard for classic)")
    run.add_argument("--profile", action="store_true",
                     help="profile the run with cProfile (stats file + top-25 "
                          "cumulative on stderr)")
    run.add_argument("--profile-out", default="profile.pstats", metavar="PATH",
                     help="where --profile writes the raw pstats file "
                          "(default: profile.pstats)")


def _resolve(name: str):
    """Look *name* up in the classic registry, then the scale tier.

    Returns ``(spec, is_scale_tier)``; raises ``KeyError`` naming both
    catalogues when neither tier knows the name.
    """
    try:
        return get_scenario(name), False
    except KeyError as classic_error:
        try:
            return get_scale_scenario(name), True
        except KeyError:
            raise KeyError(
                f"{classic_error.args[0]}; scale tier: "
                + ", ".join(scale_scenarios())
            ) from None


def main_scenarios(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``scenarios`` invocation; returns the exit code."""
    if args.scenario_command == "list":
        return _cmd_list()
    try:
        spec, is_scale = _resolve(args.name)
    except KeyError as error:
        # Unknown name: a usage error with the catalogue, not a
        # traceback.  Only the lookup is guarded — failures inside the
        # simulation itself must stay loud.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.scenario_command == "describe":
        return _cmd_describe(spec)
    return _cmd_run(spec, is_scale, args)


def _cmd_list() -> int:
    entries = registered_scenarios()
    scale_tier = scale_scenarios()
    width = max(
        max(len(name) for name in entries),
        max(len(name) for name in scale_tier),
    )
    for name, entry in entries.items():
        spec = entry.spec()
        members = spec.topology.member_count()
        print(f"{name.ljust(width)}  [{members:>6d} members]  {entry.description}")
    print()
    print("scale tier (flat engine):")
    for name, spec in scale_tier.items():
        members = spec.topology.member_count()
        print(f"{name.ljust(width)}  [{members:>6d} members]  {spec.description}")
    return 0


def _cmd_describe(spec) -> int:
    print(spec.to_json(indent=2))
    print(f"digest: {spec.digest()}")
    return 0


def _apply_spec_overrides(spec, pairs):
    """Apply dotted-path ``--param`` overrides onto a frozen spec tree.

    Each path segment names a field on the current (sub-)spec; the leaf
    assignment runs through ``dataclasses.replace``, so the sub-spec's
    ``__post_init__`` validation re-fires on the overridden value.
    """
    import dataclasses

    for key, value in pairs:
        parts = key.split(".")
        node = spec
        chain = [spec]
        for part in parts[:-1]:
            if not hasattr(node, part):
                raise ValueError(
                    f"--param {key}: {type(node).__name__} has no field {part!r}"
                )
            node = getattr(node, part)
            chain.append(node)
        leaf = parts[-1]
        if not hasattr(node, leaf):
            raise ValueError(
                f"--param {key}: {type(node).__name__} has no field {leaf!r}"
            )
        updated = dataclasses.replace(node, **{leaf: value})
        for parent, part in zip(reversed(chain[:-1]), reversed(parts[:-1])):
            updated = dataclasses.replace(parent, **{part: updated})
        spec = updated
    return spec


def _cmd_run(spec, is_scale: bool, args: argparse.Namespace) -> int:
    if args.seed is not None:
        spec = spec.with_(seed=args.seed)
    if args.param:
        from repro.experiments.cli import parse_param

        try:
            spec = _apply_spec_overrides(
                spec, [parse_param(text) for text in args.param]
            )
        except (TypeError, ValueError, argparse.ArgumentTypeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    with maybe_profile(args.profile, args.profile_out):
        if is_scale:
            processes = args.jobs is not None and args.jobs > 1
            result = run_flat(spec, shards=args.shards, processes=processes)
            summary = result.summary()
        elif args.shards > 1:
            result = run_mirror_sharded(spec, args.shards, jobs=args.jobs)
            summary = result.payload()
        else:
            built = spec.build()
            built.run()
            summary = built.summary()
    report = RunReport(kind="scenario", scenario=spec.name, seed=spec.seed,
                       metrics=summary)
    if args.as_json:
        print(report.to_json())
        return 0
    print(report.to_text(f"== scenario {spec.name} (seed {spec.seed}) =="))
    return 0
