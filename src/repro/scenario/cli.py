"""The ``scenarios`` CLI subcommand: list / describe / run named specs.

Wired into the ``rrmp-experiments`` entry point::

    rrmp-experiments scenarios list
    rrmp-experiments scenarios describe wan_burst_loss
    rrmp-experiments scenarios run overload_onset --seed 3 --json

``describe`` prints the spec's JSON form (the exact payload
``ScenarioSpec.from_json`` accepts) plus its digest; ``run``
materializes, runs to the measurement end and prints the summary
metrics — as aligned text or, with ``--json``, as one JSON object for
pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scenario.registry import get_scenario, registered_scenarios


def add_scenarios_parser(commands) -> None:
    """Attach the ``scenarios`` subcommand tree to *commands*."""
    parser = commands.add_parser(
        "scenarios", help="list, describe or run registered named scenarios"
    )
    actions = parser.add_subparsers(dest="scenario_command", required=True)
    actions.add_parser("list", help="list registered scenarios")
    describe = actions.add_parser("describe", help="print one scenario's spec JSON")
    describe.add_argument("name")
    run = actions.add_parser("run", help="build and run one scenario")
    run.add_argument("name")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's master seed")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the run summary as JSON")


def main_scenarios(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``scenarios`` invocation; returns the exit code."""
    if args.scenario_command == "list":
        return _cmd_list()
    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        # Unknown name: a usage error with the catalogue, not a
        # traceback.  Only the lookup is guarded — failures inside the
        # simulation itself must stay loud.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.scenario_command == "describe":
        return _cmd_describe(spec)
    return _cmd_run(spec, seed=args.seed, as_json=args.as_json)


def _cmd_list() -> int:
    entries = registered_scenarios()
    width = max(len(name) for name in entries)
    for name, entry in entries.items():
        spec = entry.spec()
        members = spec.topology.member_count()
        print(f"{name.ljust(width)}  [{members:>5d} members]  {entry.description}")
    return 0


def _cmd_describe(spec) -> int:
    print(spec.to_json(indent=2))
    print(f"digest: {spec.digest()}")
    return 0


def _cmd_run(spec, seed=None, as_json: bool = False) -> int:
    if seed is not None:
        spec = spec.with_(seed=seed)
    built = spec.build()
    built.run()
    summary = built.summary()
    if as_json:
        print(json.dumps(summary))
        return 0
    print(f"== scenario {spec.name} (seed {spec.seed}) ==")
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        print(f"  {key.ljust(width)}  {value}")
    return 0
