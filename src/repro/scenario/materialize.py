"""Materialize a :class:`~repro.scenario.spec.ScenarioSpec` into a run.

``build_scenario`` is the single assembly point that used to be
duplicated across every experiment, workload, test and example: it
turns the declarative spec into a fully wired
:class:`~repro.protocol.rrmp.RrmpSimulation` with traffic, churn,
occupancy probes and FEC flush scheduled.

Determinism contract: for a given spec the build performs the exact
same construction steps, in the same order, with the same named RNG
streams as the historical hand-assembled setups — so migrating an
experiment onto specs leaves its tables byte-identical.  Build order:

1. hierarchy, config, latency, transport loss, outcome, policy factory;
2. the simulation itself;
3. stability agents (``policy.kind == "stability"``);
4. occupancy probes (``measurement.probe_period``);
5. traffic (streams scheduled; probe workloads injected immediately);
6. FEC tail flush;
7. churn;
8. mobility epochs (``spec.mobility``, pre-scheduled finite ticks).

Steps 4-before-5 matter: probe and send events that share a deadline
fire in insertion order, and the historical experiments created their
probes before scheduling traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adapt import LinkStateEstimator, TreeOptimizer
    from repro.validate.oracle import InvariantOracle

from repro.core.policies import (
    BufferPolicy,
    FixedTimePolicy,
    NeverDiscardPolicy,
    NoBufferPolicy,
)
from repro.hashing.deterministic import HashBuffererPolicy
from repro.membership.churn import ChurnSchedule, random_churn
from repro.metrics.makespan import MakespanTracker
from repro.metrics.occupancy import OccupancyProbe
from repro.metrics.rebuffer import RebufferTracker
from repro.metrics.stats import mean
from repro.net.ipmulticast import (
    BernoulliOutcome,
    FixedHolderCount,
    MulticastOutcome,
    RegionCorrelatedOutcome,
)
from repro.net.latency import HierarchicalLatency
from repro.net.loss import (
    BottleneckLoss,
    GilbertElliottLoss,
    LossModel,
    RegionalOutageLoss,
)
from repro.net.topology import (
    Hierarchy,
    NodeId,
    balanced_tree,
    chain,
    single_region,
    star,
)
from repro.cc import CongestionDriver, controller_for, install_feedback_reporters
from repro.protocol.config import FEC_OFF, CongestionConfig, RrmpConfig
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import RrmpSimulation, default_sender_node
from repro.scenario.spec import (
    CongestionSpec,
    FecSpec,
    LossSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.stability.detector import StabilityBufferPolicy, attach_stability
from repro.workloads.mobility import DistanceLoss, MobilityManager
from repro.workloads.traffic import (
    BurstStream,
    PoissonStream,
    RampStream,
    TrafficGenerator,
    UniformStream,
)

PolicyFactory = Callable[[NodeId], BufferPolicy]


def build_hierarchy(topology: TopologySpec) -> Hierarchy:
    """The spec's region hierarchy (shared with the live runtime)."""
    if topology.kind == "single_region":
        return single_region(topology.n)
    if topology.kind == "chain":
        return chain(list(topology.sizes))
    if topology.kind == "star":
        return star(topology.n, list(topology.sizes))
    return balanced_tree(topology.depth, topology.fanout, topology.n)


def build_congestion_config(congestion: Optional[CongestionSpec]) -> CongestionConfig:
    """The protocol-level congestion sub-config a spec node describes."""
    if congestion is None:
        return CongestionConfig()
    return CongestionConfig(
        controller=congestion.controller,
        target_loss=congestion.target_loss,
        min_rate=congestion.min_rate,
        max_rate=congestion.max_rate,
        feedback_interval=congestion.feedback_interval,
        parity_min=congestion.parity_min,
        parity_max=congestion.parity_max,
    )


def build_config(policy: PolicySpec, fec: FecSpec,
                 congestion: Optional[CongestionSpec] = None) -> RrmpConfig:
    """Protocol configuration from the policy, FEC and congestion specs."""
    return RrmpConfig(
        remote_lambda=policy.remote_lambda,
        long_term_c=policy.c,
        idle_threshold=policy.idle_threshold,
        timer_factor=policy.timer_factor,
        session_interval=policy.session_interval,
        long_term_ttl=policy.long_term_ttl,
        max_recovery_time=policy.max_recovery_time,
        max_search_rounds=policy.max_search_rounds,
        fec_mode=fec.mode,
        fec_block_size=fec.block_size,
        fec_parity=fec.parity,
        congestion=build_congestion_config(congestion),
    )


def policy_factory_for(policy: PolicySpec) -> Optional[PolicyFactory]:
    """``None`` selects the facade's default (two-phase from config)."""
    if policy.kind == "two_phase":
        return None
    if policy.kind == "fixed_time":
        hold = float(policy.hold_time)
        return lambda _n: FixedTimePolicy(hold)
    if policy.kind == "stability":
        return lambda _n: StabilityBufferPolicy()
    if policy.kind == "hash":
        c = float(policy.c)
        return lambda _n: HashBuffererPolicy(c)
    if policy.kind == "never_discard":
        return lambda _n: NeverDiscardPolicy()
    return lambda _n: NoBufferPolicy()


def transport_loss_for(
    loss: LossSpec, hierarchy: Optional[Hierarchy] = None
) -> Optional[LossModel]:
    """The spec's transport-level loss model (``None`` = lossless).

    The ``outage`` kind is region-aware and needs *hierarchy*: the
    partitioned regions are the last ``outage_regions`` non-sender
    regions in sorted order (deterministic in the topology alone).
    """
    if loss.kind == "gilbert_elliott":
        return GilbertElliottLoss(
            p_good_to_bad=loss.p_good_to_bad,
            p_bad_to_good=loss.p_bad_to_good,
            p_good=loss.p_good,
            p_bad=loss.p_bad,
        )
    if loss.kind == "bottleneck":
        return BottleneckLoss(
            capacity=loss.capacity,
            window_ms=loss.window,
            base_loss=loss.receiver_loss,
        )
    if loss.kind == "outage":
        if hierarchy is None:
            raise ValueError("outage loss needs the hierarchy to pick regions")
        sender_region = hierarchy.region_id_of(default_sender_node(hierarchy))
        candidates = [
            region_id for region_id in sorted(hierarchy.regions)
            if region_id != sender_region
        ]
        affected = set(candidates[-loss.outage_regions:]) if candidates else set()
        return RegionalOutageLoss(
            hierarchy,
            affected,
            start=loss.outage_start,
            duration=loss.outage_duration,
            receiver_loss=loss.receiver_loss,
        )
    return None


def outcome_for(loss: LossSpec) -> Optional[MulticastOutcome]:
    """The spec's IP-multicast outcome model (``None`` = perfect)."""
    if loss.kind == "bernoulli":
        return BernoulliOutcome(loss.p)
    if loss.kind == "fixed_holders":
        return FixedHolderCount(loss.k)
    # none / gilbert_elliott / bottleneck / outage -> perfect initial
    # multicast (those models live in the transport);
    # region_correlated -> post-wire
    return None


def traffic_generator_for(
    traffic: TrafficSpec, spec: ScenarioSpec, streams
) -> Optional[TrafficGenerator]:
    """The spec's stream workload (``None`` for probe/none kinds).

    *streams* is the run's :class:`~repro.sim.RandomStreams`; Poisson
    arrivals draw from its ``("scenario", "traffic")`` substream, so
    sim and live materializations of one spec schedule identical send
    instants.
    """
    if traffic.kind == "uniform":
        return UniformStream(traffic.count, traffic.interval, start=traffic.start)
    if traffic.kind == "poisson":
        duration = traffic.duration
        if duration <= 0:
            horizon = spec.measurement.horizon or spec.measurement.duration
            if horizon is None:
                raise ValueError(
                    "poisson traffic needs a duration or a measurement horizon"
                )
            duration = horizon - traffic.start
        rng = streams.stream("scenario", "traffic")
        return PoissonStream(traffic.rate, duration, rng, start=traffic.start)
    if traffic.kind == "burst":
        return BurstStream([tuple(burst) for burst in traffic.bursts])
    if traffic.kind == "ramp":
        return RampStream(
            traffic.count,
            traffic.initial_interval,
            traffic.final_interval,
            start=traffic.start,
        )
    return None


@dataclass
class BuiltScenario:
    """A materialized scenario: the simulation plus everything scheduled.

    Probe workloads (``detect_all``/``search_probe``) expose their cast
    — ``data``, ``holders``, ``bufferers``, ``requester`` — so result
    wrappers like :class:`repro.workloads.scenarios.SearchResult` can
    compute their figures.
    """

    spec: ScenarioSpec
    simulation: RrmpSimulation
    traffic: Optional[TrafficGenerator] = None
    message_count: int = 0
    churn: Optional[ChurnSchedule] = None
    stability_agents: List = field(default_factory=list)
    #: Invariant oracle (:mod:`repro.validate`), attached when
    #: ``measurement.oracle`` is set; ``run()`` finalizes it.
    oracle: Optional["InvariantOracle"] = None
    #: Closed-loop send driver (:mod:`repro.cc`), present when the
    #: spec's congestion controller is not ``"none"``.  ``run()``
    #: refreshes ``message_count`` from its actual send count.
    cc_driver: Optional[CongestionDriver] = None
    cc_reporters: List = field(default_factory=list)
    #: Offered-load arrival count (equals ``message_count`` unless a
    #: congestion controller left arrivals unsent at the horizon).
    offered_count: int = 0
    total_probe: Optional[OccupancyProbe] = None
    node_probe: Optional[OccupancyProbe] = None
    #: Delivery-span tracker (:mod:`repro.metrics.makespan`), attached
    #: when the spec keeps a trace; pure subscriber, never scheduled.
    makespan: Optional[MakespanTracker] = None
    #: Adaptive-tree pieces (:mod:`repro.adapt`), present only when
    #: ``spec.adapt`` is enabled; ``run()`` stops the optimizer.
    linkstate: Optional["LinkStateEstimator"] = None
    adapt: Optional["TreeOptimizer"] = None
    #: Waypoint-mobility manager (:mod:`repro.workloads.mobility`),
    #: present when ``spec.mobility`` is enabled; its movement epochs
    #: are pre-scheduled as a finite set, so ``run()`` need not stop it.
    mobility: Optional[MobilityManager] = None
    #: Playout-deadline tracker (:mod:`repro.metrics.rebuffer`),
    #: attached when ``spec.playout`` is enabled and the spec keeps a
    #: trace; pure subscriber, never scheduled.
    rebuffer: Optional[RebufferTracker] = None
    data: Optional[DataMessage] = None
    holders: List[NodeId] = field(default_factory=list)
    bufferers: List[NodeId] = field(default_factory=list)
    requester: Optional[NodeId] = None
    _peak_node: float = 0.0

    @property
    def peak_node_occupancy(self) -> float:
        """Largest single-member occupancy any probe tick observed."""
        return self._peak_node

    def run(self) -> "BuiltScenario":
        """Advance to the measurement end, then stop probes and agents."""
        measurement = self.spec.measurement
        simulation = self.simulation
        bounded = False
        if measurement.horizon is not None:
            simulation.run(until=measurement.horizon)
            bounded = True
        elif measurement.duration is not None:
            simulation.run(duration=measurement.duration)
            bounded = True
        if measurement.drain or not bounded:
            # Drain (the explicit ``drain`` flag, possibly after a bounded
            # run, or the no-bound default): stop the session heartbeat
            # first or the queue never empties.  Feedback reporters and
            # the CC send loop are periodic too — stop them or drain
            # never terminates.
            if self.cc_driver is not None:
                self.cc_driver.stop()
            for reporter in self.cc_reporters:
                reporter.stop()
            if self.adapt is not None:
                self.adapt.stop()
            if simulation.config.session_interval is not None:
                simulation.sender.stop()
            simulation.sim.drain()
        if self.adapt is not None:
            self.adapt.stop()
        if self.cc_driver is not None:
            self.cc_driver.stop()
            for reporter in self.cc_reporters:
                reporter.stop()
            # Under congestion control ``message_count`` is what the
            # paced sender actually transmitted, not the offered load.
            self.message_count = self.cc_driver.sent
        if self.total_probe is not None:
            self.total_probe.stop()
        if self.node_probe is not None:
            self.node_probe.stop()
        for agent in self.stability_agents:
            agent.stop()
        if self.oracle is not None:
            self.oracle.finish()
        return self

    def summary(self) -> dict:
        """Headline metrics of the run (the ``scenarios run`` payload)."""
        simulation = self.simulation
        latencies = simulation.recovery_latencies()
        alive = simulation.alive_members()
        delivered = simulation.delivered_fraction(self.message_count)
        result = {
            "scenario": self.spec.name,
            "seed": self.spec.seed,
            "digest": self.spec.digest(),
            "members": len(simulation.members),
            "alive_members": len(alive),
            "messages": self.message_count,
            "delivered_fraction": delivered,
            "recoveries": len(latencies),
            "mean_recovery_latency_ms": mean(latencies) if latencies else 0.0,
            "reliability_violations": simulation.violation_count(),
            "control_messages": simulation.control_message_count(),
            "data_messages": simulation.data_message_count(),
            "events_fired": simulation.sim.events_fired,
            "sim_time_ms": simulation.sim.now,
        }
        if self.total_probe is not None:
            result["avg_total_occupancy"] = self.total_probe.average()
            result["peak_node_occupancy"] = self.peak_node_occupancy
        if self.oracle is not None:
            result["invariant_violations"] = self.oracle.violation_count
        if self.makespan is not None and self.makespan.delivery_count:
            result.update(self.makespan.summary())
        if self.mobility is not None:
            result.update(self.mobility.summary())
        if self.rebuffer is not None:
            result.update(self.rebuffer.summary())
        if self.adapt is not None:
            result["adapt_updates"] = self.adapt.update_count
            result["adapt_reparents"] = self.adapt.reparent_count
        if self.cc_driver is not None:
            result["offered_messages"] = self.offered_count
            result["cc_controller"] = self.cc_driver.controller.name
            result["cc_final_interval_ms"] = self.cc_driver.controller.interval()
        return result


def inject_detect_all(group, traffic: TrafficSpec):
    """The Figure 6/7 workload: k holders, everyone else detects at once.

    *group* is any wired member group (an
    :class:`~repro.protocol.rrmp.RrmpSimulation` or a live session)
    exposing ``hierarchy``, ``members``, ``sender`` and ``streams``.
    Returns ``(data, holders)``.
    """
    hierarchy = group.hierarchy
    k = traffic.holders
    if k > len(hierarchy.nodes):
        raise ValueError(
            f"detect_all holders must be <= group size, got k={k}, "
            f"n={len(hierarchy.nodes)}"
        )
    data = DataMessage(seq=1, sender=group.sender.node_id)
    rng = group.streams.stream("scenario", "holders")
    holders = sorted(rng.sample(hierarchy.nodes, k))
    holder_set = set(holders)
    for node in hierarchy.nodes:
        member = group.members[node]
        if node in holder_set:
            member.inject_receive(data, via="multicast")
        else:
            member.inject_loss_detection(data.seq)
    return data, holders


def inject_search_probe(group, traffic: TrafficSpec):
    """The Figure 8/9 workload: b bufferers, one downstream requester.

    Same *group* contract as :func:`inject_detect_all`; returns
    ``(data, bufferers, requester)``.
    """
    hierarchy = group.hierarchy
    region_ids = sorted(hierarchy.regions)
    if len(region_ids) < 2:
        raise ValueError("search_probe needs at least two regions")
    region = hierarchy.regions[region_ids[0]]
    requester_region = hierarchy.regions[region_ids[-1]]
    if not requester_region.members:
        raise ValueError("search_probe requester region is empty")
    if traffic.bufferers > region.size:
        raise ValueError(
            f"bufferers must be in [0, n], got {traffic.bufferers}"
        )
    requester = requester_region.members[0]
    data = DataMessage(seq=1, sender=group.sender.node_id)
    rng = group.streams.stream("scenario", "bufferers")
    chosen = sorted(rng.sample(region.members, traffic.bufferers))
    chosen_set = set(chosen)
    for node in region.members:
        member = group.members[node]
        if node in chosen_set:
            member.install_long_term(data)
        else:
            member.force_received(data)
    group.members[requester].inject_loss_detection(data.seq)
    return data, chosen, requester


def build_scenario(spec: ScenarioSpec) -> BuiltScenario:
    """Materialize *spec*: simulation built, traffic and churn scheduled."""
    hierarchy = build_hierarchy(spec.topology)
    config = build_config(spec.policy, spec.fec, spec.congestion)
    mobility_manager: Optional[MobilityManager] = None
    if spec.mobility.enabled:
        # Built against the bare hierarchy so DistanceLoss can wrap the
        # manager into the transport before the simulation exists.
        mobility_manager = MobilityManager(hierarchy, spec.mobility, spec.seed)
    loss_model = transport_loss_for(spec.loss, hierarchy)
    if mobility_manager is not None and spec.mobility.distance_loss > 0:
        loss_model = DistanceLoss(
            mobility_manager, spec.mobility.distance_loss, base=loss_model
        )
    simulation = RrmpSimulation(
        hierarchy,
        config=config,
        seed=spec.seed,
        latency=HierarchicalLatency(
            hierarchy,
            intra_one_way=spec.topology.intra_one_way,
            inter_one_way=spec.topology.inter_one_way,
            inter_up_one_way=spec.topology.inter_up_one_way,
            inter_down_one_way=spec.topology.inter_down_one_way,
        ),
        loss=loss_model,
        outcome=outcome_for(spec.loss),
        policy_factory=policy_factory_for(spec.policy),
        keep_trace=spec.measurement.keep_trace,
    )
    if spec.loss.kind == "region_correlated":
        simulation.sender.outcome = RegionCorrelatedOutcome(
            hierarchy,
            region_loss=spec.loss.region_loss,
            receiver_loss=spec.loss.receiver_loss,
            sender=simulation.sender.node_id,
        )
    built = BuiltScenario(spec=spec, simulation=simulation)

    if spec.measurement.keep_trace:
        # Pure subscriber: schedules nothing, so event counts and trace
        # digests are untouched.  Gated on keep_trace because the first
        # subscription flips the trace's hot-path ``enabled`` guard,
        # which a streaming (keep_trace=False) sweep relies on.
        built.makespan = MakespanTracker().attach(simulation.trace)

    if spec.playout.enabled and spec.measurement.keep_trace:
        # Same pure-subscriber contract as the makespan tracker.  The
        # spec and tracker are stashed on the simulation so the oracle's
        # rebuffer-accounting invariant can cross-check the counts.
        built.rebuffer = RebufferTracker(
            interval=spec.playout.interval,
            startup_delay=spec.playout.startup_delay,
        ).attach(simulation.trace)
        simulation.playout_spec = spec.playout
        simulation.rebuffer_tracker = built.rebuffer

    if spec.adapt.enabled:
        # Imported lazily for the same reason as the oracle below.
        from repro.adapt import LinkStateEstimator, TreeOptimizer

        up = spec.topology.inter_up_one_way
        down = spec.topology.inter_down_one_way
        inter = spec.topology.inter_one_way
        prior_rtt = (inter if up is None else up) + (inter if down is None else down)
        built.linkstate = LinkStateEstimator(
            hierarchy,
            ewma_alpha=spec.adapt.ewma_alpha,
            default_rtt_ms=prior_rtt,
        ).attach(simulation.trace)
        built.adapt = TreeOptimizer(
            simulation.sim,
            hierarchy,
            built.linkstate,
            simulation.trace,
            update_interval=spec.adapt.update_interval,
            hysteresis=spec.adapt.hysteresis,
            max_reparents=spec.adapt.max_reparents,
        )
        built.adapt.start()

    if spec.measurement.oracle:
        # Attach before probes/traffic so the oracle observes every
        # record, including build-time workload injections.  Imported
        # lazily: the spec layer must stay cheap to import in sweep
        # workers, and repro.validate pulls in the full oracle stack.
        from repro.validate.oracle import InvariantOracle

        built.oracle = InvariantOracle().attach(simulation)

    if spec.policy.kind == "stability":
        built.stability_agents = attach_stability(list(simulation.members.values()))

    if spec.measurement.probe_period is not None:
        period = spec.measurement.probe_period
        built.total_probe = OccupancyProbe(
            simulation.sim, simulation.buffer_occupancy, period=period
        )

        def sample_peak() -> float:
            per_node = simulation.occupancy_by_node()
            current = max(per_node.values()) if per_node else 0
            built._peak_node = max(built._peak_node, float(current))
            return float(current)

        built.node_probe = OccupancyProbe(simulation.sim, sample_peak, period=period)

    if spec.traffic.kind == "detect_all":
        built.data, built.holders = inject_detect_all(simulation, spec.traffic)
        built.message_count = 1
    elif spec.traffic.kind == "search_probe":
        built.data, built.bufferers, built.requester = inject_search_probe(
            simulation, spec.traffic
        )
        built.message_count = 1
    else:
        generator = traffic_generator_for(spec.traffic, spec, simulation.streams)
        if generator is not None:
            built.traffic = generator
            if spec.congestion.enabled:
                flush_fec = (
                    config.fec_mode != FEC_OFF
                    and spec.fec.flush_after is not None
                )

                def _on_stream_complete(now: float) -> None:
                    if flush_fec:
                        simulation.sim.at(
                            now + spec.fec.flush_after,
                            simulation.sender.flush_parity,
                        )

                controller = controller_for(config.congestion)
                built.cc_driver = CongestionDriver(
                    simulation.sim,
                    simulation.sender,
                    generator,
                    controller,
                    trace=simulation.trace,
                    on_complete=_on_stream_complete,
                )
                built.cc_driver.start()
                built.cc_reporters = install_feedback_reporters(
                    simulation.members.values(),
                    simulation.sender.node_id,
                    config.congestion.feedback_interval,
                )
                built.offered_count = generator.arrival_count()
                built.message_count = built.offered_count
            else:
                built.message_count = generator.schedule(simulation)

    if config.fec_mode != FEC_OFF and spec.fec.flush_after is not None:
        if (
            built.cc_driver is None
            and built.traffic is not None
            and built.message_count > 0
        ):
            simulation.sim.at(
                built.traffic.end_time() + spec.fec.flush_after,
                simulation.sender.flush_parity,
            )

    if spec.churn.kind == "random":
        duration = spec.churn.duration
        if duration <= 0:
            duration = spec.measurement.horizon or spec.measurement.duration
            if duration is None:
                raise ValueError("random churn needs a duration or a horizon")
        protect = [simulation.sender.node_id] if spec.churn.protect_sender else []
        built.churn = random_churn(
            simulation,
            simulation.streams.stream("scenario", "churn"),
            duration=duration,
            leave_rate=spec.churn.leave_rate,
            crash_rate=spec.churn.crash_rate,
            join_rate=spec.churn.join_rate,
            protect=protect,
        )

    if mobility_manager is not None:
        duration = spec.mobility.duration
        if duration <= 0:
            duration = spec.measurement.horizon or spec.measurement.duration
            if duration is None:
                raise ValueError("mobility needs a duration or a horizon")
        built.mobility = mobility_manager.attach(simulation, duration)
    return built
