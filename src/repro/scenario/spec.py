"""Declarative, serializable scenario specifications.

The paper's results are all products of one implicit tuple —
topology × traffic × loss × churn × buffer policy — which the rest of
the repository used to assemble by hand at every call site.
:class:`ScenarioSpec` makes that tuple a first-class value: a frozen
dataclass tree that

* round-trips losslessly through JSON (:meth:`ScenarioSpec.to_json` /
  :meth:`ScenarioSpec.from_json`) and pickle, so the sweep runner's
  process-pool backend can ship specs to workers and its result cache
  can key on them;
* has a stable :meth:`ScenarioSpec.digest` (SHA-256 of the canonical
  JSON form) that is identical across process restarts and platforms;
* materializes into a fully wired
  :class:`~repro.protocol.rrmp.RrmpSimulation` plus scheduled traffic
  and churn via :meth:`ScenarioSpec.build` (see
  :mod:`repro.scenario.materialize`).

Every sub-spec is a plain frozen dataclass discriminated by a ``kind``
string, so adding a new topology/traffic/loss family is one enum value
plus one materializer branch — not a new experiment module.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

TOPOLOGY_KINDS = ("single_region", "chain", "star", "balanced_tree")
TRAFFIC_KINDS = (
    "none", "uniform", "poisson", "burst", "ramp", "detect_all", "search_probe",
)
LOSS_KINDS = (
    "none", "bernoulli", "fixed_holders", "region_correlated", "gilbert_elliott",
    "bottleneck", "outage",
)
CHURN_KINDS = ("none", "random")
MOBILITY_KINDS = ("none", "waypoint")
PLAYOUT_KINDS = ("none", "cbr")
POLICY_KINDS = (
    "two_phase", "fixed_time", "stability", "hash", "never_discard", "no_buffer",
)
CONGESTION_KINDS = ("none", "tfmcc", "aimd")
ADAPT_MODES = ("off", "passive")

_S = TypeVar("_S")


def _require_kind(kind: str, allowed: Tuple[str, ...], what: str) -> None:
    if kind not in allowed:
        raise ValueError(f"{what} kind must be one of {allowed}, got {kind!r}")


@dataclass(frozen=True)
class TopologySpec:
    """Where the receivers are and how far apart (regions + latency).

    ``kind`` selects a :mod:`repro.net.topology` builder:

    * ``single_region`` — one region of ``n`` members (§4's setting);
    * ``chain`` — regions in a line with sizes ``sizes`` (Figure 1);
    * ``star`` — a root region of ``n`` members with one child region
      per entry of ``sizes``;
    * ``balanced_tree`` — ``depth`` levels of ``fanout`` children,
      ``n`` members per region.

    Latency rides along (one-way ms): ``intra_one_way`` within a
    region, ``inter_one_way`` per region hop — the paper's 10 ms
    intra-region RTT is the default.  ``inter_up_one_way`` /
    ``inter_down_one_way`` optionally split the inter-region delay by
    direction (netem-style asymmetry: hops toward an ancestor region
    vs hops away from it); ``None`` keeps the symmetric value.
    """

    kind: str = "single_region"
    n: int = 100
    sizes: Tuple[int, ...] = ()
    depth: int = 1
    fanout: int = 2
    intra_one_way: float = 5.0
    inter_one_way: float = 40.0
    inter_up_one_way: Optional[float] = None
    inter_down_one_way: Optional[float] = None

    def __post_init__(self) -> None:
        _require_kind(self.kind, TOPOLOGY_KINDS, "topology")
        if self.kind in ("single_region", "star", "balanced_tree") and self.n < 1:
            raise ValueError(f"topology n must be >= 1, got {self.n}")
        if self.kind == "chain" and not self.sizes:
            raise ValueError("chain topology requires non-empty sizes")
        if any(size < 1 for size in self.sizes):
            raise ValueError(f"region sizes must be >= 1, got {self.sizes}")
        if self.intra_one_way < 0 or self.inter_one_way < 0:
            raise ValueError("latencies must be >= 0")
        for name in ("inter_up_one_way", "inter_down_one_way"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 or None, got {value!r}")

    def member_count(self) -> int:
        """Total receivers the topology will contain."""
        if self.kind == "single_region":
            return self.n
        if self.kind == "chain":
            return sum(self.sizes)
        if self.kind == "star":
            return self.n + sum(self.sizes)
        regions = sum(self.fanout ** level for level in range(self.depth + 1))
        return self.n * regions


@dataclass(frozen=True)
class TrafficSpec:
    """What the sender (or the workload injector) does over time.

    Stream kinds schedule multicasts through the sender:

    * ``uniform`` — ``count`` messages every ``interval`` ms from
      ``start``;
    * ``poisson`` — a Poisson process of ``rate`` msgs/ms over
      ``duration`` ms (0 = until the measurement horizon);
    * ``burst`` — explicit ``(time, size)`` bursts;
    * ``ramp`` — ``count`` messages whose inter-send gap shrinks
      linearly from ``initial_interval`` to ``final_interval``
      (overload-onset workloads).

    Probe kinds reproduce the paper's §4 single-message setups:

    * ``detect_all`` — one message held by ``holders`` random members;
      every other member detects the loss simultaneously (Figures 6/7);
    * ``search_probe`` — one message every root-region member received
      and exactly ``bufferers`` of them still buffer; a downstream
      member's remote request must find a bufferer (Figures 8/9).
    """

    kind: str = "none"
    count: int = 0
    interval: float = 25.0
    start: float = 0.0
    rate: float = 1.0
    duration: float = 0.0
    bursts: Tuple[Tuple[float, int], ...] = ()
    initial_interval: float = 50.0
    final_interval: float = 5.0
    holders: int = 1
    bufferers: int = 1

    def __post_init__(self) -> None:
        _require_kind(self.kind, TRAFFIC_KINDS, "traffic")
        if self.kind in ("uniform", "ramp") and self.count < 0:
            raise ValueError(f"traffic count must be >= 0, got {self.count}")
        if self.kind == "uniform" and self.interval <= 0:
            raise ValueError(f"traffic interval must be > 0, got {self.interval!r}")
        if self.kind == "poisson" and self.rate <= 0:
            raise ValueError(f"traffic rate must be > 0, got {self.rate!r}")
        if self.kind == "ramp" and (
            self.initial_interval <= 0 or self.final_interval <= 0
        ):
            raise ValueError("ramp intervals must be > 0")
        if self.kind == "burst":
            for burst_time, burst_size in self.bursts:
                if burst_time < 0:
                    raise ValueError(f"burst time must be >= 0, got {burst_time!r}")
                if burst_size < 1:
                    raise ValueError(f"burst size must be >= 1, got {burst_size}")
        if self.kind == "detect_all" and self.holders < 1:
            raise ValueError(f"detect_all requires holders >= 1, got {self.holders}")
        if self.kind == "search_probe" and self.bufferers < 0:
            raise ValueError(f"bufferers must be >= 0, got {self.bufferers}")


@dataclass(frozen=True)
class LossSpec:
    """Where messages get lost.

    * ``bernoulli`` — each receiver independently misses a multicast
      with probability ``p`` (the paper's §4 model, applied at
      IP-multicast time);
    * ``fixed_holders`` — exactly ``k`` random receivers get each
      multicast;
    * ``region_correlated`` — whole regions miss a message with
      ``region_loss``; survivors additionally lose independently with
      ``receiver_loss``;
    * ``gilbert_elliott`` — a two-state (good/bad) Markov channel per
      directed link, applied to every data packet in the transport
      (initial multicast *and* repairs): bursty wireless-style loss;
    * ``bottleneck`` — a capacity-constrained shared link of
      ``capacity`` packet deliveries per second (counted per-receiver,
      so one multicast to *n* members spends *n* units) measured over
      a trailing ``window`` ms: data packets (multicasts *and*
      repairs) drop with the excess ratio beyond capacity, plus an
      independent ``receiver_loss`` floor.  The congestion-control
      ablations run on this model — it is the only one where offered
      load feeds back into loss.
    * ``outage`` — a correlated whole-region partition: during
      ``[outage_start, outage_start + outage_duration)`` the last
      ``outage_regions`` non-sender regions are cut off from the rest
      of the tree (every packet — data *and* control — crossing the
      partition boundary drops); after the heal the stranded members
      recover their accumulated gaps through normal session-message
      gap detection.  An optional independent ``receiver_loss`` floor
      applies to data packets throughout.
    """

    kind: str = "none"
    p: float = 0.0
    k: int = 0
    region_loss: float = 0.0
    receiver_loss: float = 0.0
    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.3
    p_good: float = 0.0
    p_bad: float = 0.5
    capacity: float = 0.0
    window: float = 250.0
    outage_start: float = 0.0
    outage_duration: float = 0.0
    outage_regions: int = 1

    def __post_init__(self) -> None:
        _require_kind(self.kind, LOSS_KINDS, "loss")
        for name in ("p", "region_loss", "receiver_loss",
                     "p_good_to_bad", "p_bad_to_good", "p_good", "p_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"loss {name} must be in [0, 1], got {value!r}")
        if self.kind == "fixed_holders" and self.k < 0:
            raise ValueError(f"loss k must be >= 0, got {self.k}")
        if self.kind == "bottleneck" and self.capacity <= 0:
            raise ValueError(
                f"bottleneck loss needs capacity > 0 msgs/s, got {self.capacity!r}"
            )
        if self.window <= 0:
            raise ValueError(f"loss window must be > 0 ms, got {self.window!r}")
        if self.outage_start < 0 or self.outage_duration < 0:
            raise ValueError("outage times must be >= 0")
        if self.outage_regions < 1:
            raise ValueError(
                f"outage_regions must be >= 1, got {self.outage_regions}"
            )
        if self.kind == "outage" and self.outage_duration <= 0:
            raise ValueError(
                f"outage loss needs outage_duration > 0 ms, got {self.outage_duration!r}"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Membership dynamics: Poisson leave/crash/join over a window.

    Rates are events per millisecond over ``[0, duration]`` (0 =
    until the measurement horizon).  ``protect_sender`` keeps the
    sender alive — without it a crashed sender ends the session.
    """

    kind: str = "none"
    leave_rate: float = 0.0
    crash_rate: float = 0.0
    join_rate: float = 0.0
    duration: float = 0.0
    protect_sender: bool = True

    def __post_init__(self) -> None:
        _require_kind(self.kind, CHURN_KINDS, "churn")
        for name in ("leave_rate", "crash_rate", "join_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"churn {name} must be >= 0")
        if self.duration < 0:
            raise ValueError(f"churn duration must be >= 0, got {self.duration!r}")


@dataclass(frozen=True)
class MobilitySpec:
    """Waypoint mobility: receivers roam a square field and hand off.

    ``kind`` selects the model:

    * ``none`` — receivers stay where the topology put them (the
      default; byte-identical to historical behaviour, no mobility
      manager is built);
    * ``waypoint`` — every receiver walks toward a waypoint at
      ``speed`` field-units per ms, re-drawn from a deterministic
      per-(node, epoch) seed when reached.  Each region owns a fixed
      anchor point; every ``epoch`` ms each node re-evaluates its
      nearest anchor and, when that differs from its current region,
      gracefully leaves (§3.2 handoff — long-term buffers drain
      through the handoff path) and re-joins the new region.

    ``area`` is the field side length, ``duration`` bounds movement
    (0 = until the measurement horizon/duration), ``distance_loss``
    adds per-link data loss growing with sender/receiver distance
    (0 at co-location, ``distance_loss`` at full-field separation),
    and ``protect_sender`` pins the sender so the session survives.
    """

    kind: str = "none"
    speed: float = 4.0
    epoch: float = 50.0
    area: float = 1000.0
    duration: float = 0.0
    distance_loss: float = 0.0
    protect_sender: bool = True

    def __post_init__(self) -> None:
        _require_kind(self.kind, MOBILITY_KINDS, "mobility")
        if self.speed < 0:
            raise ValueError(f"mobility speed must be >= 0, got {self.speed!r}")
        if self.epoch <= 0:
            raise ValueError(f"mobility epoch must be > 0 ms, got {self.epoch!r}")
        if self.area <= 0:
            raise ValueError(f"mobility area must be > 0, got {self.area!r}")
        if self.duration < 0:
            raise ValueError(
                f"mobility duration must be >= 0, got {self.duration!r}"
            )
        if not 0.0 <= self.distance_loss <= 1.0:
            raise ValueError(
                f"mobility distance_loss must be in [0, 1], got {self.distance_loss!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether a real mobility model (not ``"none"``) is requested."""
        return self.kind != "none"


@dataclass(frozen=True)
class PlayoutSpec:
    """Streaming playback deadlines per receiver (see :mod:`repro.metrics.rebuffer`).

    * ``none`` — no playout clocks (the default; byte-identical to
      historical behaviour, no rebuffer tracker is attached);
    * ``cbr`` — each receiver plays sequence numbers in order from its
      first delivery: playback starts ``startup_delay`` ms after the
      first arrival and consumes one sequence number every
      ``interval`` ms.  A frame arriving after its deadline counts one
      rebuffer (stall) event and its lateness as stall time, and
      shifts all later deadlines by the stall (playback pauses).
    """

    kind: str = "none"
    interval: float = 25.0
    startup_delay: float = 100.0

    def __post_init__(self) -> None:
        _require_kind(self.kind, PLAYOUT_KINDS, "playout")
        if self.interval <= 0:
            raise ValueError(f"playout interval must be > 0 ms, got {self.interval!r}")
        if self.startup_delay < 0:
            raise ValueError(
                f"playout startup_delay must be >= 0, got {self.startup_delay!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether playout clocks (not ``"none"``) are requested."""
        return self.kind != "none"


@dataclass(frozen=True)
class PolicySpec:
    """Buffer policy plus the protocol knobs of :class:`RrmpConfig`.

    ``kind`` selects the buffer-management family:

    * ``two_phase`` — the paper's contribution (short-term feedback
      phase + randomized long-term selection), parameterized by ``c``
      (expected long-term bufferers), ``idle_threshold`` (T) and
      ``long_term_ttl``;
    * ``fixed_time`` — Bimodal-Multicast-style hold for ``hold_time``;
    * ``stability`` — gossip stability detection (discard only when
      globally stable);
    * ``hash`` — the authors' NGC'99 deterministic hash selection with
      expected copy count ``c``;
    * ``never_discard`` / ``no_buffer`` — the §1 strawmen.

    The remaining fields mirror :class:`RrmpConfig` so one spec pins
    every protocol tunable an experiment varies.
    """

    kind: str = "two_phase"
    c: float = 6.0
    idle_threshold: float = 40.0
    long_term_ttl: Optional[float] = None
    hold_time: float = 200.0
    remote_lambda: float = 1.0
    session_interval: Optional[float] = 50.0
    timer_factor: float = 1.0
    max_recovery_time: Optional[float] = None
    max_search_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        _require_kind(self.kind, POLICY_KINDS, "policy")
        # Range validation is delegated to RrmpConfig at build time;
        # only policy-family fields are checked here.
        if self.c < 0:
            raise ValueError(f"policy c must be >= 0, got {self.c!r}")
        if self.hold_time <= 0:
            raise ValueError(f"hold_time must be > 0, got {self.hold_time!r}")


@dataclass(frozen=True)
class FecSpec:
    """Erasure-coded repair (see :mod:`repro.fec`).

    ``flush_after`` schedules a tail-block parity flush that many ms
    after the traffic stream ends (``None`` = never flush).
    """

    mode: str = "off"
    block_size: int = 8
    parity: int = 1
    flush_after: Optional[float] = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("off", "proactive", "reactive"):
            raise ValueError(f"fec mode must be off/proactive/reactive, got {self.mode!r}")
        if self.flush_after is not None and self.flush_after < 0:
            raise ValueError("flush_after must be >= 0 or None")


@dataclass(frozen=True)
class CongestionSpec:
    """Congestion control for the sender (see :mod:`repro.cc`).

    ``controller`` selects the control law:

    * ``none`` — open loop (the default; byte-identical to historical
      behaviour, feedback reporters stay unarmed);
    * ``tfmcc`` — NORM-style TCP-friendly rate from the worst
      receiver's loss/RTT feedback;
    * ``aimd`` — additive-increase / multiplicative-decrease baseline.

    The remaining fields mirror
    :class:`~repro.protocol.config.CongestionConfig`: ``target_loss``
    is the steering point, ``min_rate``/``max_rate`` bound the rate in
    messages per second, ``feedback_interval`` paces the receivers'
    reports (ms), and ``parity_min``/``parity_max`` bound adaptive-FEC
    parity shifting (``parity_max=None`` disables it).
    """

    controller: str = "none"
    target_loss: float = 0.05
    min_rate: float = 1.0
    max_rate: float = 1000.0
    feedback_interval: float = 50.0
    parity_min: Optional[int] = None
    parity_max: Optional[int] = None

    def __post_init__(self) -> None:
        _require_kind(self.controller, CONGESTION_KINDS, "congestion controller")
        # Range validation is delegated to CongestionConfig at build
        # time; the kind check here keeps bad specs unserializable.

    @property
    def enabled(self) -> bool:
        """Whether a real controller (not ``"none"``) is requested."""
        return self.controller != "none"


@dataclass(frozen=True)
class AdaptSpec:
    """Adaptive repair-hierarchy re-optimization (see :mod:`repro.adapt`).

    ``mode`` selects the subsystem:

    * ``off`` — the hierarchy stays exactly as built (the default;
      byte-identical to historical behaviour, no optimizer scheduled);
    * ``passive`` — a link-state estimator learns per-region-pair loss
      and RTT purely from existing recovery/feedback traffic, and a
      periodic optimizer re-parents regions to minimize the predicted
      repair makespan (per-hop ETX·RTT path cost).

    ``update_interval`` paces the optimizer (ms between passes);
    ``hysteresis`` is the minimum relative path-cost improvement a
    re-parent must promise (0.1 = 10% better); ``max_reparents`` is a
    hard per-run budget bounding tree-maintenance churn (at most one
    re-parent is applied per pass as well); ``ewma_alpha`` is the
    link-state smoothing factor.
    """

    mode: str = "off"
    update_interval: float = 250.0
    hysteresis: float = 0.1
    max_reparents: int = 8
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        _require_kind(self.mode, ADAPT_MODES, "adapt")
        if self.update_interval <= 0:
            raise ValueError(
                f"adapt update_interval must be > 0 ms, got {self.update_interval!r}"
            )
        if self.hysteresis < 0:
            raise ValueError(f"adapt hysteresis must be >= 0, got {self.hysteresis!r}")
        if self.max_reparents < 0:
            raise ValueError(
                f"adapt max_reparents must be >= 0, got {self.max_reparents}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"adapt ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the adaptive subsystem (not ``"off"``) is requested."""
        return self.mode != "off"


@dataclass(frozen=True)
class MeasurementSpec:
    """How long to run and what to record.

    ``horizon`` runs until that absolute time; otherwise ``duration``
    runs for that long; with neither, the run drains the event queue.
    ``drain=True`` additionally drains *after* a bounded run (letting
    in-flight recovery settle); sessions are stopped before draining so
    the queue can empty.  ``probe_period`` turns on the occupancy
    probes (total and per-node peak) every that many ms.
    ``oracle=True`` attaches the protocol invariant oracle
    (:mod:`repro.validate`) for the whole run and finalizes it at the
    measurement end; default off, so experiment outputs are untouched
    unless a run opts into validation.
    """

    horizon: Optional[float] = None
    duration: Optional[float] = None
    drain: bool = False
    probe_period: Optional[float] = None
    keep_trace: bool = True
    oracle: bool = False

    def __post_init__(self) -> None:
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration!r}")
        if self.probe_period is not None and self.probe_period <= 0:
            raise ValueError(f"probe_period must be > 0, got {self.probe_period!r}")


def _from_payload(cls: Type[_S], payload: Mapping[str, Any], what: str) -> _S:
    known = {spec_field.name for spec_field in fields(cls)}  # type: ignore[arg-type]
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown {what} fields: {', '.join(unknown)}")
    return cls(**{key: _tupled(value) for key, value in payload.items()})


def _tupled(value: Any) -> Any:
    """JSON arrays come back as lists; specs store tuples."""
    if isinstance(value, list):
        return tuple(_tupled(item) for item in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """The complete declarative description of one simulation run."""

    name: str = "scenario"
    seed: int = 0
    topology: TopologySpec = field(default_factory=TopologySpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    loss: LossSpec = field(default_factory=LossSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    fec: FecSpec = field(default_factory=FecSpec)
    congestion: CongestionSpec = field(default_factory=CongestionSpec)
    adapt: AdaptSpec = field(default_factory=AdaptSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    playout: PlayoutSpec = field(default_factory=PlayoutSpec)
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    description: str = ""

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready plain-dict form.

        The ``congestion``, ``adapt``, ``mobility`` and ``playout``
        nodes are omitted while they equal their defaults (controller
        ``"none"`` / mode ``"off"`` / kind ``"none"``), and the
        bottleneck-only loss fields (``capacity``, ``window``), the
        outage-only loss fields plus the asymmetric-latency topology
        fields are omitted at their defaults: pre-existing specs keep
        their serialized form — and therefore their :meth:`digest` —
        exactly.
        """
        payload = asdict(self)
        if self.congestion == CongestionSpec():
            del payload["congestion"]
        if self.adapt == AdaptSpec():
            del payload["adapt"]
        if self.mobility == MobilitySpec():
            del payload["mobility"]
        if self.playout == PlayoutSpec():
            del payload["playout"]
        defaults = LossSpec()
        for name in ("capacity", "window",
                     "outage_start", "outage_duration", "outage_regions"):
            if payload["loss"][name] == getattr(defaults, name):
                del payload["loss"][name]
        topo_defaults = TopologySpec()
        for name in ("inter_up_one_way", "inter_down_one_way"):
            if payload["topology"][name] == getattr(topo_defaults, name):
                del payload["topology"][name]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (lists revert to tuples)."""
        sub_specs = {
            "topology": TopologySpec,
            "traffic": TrafficSpec,
            "loss": LossSpec,
            "churn": ChurnSpec,
            "policy": PolicySpec,
            "fec": FecSpec,
            "congestion": CongestionSpec,
            "adapt": AdaptSpec,
            "mobility": MobilitySpec,
            "playout": PlayoutSpec,
            "measurement": MeasurementSpec,
        }
        kwargs: Dict[str, Any] = {}
        for key, value in payload.items():
            if key in sub_specs:
                kwargs[key] = _from_payload(sub_specs[key], value, key)
            elif key in ("name", "seed", "description"):
                kwargs[key] = value
            else:
                raise ValueError(f"unknown scenario field: {key!r}")
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Lossless JSON serialization."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`; ``from_json(to_json(s)) == s``."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — stable across process
        restarts, platforms and Python versions, so sweep caches and
        result artifacts can key on it."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with top-level fields replaced (``seed=...`` etc.)."""
        return replace(self, **changes)

    def build(self):
        """Materialize into a :class:`repro.scenario.materialize.BuiltScenario`.

        Constructs the :class:`~repro.protocol.rrmp.RrmpSimulation`,
        attaches probes, and schedules traffic and churn.  Imported
        lazily to keep this module dependency-free (specs must stay
        picklable and cheap to import in worker processes).
        """
        from repro.scenario.materialize import build_scenario

        return build_scenario(self)

    def run(self):
        """Build and run to the measurement end; returns the built scenario."""
        return self.build().run()
