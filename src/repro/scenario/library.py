"""The built-in scenario library.

Two layers:

* **Parameterized spec factories** (``initial_holders_spec``,
  ``search_spec``, ``scale_spec``) — the declarative form of the
  paper's §4 workloads, consumed by
  :mod:`repro.workloads.scenarios` (whose ``run_*`` helpers wrap them
  in result objects) and by the registered defaults below.
* **Registered named scenarios** — ``@register_scenario`` entries the
  ``scenarios`` CLI can list/describe/run.  Beyond the three §4
  workloads, the library ships the configurations the related work
  motivates and the old constructor sprawl made painful to express:
  bursty Gilbert–Elliott WAN links (Seok & Turletti's 802.11 setting),
  a linearly accelerating overload-onset stream, grid-style
  heterogeneous region sizes (Hudzia & Petiton), and a flash-crowd
  join storm.
"""

from __future__ import annotations

from typing import Optional

from repro.scenario.builder import scenario
from repro.scenario.registry import register_scenario
from repro.scenario.spec import (
    LossSpec,
    MeasurementSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)


# ----------------------------------------------------------------------
# Parameterized §4 workload specs
# ----------------------------------------------------------------------
def initial_holders_spec(
    n: int,
    k: int,
    seed: int = 0,
    idle_threshold: float = 40.0,
    long_term_c: float = 0.0,
    rtt: float = 10.0,
    run_for: Optional[float] = None,
    max_recovery_time: Optional[float] = 2_000.0,
) -> ScenarioSpec:
    """The Figure 6/7 workload: *k* of *n* members hold a fresh message,
    everyone else detects the loss simultaneously at t = 0."""
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n], got k={k}, n={n}")
    return ScenarioSpec(
        name="initial_holders",
        seed=seed,
        description="Fig 6/7: k initial holders, feedback-based buffering",
        topology=TopologySpec(kind="single_region", n=n, intra_one_way=rtt / 2.0),
        traffic=TrafficSpec(kind="detect_all", holders=k),
        policy=PolicySpec(
            idle_threshold=idle_threshold,
            c=long_term_c,
            session_interval=None,
            max_recovery_time=max_recovery_time,
        ),
        measurement=MeasurementSpec(
            duration=run_for, drain=run_for is None
        ),
    )


def search_spec(
    n: int,
    bufferers: int,
    seed: int = 0,
    intra_one_way: float = 5.0,
    inter_one_way: float = 500.0,
    horizon: float = 2_000.0,
) -> ScenarioSpec:
    """The Figure 8/9 workload: *bufferers* long-term holders in an
    *n*-member region, one downstream requester searching for them."""
    if not 0 <= bufferers <= n:
        raise ValueError(f"bufferers must be in [0, n], got {bufferers}")
    return ScenarioSpec(
        name="search",
        seed=seed,
        description="Fig 8/9: randomized bufferer search from downstream",
        topology=TopologySpec(
            kind="chain", sizes=(n, 1),
            intra_one_way=intra_one_way, inter_one_way=inter_one_way,
        ),
        traffic=TrafficSpec(kind="search_probe", bufferers=bufferers),
        policy=PolicySpec(session_interval=None, remote_lambda=1.0),
        measurement=MeasurementSpec(duration=horizon),
    )


def scale_spec(
    regions: int = 10,
    members_per_region: int = 100,
    messages: int = 20,
    send_interval: float = 25.0,
    loss_rate: float = 0.05,
    seed: int = 0,
    intra_one_way: float = 5.0,
    inter_one_way: float = 50.0,
    horizon: float = 3_000.0,
    max_recovery_time: float = 2_000.0,
) -> ScenarioSpec:
    """The north-star stress workload: a big lossy multi-region group."""
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    if max_recovery_time >= horizon:
        raise ValueError(
            "max_recovery_time must be shorter than the horizon, or give-ups "
            f"can never be observed (got {max_recovery_time} >= {horizon})"
        )
    return ScenarioSpec(
        name="scale",
        seed=seed,
        description="North-star stress: 10x100 members, lossy stream",
        topology=TopologySpec(
            kind="star",
            n=members_per_region,
            sizes=tuple([members_per_region] * (regions - 1)),
            intra_one_way=intra_one_way,
            inter_one_way=inter_one_way,
        ),
        traffic=TrafficSpec(
            kind="uniform", count=messages, interval=send_interval, start=1.0
        ),
        loss=LossSpec(kind="bernoulli", p=loss_rate),
        policy=PolicySpec(max_recovery_time=max_recovery_time),
        measurement=MeasurementSpec(duration=horizon),
    )


# ----------------------------------------------------------------------
# Registered named scenarios
# ----------------------------------------------------------------------
@register_scenario(
    "initial_holders",
    description="Fig 6/7 workload: 10 of 100 members hold a message, "
    "feedback buffering serves the rest",
)
def _initial_holders() -> ScenarioSpec:
    return initial_holders_spec(n=100, k=10)


@register_scenario(
    "search",
    description="Fig 8/9 workload: a downstream request searches 10 "
    "bufferers in a 100-member region",
)
def _search() -> ScenarioSpec:
    return search_spec(n=100, bufferers=10)


@register_scenario(
    "scale",
    description="north-star stress: 10 regions x 100 members, 20 "
    "messages at 5% loss",
)
def _scale() -> ScenarioSpec:
    return scale_spec()


@register_scenario(
    "wan_burst_loss",
    description="Gilbert-Elliott bursty link loss on a two-region WAN "
    "(802.11-style correlated drops)",
)
def _wan_burst_loss() -> ScenarioSpec:
    return (
        scenario("wan_burst_loss")
        .describe("bursty two-state link loss; repairs drop too")
        .chain(20, 20)
        .latency(intra=5.0, inter=40.0)
        .uniform(30, 10.0, start=1.0)
        .gilbert_elliott(p_good_to_bad=0.02, p_bad_to_good=0.25, p_bad=0.8)
        .protocol(remote_lambda=2.0, max_recovery_time=1_500.0)
        .measure(horizon=2_500.0)
    ).spec()


@register_scenario(
    "overload_onset",
    description="RampStream send rate climbing 25 ms -> 2.5 ms gaps "
    "while 10% of receivers miss each message",
)
def _overload_onset() -> ScenarioSpec:
    return (
        scenario("overload_onset")
        .describe("linearly accelerating stream into a lossy region")
        .single_region(50)
        .ramp(40, initial_interval=25.0, final_interval=2.5, start=1.0)
        .loss(p=0.10)
        .protocol(max_recovery_time=1_500.0)
        .measure(horizon=2_500.0)
    ).spec()


@register_scenario(
    "overload_onset_cc",
    description="overload_onset with a TFMCC controller pacing the "
    "sender off worst-receiver feedback",
)
def _overload_onset_cc() -> ScenarioSpec:
    return (
        scenario("overload_onset_cc")
        .describe("accelerating stream, but the sender yields to feedback")
        .single_region(50)
        .ramp(40, initial_interval=25.0, final_interval=2.5, start=1.0)
        .loss(p=0.10)
        .congestion("tfmcc", target_loss=0.02, min_rate=5.0,
                    max_rate=400.0, feedback_interval=100.0)
        .protocol(max_recovery_time=1_500.0)
        .measure(horizon=2_500.0)
    ).spec()


@register_scenario(
    "heterogeneous_regions",
    description="grid-style hierarchy with very unequal region sizes "
    "and regional losses",
)
def _heterogeneous_regions() -> ScenarioSpec:
    return (
        scenario("heterogeneous_regions")
        .describe("50/12/4-member chain; whole regions miss messages")
        .chain(50, 12, 4)
        .latency(intra=5.0, inter=80.0)
        .uniform(20, 25.0, start=1.0)
        .regional_loss(region=0.2, receiver=0.05)
        .protocol(remote_lambda=2.0, max_recovery_time=2_000.0)
        .measure(horizon=3_000.0)
    ).spec()


@register_scenario(
    "flash_crowd",
    description="join storm: fresh members flood in mid-stream while "
    "the sender keeps multicasting",
)
def _flash_crowd() -> ScenarioSpec:
    return (
        scenario("flash_crowd")
        .describe("high join rate plus background leaves under load")
        .regions(3, 20)
        .uniform(24, 20.0, start=1.0)
        .loss(p=0.05)
        .churn(join_rate=0.05, leave_rate=0.01, duration=500.0)
        .protocol(max_recovery_time=1_500.0)
        .measure(horizon=2_500.0)
    ).spec()


@register_scenario(
    "mobile_handoff",
    description="waypoint mobility: members roam between 3 regions, "
    "handing buffers off through the §3.2 long-term path",
)
def _mobile_handoff() -> ScenarioSpec:
    return (
        scenario("mobile_handoff")
        .describe("random-waypoint movement with distance-scaled loss; "
                  "region changes trigger leave/rejoin handoffs")
        .regions(3, 10)
        .uniform(20, 25.0, start=1.0)
        .loss(p=0.02)
        .mobility(speed=2.0, epoch=50.0, distance_loss=0.10)
        .protocol(max_recovery_time=1_200.0)
        .measure(horizon=2_000.0)
    ).spec()


@register_scenario(
    "streaming_playback",
    description="CBR stream judged against per-receiver playout "
    "deadlines; stalls are counted as rebuffer events",
)
def _streaming_playback() -> ScenarioSpec:
    return (
        scenario("streaming_playback")
        .describe("25 ms frame cadence into a lossy two-region WAN; "
                  "rebuffer tracker scores playback smoothness")
        .chain(25, 25)
        .latency(intra=5.0, inter=60.0)
        .uniform(40, 25.0, start=1.0)
        .loss(p=0.08)
        .playout(interval=25.0, startup_delay=50.0)
        .protocol(max_recovery_time=1_200.0)
        .measure(horizon=2_500.0)
    ).spec()


@register_scenario(
    "regional_outage",
    description="whole-region partition mid-stream: one region drops "
    "off the WAN, heals, and recovers its accumulated gaps",
)
def _regional_outage() -> ScenarioSpec:
    return (
        scenario("regional_outage")
        .describe("inter-region links to one region black-holed for "
                  "300 ms; mass gap recovery after the heal")
        .regions(3, 15)
        .uniform(24, 20.0, start=1.0)
        .outage(start=150.0, duration=300.0, regions=1, receiver_loss=0.02)
        .protocol(max_recovery_time=1_500.0)
        .measure(horizon=2_800.0)
    ).spec()
