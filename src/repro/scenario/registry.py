"""Named-scenario registry.

``@register_scenario`` turns a zero-argument spec factory into a named,
discoverable scenario: the ``scenarios`` CLI lists/describes/runs it,
tests iterate it, and the sweep runner can cache on its digest.  The
factory is re-invoked per lookup so callers always get a fresh,
immutable :class:`~repro.scenario.spec.ScenarioSpec` (safe to
``replace`` seeds or knobs without aliasing).

Usage::

    @register_scenario("wan_burst_loss", description="bursty WAN links")
    def wan_burst_loss() -> ScenarioSpec:
        return scenario("wan_burst_loss").chain(20, 20).gilbert_elliott().spec()
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Union

from repro.scenario.builder import ScenarioBuilder
from repro.scenario.spec import ScenarioSpec

SpecFactory = Callable[[], Union[ScenarioSpec, ScenarioBuilder]]


@dataclass(frozen=True)
class RegisteredScenario:
    """One named entry: its factory plus catalogue metadata."""

    name: str
    description: str
    factory: SpecFactory

    def spec(self) -> ScenarioSpec:
        """A fresh spec carrying the registered name/description."""
        produced = self.factory()
        if isinstance(produced, ScenarioBuilder):
            produced = produced.spec()
        if not isinstance(produced, ScenarioSpec):
            raise TypeError(
                f"scenario factory {self.name!r} returned {type(produced).__name__}, "
                "expected ScenarioSpec or ScenarioBuilder"
            )
        changes = {}
        if produced.name != self.name:
            changes["name"] = self.name
        if self.description and not produced.description:
            changes["description"] = self.description
        return replace(produced, **changes) if changes else produced


_REGISTRY: Dict[str, RegisteredScenario] = {}


def register_scenario(
    name: Optional[str] = None, description: str = ""
) -> Callable[[SpecFactory], SpecFactory]:
    """Decorator registering a spec factory under *name* (default: the
    function's name)."""

    def decorate(factory: SpecFactory) -> SpecFactory:
        scenario_name = name if name is not None else factory.__name__
        if scenario_name in _REGISTRY:
            raise ValueError(f"scenario {scenario_name!r} already registered")
        doc = description
        if not doc:
            lines = (factory.__doc__ or "").strip().splitlines()
            doc = lines[0] if lines else ""
        _REGISTRY[scenario_name] = RegisteredScenario(
            name=scenario_name, description=doc, factory=factory
        )
        return factory

    return decorate


def _ensure_library() -> None:
    """The built-in scenario library registers itself on import; pull it
    in lazily so registry lookups never depend on import order."""
    import repro.scenario.library  # noqa: F401


def scenario_names() -> List[str]:
    """All registered names, in registration order."""
    _ensure_library()
    return list(_REGISTRY)


def registered_scenarios() -> Dict[str, RegisteredScenario]:
    """A snapshot of the registry (name → entry)."""
    _ensure_library()
    return dict(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh spec for *name*; raises ``KeyError`` with the catalogue."""
    _ensure_library()
    try:
        entry = _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    return entry.spec()
