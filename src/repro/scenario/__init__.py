"""Declarative scenario API (one serializable spec per simulation run).

The package makes the implicit experiment tuple — topology × traffic ×
loss × churn × buffer policy — a first-class, serializable value:

* :mod:`repro.scenario.spec` — the frozen dataclass tree
  (:class:`ScenarioSpec` and its sub-specs) with JSON/pickle round
  trips and a stable digest;
* :mod:`repro.scenario.builder` — the fluent :func:`scenario` builder;
* :mod:`repro.scenario.materialize` — :func:`build_scenario`, turning
  a spec into a wired :class:`~repro.protocol.rrmp.RrmpSimulation`
  with traffic, churn, probes and FEC flush scheduled;
* :mod:`repro.scenario.registry` / :mod:`repro.scenario.library` —
  named scenarios (``@register_scenario``) behind the ``scenarios``
  CLI subcommand.

Quickstart::

    from repro.scenario import scenario

    built = (
        scenario("demo", seed=7)
        .regions(3, 20)
        .uniform(10, 25.0)
        .loss(p=0.05)
        .policy("two_phase", c=4.0)
        .measure(horizon=1_500.0)
        .run()
    )
    print(built.summary())
"""

from repro.scenario.builder import ScenarioBuilder, scenario
from repro.scenario.materialize import BuiltScenario, build_scenario
from repro.scenario.registry import (
    RegisteredScenario,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_names,
)
from repro.scenario.spec import (
    AdaptSpec,
    ChurnSpec,
    CongestionSpec,
    FecSpec,
    LossSpec,
    MeasurementSpec,
    MobilitySpec,
    PlayoutSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)

__all__ = [
    "AdaptSpec",
    "BuiltScenario",
    "ChurnSpec",
    "CongestionSpec",
    "FecSpec",
    "LossSpec",
    "MeasurementSpec",
    "MobilitySpec",
    "PlayoutSpec",
    "PolicySpec",
    "RegisteredScenario",
    "ScenarioBuilder",
    "ScenarioSpec",
    "TopologySpec",
    "TrafficSpec",
    "build_scenario",
    "get_scenario",
    "register_scenario",
    "registered_scenarios",
    "scenario",
    "scenario_names",
]
