"""Fluent construction of :class:`~repro.scenario.spec.ScenarioSpec`.

The builder is sugar over the frozen spec tree: every method replaces
one sub-spec and returns ``self``, so a complete scenario reads as one
chain::

    from repro.scenario import scenario

    built = (
        scenario("wan-demo", seed=7)
        .regions(5, 100)
        .poisson(rate=2.0)
        .loss(p=0.01)
        .policy("two_phase", c=3.0)
        .measure(horizon=2_000.0)
        .build()
    )

``spec()`` returns the immutable value (serialize it, register it,
ship it to a worker); ``build()`` materializes it; ``run()`` builds and
runs it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.scenario.materialize import BuiltScenario
from repro.scenario.spec import (
    AdaptSpec,
    ChurnSpec,
    CongestionSpec,
    FecSpec,
    LossSpec,
    MobilitySpec,
    PlayoutSpec,
    ScenarioSpec,
    TrafficSpec,
)

#: Sentinel distinguishing "not passed" from an explicit ``None`` for
#: knobs where ``None`` is meaningful (session_interval, horizon, ttl).
_UNSET = object()


class ScenarioBuilder:
    """Accumulates a :class:`ScenarioSpec` through chained calls."""

    def __init__(self, name: str = "scenario", seed: int = 0) -> None:
        self._spec = ScenarioSpec(name=str(name), seed=int(seed))

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def single_region(self, n: int) -> "ScenarioBuilder":
        """One region of *n* members (the paper's §4 setting)."""
        return self._topology(kind="single_region", n=int(n))

    def regions(self, count: int, size: int) -> "ScenarioBuilder":
        """*count* equal regions of *size*: a root plus ``count - 1``
        children hanging off it (the north-star multi-region layout)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return self._topology(
            kind="star", n=int(size), sizes=tuple([int(size)] * (count - 1))
        )

    def chain(self, *sizes: int) -> "ScenarioBuilder":
        """Regions in a line, region *i* parenting region *i + 1*."""
        return self._topology(kind="chain", sizes=tuple(int(s) for s in sizes))

    def star(self, root: int, *leaves: int) -> "ScenarioBuilder":
        """A root region of *root* members with one child per leaf size."""
        return self._topology(
            kind="star", n=int(root), sizes=tuple(int(s) for s in leaves)
        )

    def tree(self, depth: int, fanout: int, region_size: int) -> "ScenarioBuilder":
        """A balanced hierarchy: *fanout* children per region, *depth* levels."""
        return self._topology(
            kind="balanced_tree", depth=int(depth), fanout=int(fanout),
            n=int(region_size),
        )

    def latency(self, intra: Optional[float] = None,
                inter: Optional[float] = None,
                inter_up=_UNSET, inter_down=_UNSET) -> "ScenarioBuilder":
        """One-way delays (ms): within a region and per region hop.

        *inter_up* / *inter_down* optionally split the per-hop delay by
        direction (toward an ancestor region vs away from it), the
        netem-style asymmetry; pass ``None`` to reset to symmetric.
        """
        changes = {}
        if intra is not None:
            changes["intra_one_way"] = float(intra)
        if inter is not None:
            changes["inter_one_way"] = float(inter)
        if inter_up is not _UNSET:
            changes["inter_up_one_way"] = (
                None if inter_up is None else float(inter_up)
            )
        if inter_down is not _UNSET:
            changes["inter_down_one_way"] = (
                None if inter_down is None else float(inter_down)
            )
        return self._topology(**changes)

    def _topology(self, **changes) -> "ScenarioBuilder":
        self._spec = replace(self._spec, topology=replace(self._spec.topology, **changes))
        return self

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def uniform(self, count: int, interval: float, start: float = 0.0) -> "ScenarioBuilder":
        """*count* multicasts at a fixed *interval*, starting at *start*."""
        return self._traffic(TrafficSpec(
            kind="uniform", count=int(count), interval=float(interval),
            start=float(start),
        ))

    def multicast_once(self, at: float = 0.0) -> "ScenarioBuilder":
        """A single multicast at time *at*."""
        return self._traffic(TrafficSpec(
            kind="uniform", count=1, interval=1.0, start=float(at),
        ))

    def poisson(self, rate: float, duration: float = 0.0,
                start: float = 0.0) -> "ScenarioBuilder":
        """A Poisson stream of *rate* msgs/ms; *duration* 0 means
        "until the measurement horizon"."""
        return self._traffic(TrafficSpec(
            kind="poisson", rate=float(rate), duration=float(duration),
            start=float(start),
        ))

    def bursts(self, *bursts: Tuple[float, int]) -> "ScenarioBuilder":
        """Explicit ``(time, size)`` bursts of back-to-back sends."""
        normalized = tuple((float(t), int(size)) for t, size in bursts)
        return self._traffic(TrafficSpec(kind="burst", bursts=normalized))

    def ramp(self, count: int, initial_interval: float, final_interval: float,
             start: float = 0.0) -> "ScenarioBuilder":
        """A linearly accelerating stream (overload onset); see
        :class:`repro.workloads.traffic.RampStream`."""
        return self._traffic(TrafficSpec(
            kind="ramp", count=int(count),
            initial_interval=float(initial_interval),
            final_interval=float(final_interval), start=float(start),
        ))

    def initial_holders(self, k: int) -> "ScenarioBuilder":
        """The Figure 6/7 probe: one message held by *k* random members,
        everyone else detecting the loss simultaneously at t = 0."""
        return self._traffic(TrafficSpec(kind="detect_all", holders=int(k)))

    def search_probe(self, bufferers: int) -> "ScenarioBuilder":
        """The Figure 8/9 probe: *bufferers* long-term holders in the
        root region, one downstream requester searching for them."""
        return self._traffic(TrafficSpec(kind="search_probe", bufferers=int(bufferers)))

    def _traffic(self, traffic: TrafficSpec) -> "ScenarioBuilder":
        self._spec = replace(self._spec, traffic=traffic)
        return self

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def loss(self, p: float) -> "ScenarioBuilder":
        """Independent per-receiver loss probability *p* at multicast time."""
        return self._loss(LossSpec(kind="bernoulli", p=float(p)))

    def fixed_holders(self, k: int) -> "ScenarioBuilder":
        """Each multicast reaches exactly *k* uniformly-chosen members."""
        return self._loss(LossSpec(kind="fixed_holders", k=int(k)))

    def regional_loss(self, region: float, receiver: float = 0.0) -> "ScenarioBuilder":
        """Whole regions miss with probability *region*; survivors lose
        independently with *receiver* (the remote-recovery stressor)."""
        return self._loss(LossSpec(
            kind="region_correlated", region_loss=float(region),
            receiver_loss=float(receiver),
        ))

    def gilbert_elliott(self, p_good_to_bad: float = 0.01,
                        p_bad_to_good: float = 0.3, p_good: float = 0.0,
                        p_bad: float = 0.5) -> "ScenarioBuilder":
        """Bursty two-state link loss on every data packet (wireless-style
        correlated drops, including repairs)."""
        return self._loss(LossSpec(
            kind="gilbert_elliott",
            p_good_to_bad=float(p_good_to_bad),
            p_bad_to_good=float(p_bad_to_good),
            p_good=float(p_good), p_bad=float(p_bad),
        ))

    def outage(self, start: float, duration: float, regions: int = 1,
               receiver_loss: float = 0.0) -> "ScenarioBuilder":
        """A correlated regional outage: the last *regions* non-sender
        regions are partitioned from the rest of the tree over
        ``[start, start + duration)`` — every packet (data and control)
        crossing the partition boundary drops — then heal, leaving the
        stranded members to recover their accumulated gaps.  An
        independent *receiver_loss* floor applies to data packets
        throughout."""
        return self._loss(LossSpec(
            kind="outage", outage_start=float(start),
            outage_duration=float(duration), outage_regions=int(regions),
            receiver_loss=float(receiver_loss),
        ))

    def bottleneck(self, capacity: float, window: float = 250.0,
                   receiver_loss: float = 0.0) -> "ScenarioBuilder":
        """A shared link of *capacity* packet deliveries/s (counted
        per-receiver over a trailing *window* ms): data packets —
        multicasts and repairs alike — drop with the excess ratio
        beyond capacity, plus an independent *receiver_loss* floor.
        The loss model whose drop rate answers to offered load;
        congestion-control ablations run on it."""
        return self._loss(LossSpec(
            kind="bottleneck", capacity=float(capacity),
            window=float(window), receiver_loss=float(receiver_loss),
        ))

    def _loss(self, loss: LossSpec) -> "ScenarioBuilder":
        self._spec = replace(self._spec, loss=loss)
        return self

    # ------------------------------------------------------------------
    # Policy, protocol, FEC, churn
    # ------------------------------------------------------------------
    def policy(self, kind: Optional[str] = None, *, c: Optional[float] = None,
               idle_threshold: Optional[float] = None,
               long_term_ttl=_UNSET,
               hold_time: Optional[float] = None) -> "ScenarioBuilder":
        """Select the buffer-management family and/or its knobs.

        Omitting *kind* keeps the currently selected family, so
        ``.policy(c=4.0)`` tweaks one knob without resetting an earlier
        ``.policy("fixed_time", ...)`` choice.
        """
        changes = {}
        if kind is not None:
            changes["kind"] = str(kind)
        if c is not None:
            changes["c"] = float(c)
        if idle_threshold is not None:
            changes["idle_threshold"] = float(idle_threshold)
        if long_term_ttl is not _UNSET:
            changes["long_term_ttl"] = (
                None if long_term_ttl is None else float(long_term_ttl)
            )
        if hold_time is not None:
            changes["hold_time"] = float(hold_time)
        return self._policy(**changes)

    def protocol(self, *, remote_lambda: Optional[float] = None,
                 session_interval=_UNSET, timer_factor: Optional[float] = None,
                 max_recovery_time=_UNSET,
                 max_search_rounds=_UNSET) -> "ScenarioBuilder":
        """Protocol-level knobs (λ, session messages, give-up deadline)."""
        changes = {}
        if remote_lambda is not None:
            changes["remote_lambda"] = float(remote_lambda)
        if session_interval is not _UNSET:
            changes["session_interval"] = (
                None if session_interval is None else float(session_interval)
            )
        if timer_factor is not None:
            changes["timer_factor"] = float(timer_factor)
        if max_recovery_time is not _UNSET:
            changes["max_recovery_time"] = (
                None if max_recovery_time is None else float(max_recovery_time)
            )
        if max_search_rounds is not _UNSET:
            changes["max_search_rounds"] = (
                None if max_search_rounds is None else int(max_search_rounds)
            )
        return self._policy(**changes)

    def _policy(self, **changes) -> "ScenarioBuilder":
        self._spec = replace(self._spec, policy=replace(self._spec.policy, **changes))
        return self

    def fec(self, mode: str, block_size: int = 8, parity: int = 1,
            flush_after: Optional[float] = 1.0) -> "ScenarioBuilder":
        """Erasure-coded repair: ``proactive``/``reactive``/``off``."""
        self._spec = replace(self._spec, fec=FecSpec(
            mode=str(mode), block_size=int(block_size), parity=int(parity),
            flush_after=flush_after if flush_after is None else float(flush_after),
        ))
        return self

    def churn(self, leave_rate: float = 0.0, crash_rate: float = 0.0,
              join_rate: float = 0.0, duration: float = 0.0,
              protect_sender: bool = True) -> "ScenarioBuilder":
        """Poisson membership churn (events/ms; duration 0 = horizon)."""
        self._spec = replace(self._spec, churn=ChurnSpec(
            kind="random", leave_rate=float(leave_rate),
            crash_rate=float(crash_rate), join_rate=float(join_rate),
            duration=float(duration), protect_sender=bool(protect_sender),
        ))
        return self

    def congestion(self, controller: str, target_loss: float = 0.05,
                   min_rate: float = 1.0, max_rate: float = 1000.0,
                   feedback_interval: float = 50.0,
                   parity_min: Optional[int] = None,
                   parity_max: Optional[int] = None) -> "ScenarioBuilder":
        """Congestion control: ``none``/``tfmcc``/``aimd`` (rates msgs/s)."""
        self._spec = replace(self._spec, congestion=CongestionSpec(
            controller=str(controller), target_loss=float(target_loss),
            min_rate=float(min_rate), max_rate=float(max_rate),
            feedback_interval=float(feedback_interval),
            parity_min=parity_min if parity_min is None else int(parity_min),
            parity_max=parity_max if parity_max is None else int(parity_max),
        ))
        return self

    def adaptive(self, update_interval: float = 250.0, hysteresis: float = 0.1,
                 max_reparents: int = 8,
                 ewma_alpha: float = 0.2) -> "ScenarioBuilder":
        """Adaptive repair hierarchy (:mod:`repro.adapt`, passive mode):
        a link-state estimator fed by existing recovery/feedback traffic
        plus a periodic makespan-aware tree re-optimizer, paced every
        *update_interval* ms, re-parenting only on a relative path-cost
        improvement beyond *hysteresis* and at most *max_reparents*
        times per run."""
        self._spec = replace(self._spec, adapt=AdaptSpec(
            mode="passive", update_interval=float(update_interval),
            hysteresis=float(hysteresis), max_reparents=int(max_reparents),
            ewma_alpha=float(ewma_alpha),
        ))
        return self

    def mobility(self, speed: float = 4.0, epoch: float = 50.0,
                 area: float = 1000.0, duration: float = 0.0,
                 distance_loss: float = 0.0,
                 protect_sender: bool = True) -> "ScenarioBuilder":
        """Waypoint mobility (:class:`MobilitySpec`): receivers roam a
        *area*-sided square at *speed* units/ms, re-evaluating their
        nearest region anchor every *epoch* ms and gracefully handing
        off (§3.2) when it changes; *duration* 0 moves until the
        measurement horizon.  *distance_loss* adds per-link data loss
        growing with sender/receiver distance."""
        self._spec = replace(self._spec, mobility=MobilitySpec(
            kind="waypoint", speed=float(speed), epoch=float(epoch),
            area=float(area), duration=float(duration),
            distance_loss=float(distance_loss),
            protect_sender=bool(protect_sender),
        ))
        return self

    def playout(self, interval: float = 25.0,
                startup_delay: float = 100.0) -> "ScenarioBuilder":
        """Streaming playback deadlines (:class:`PlayoutSpec`): each
        receiver plays one sequence number every *interval* ms starting
        *startup_delay* ms after its first delivery; late frames count
        rebuffer events and stall time (see
        :mod:`repro.metrics.rebuffer`)."""
        self._spec = replace(self._spec, playout=PlayoutSpec(
            kind="cbr", interval=float(interval),
            startup_delay=float(startup_delay),
        ))
        return self

    # ------------------------------------------------------------------
    # Measurement & identity
    # ------------------------------------------------------------------
    def measure(self, horizon=_UNSET, duration=_UNSET,
                drain: Optional[bool] = None, probe_period=_UNSET,
                keep_trace: Optional[bool] = None) -> "ScenarioBuilder":
        """Run bound (horizon / duration / drain) and probe settings."""
        measurement = self._spec.measurement
        changes = {}
        if horizon is not _UNSET:
            changes["horizon"] = None if horizon is None else float(horizon)
        if duration is not _UNSET:
            changes["duration"] = None if duration is None else float(duration)
        if drain is not None:
            changes["drain"] = bool(drain)
        if probe_period is not _UNSET:
            changes["probe_period"] = (
                None if probe_period is None else float(probe_period)
            )
        if keep_trace is not None:
            changes["keep_trace"] = bool(keep_trace)
        self._spec = replace(self._spec, measurement=replace(measurement, **changes))
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        """Master seed; every random decision derives from it."""
        self._spec = replace(self._spec, seed=int(seed))
        return self

    def named(self, name: str) -> "ScenarioBuilder":
        """Rename the scenario."""
        self._spec = replace(self._spec, name=str(name))
        return self

    def describe(self, text: str) -> "ScenarioBuilder":
        """Attach a one-line human description."""
        self._spec = replace(self._spec, description=str(text))
        return self

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def spec(self) -> ScenarioSpec:
        """The immutable spec value accumulated so far."""
        return self._spec

    def build(self) -> BuiltScenario:
        """Materialize: simulation built, traffic and churn scheduled."""
        return self._spec.build()

    def run(self) -> BuiltScenario:
        """Build and run to the measurement end."""
        return self._spec.run()


def scenario(name: str = "scenario", seed: int = 0) -> ScenarioBuilder:
    """Start a fluent scenario definition."""
    return ScenarioBuilder(name, seed)
