"""Tree-based repair-server baseline (system S7 in DESIGN.md; ref [12]).

An RMTP-like protocol where one repair server per region buffers the
whole session and answers NACKs; used to contrast RRMP's spread-out
buffering with a concentrated hotspot.
"""

from repro.tree.rmtp import Nack, TreeMember, TreeRepair, TreeSimulation

__all__ = ["Nack", "TreeMember", "TreeRepair", "TreeSimulation"]
